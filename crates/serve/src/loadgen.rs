//! The `snslp-bench serve` load generator: fixed-seed synthetic traffic
//! replayed against a running `snslpd`, measured into the
//! `snslp-serve-bench/v2` report.
//!
//! Traffic is fully deterministic given `(seed, clients,
//! requests_per_client, functions_per_module)`: every request module is
//! built from [`snslp_fuzz::generate`] cases at unique indices, so the
//! *cold* phase never repeats a body and the *warm* phase (an exact
//! replay of the same lines) should be answered entirely from the
//! server's caches. Clients are closed-loop: each sends its next request
//! only after the previous reply, retrying `busy` refusals with a short
//! backoff (counted, never dropped).

use std::path::Path;
use std::time::Instant;

use snslp_bench::servebench::{
    percentile, CachePhase, Phase, PhaseStats, ServeBenchReport, ServerPhase,
};

use crate::client::Client;
use crate::telemetry::TelemetrySnapshot;

/// Load-generator parameters.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Closed-loop client connections.
    pub clients: usize,
    /// Requests each client sends per phase.
    pub requests_per_client: usize,
    /// Fuzz functions per request module.
    pub functions_per_module: usize,
    /// Fuzz-generator seed.
    pub seed: u64,
    /// Pass mode requested (`snslp` unless overridden).
    pub mode: String,
    /// Target requested.
    pub target: String,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        // Two closed-loop clients: enough concurrency to exercise the
        // shards, few enough that warm-phase latency on a single-core
        // host measures the server, not core time-sharing. Twelve
        // functions per module keeps the cold/warm latency ratio far
        // from the 5x gate: cold compile time scales linearly with
        // functions, while a warm (memo) request only pays text
        // hashing and socket I/O, which scale much flatter.
        LoadgenOptions {
            clients: 2,
            requests_per_client: 24,
            functions_per_module: 12,
            seed: 0xC60_2019,
            mode: "snslp".to_string(),
            target: "avx2".to_string(),
        }
    }
}

/// Builds one request module's text: `functions_per_module` fuzz cases
/// at consecutive indices, printed back-to-back.
fn module_text(opts: &LoadgenOptions, first_index: u64) -> String {
    let mut text = String::new();
    for k in 0..opts.functions_per_module as u64 {
        let case = snslp_fuzz::generate(opts.seed, first_index + k);
        text.push_str(&case.function.to_string());
        text.push('\n');
    }
    text
}

/// The full deterministic corpus: `clients × requests_per_client`
/// modules, disjoint function indices throughout.
fn build_corpus(opts: &LoadgenOptions) -> Vec<Vec<String>> {
    (0..opts.clients)
        .map(|c| {
            (0..opts.requests_per_client)
                .map(|r| {
                    let first =
                        ((c * opts.requests_per_client + r) * opts.functions_per_module) as u64;
                    module_text(opts, first)
                })
                .collect()
        })
        .collect()
}

/// One phase-boundary telemetry snapshot, strictly validated. Both the
/// cache deltas and the server-side latency section come from these, so
/// the report's server accounting is exactly what the `stats` op serves.
fn scrape_telemetry(socket: &Path) -> Result<TelemetrySnapshot, String> {
    let mut client = Client::connect(socket).map_err(|e| format!("stats connect: {e}"))?;
    client.telemetry()
}

/// The server's latency accounting between two snapshots: the
/// `request_total` histogram delta, quantiles in microseconds.
fn server_phase(after: &TelemetrySnapshot, before: &TelemetrySnapshot) -> ServerPhase {
    let window = after.delta(before);
    let total = window.hist("request_total").cloned().unwrap_or_default();
    ServerPhase {
        requests: window.counters.requests_served,
        p50_us: total.quantile(50.0) as f64 / 1e3,
        p90_us: total.quantile(90.0) as f64 / 1e3,
        p99_us: total.quantile(99.0) as f64 / 1e3,
    }
}

/// Runs one phase: every client replays its request list; returns
/// latencies in µs (all clients pooled), busy count, and wall seconds.
fn run_phase(
    socket: &Path,
    corpus: &[Vec<String>],
    opts: &LoadgenOptions,
) -> Result<(Vec<f64>, u64, f64), String> {
    let t0 = Instant::now();
    let results: Vec<Result<(Vec<f64>, u64), String>> = std::thread::scope(|s| {
        let handles: Vec<_> = corpus
            .iter()
            .map(|requests| {
                s.spawn(move || -> Result<(Vec<f64>, u64), String> {
                    let mut client =
                        Client::connect(socket).map_err(|e| format!("connect: {e}"))?;
                    let mut latencies = Vec::with_capacity(requests.len());
                    let mut busy = 0u64;
                    for text in requests {
                        let start = Instant::now();
                        let (reply, retries) =
                            client.compile(text, &opts.mode, &opts.target, &[])?;
                        if reply.status != crate::proto::STATUS_OK {
                            return Err(format!(
                                "compile failed: {}",
                                reply.error.as_deref().unwrap_or("unknown error")
                            ));
                        }
                        latencies.push(start.elapsed().as_secs_f64() * 1e6);
                        busy += retries;
                    }
                    Ok((latencies, busy))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".to_string()))
            })
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut busy = 0u64;
    for r in results {
        let (l, b) = r?;
        latencies.extend(l);
        busy += b;
    }
    Ok((latencies, busy, wall))
}

fn phase_stats(latencies: &mut [f64], busy: u64, wall: f64) -> PhaseStats {
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    PhaseStats {
        requests: latencies.len(),
        busy: busy as usize,
        p50_us: percentile(latencies, 50.0),
        p90_us: percentile(latencies, 90.0),
        p99_us: percentile(latencies, 99.0),
        mean_us: mean,
        throughput_rps: if wall > 0.0 {
            latencies.len() as f64 / wall
        } else {
            0.0
        },
    }
}

/// Runs the cold + warm phases against the server at `socket` and
/// assembles the report.
///
/// # Errors
///
/// Connection failures, compile errors, or malformed stats replies.
pub fn run_loadgen(socket: &Path, opts: &LoadgenOptions) -> Result<ServeBenchReport, String> {
    let corpus = build_corpus(opts);

    let before_cold = scrape_telemetry(socket)?;
    let (mut cold_lat, cold_busy, cold_wall) = run_phase(socket, &corpus, opts)?;
    let after_cold = scrape_telemetry(socket)?;

    let (mut warm_lat, warm_busy, warm_wall) = run_phase(socket, &corpus, opts)?;
    let after_warm = scrape_telemetry(socket)?;

    let delta = |a: &TelemetrySnapshot, b: &TelemetrySnapshot| CachePhase {
        hits: b.cache.hits.saturating_sub(a.cache.hits),
        misses: b.cache.misses.saturating_sub(a.cache.misses),
        evictions: b.cache.evictions.saturating_sub(a.cache.evictions),
    };
    Ok(ServeBenchReport {
        clients: opts.clients,
        requests_per_client: opts.requests_per_client,
        functions_per_module: opts.functions_per_module,
        seed: opts.seed,
        cold: Phase {
            stats: phase_stats(&mut cold_lat, cold_busy, cold_wall),
            cache: delta(&before_cold, &after_cold),
            server: server_phase(&after_cold, &before_cold),
        },
        warm: Phase {
            stats: phase_stats(&mut warm_lat, warm_busy, warm_wall),
            cache: delta(&after_cold, &after_warm),
            server: server_phase(&after_warm, &after_cold),
        },
    })
}
