//! The `snslpd` wire protocol: newline-delimited JSON, one value per
//! line, over a Unix socket or stdio.
//!
//! # Requests
//!
//! ```json
//! {"id": 1, "module": "func @f(...) { ... }", "mode": "snslp",
//!  "target": "sse2", "artifacts": ["codegen"]}
//! {"id": 2, "op": "stats"}
//! ```
//!
//! * `id` — client-chosen request tag, echoed verbatim on the reply.
//! * `module` — `.snir` module text (required for compile requests).
//! * `mode` — `slp` | `lslp` | `snslp` (default `snslp`).
//! * `target` — `sse2` | `avx2` | `noaltop` (default `sse2`).
//! * `artifacts` — any of `codegen` (rewritten module text), `html`
//!   (the single-file vectorization explorer), `dynstats` (interpreted
//!   dynamic profile, requires an `; INPUTS:` line in the module),
//!   `hot` (instrumented native hotness, `snslp-hot/v1`; requires an
//!   `; INPUTS:` line and the native x86-64 backend — hosts without one
//!   answer with an empty artifact rather than an error).
//! * `op: "stats"` — control request: answer with the server's cache
//!   counters instead of compiling.
//!
//! # Responses
//!
//! One line per request, in request order per connection:
//!
//! ```json
//! {"id": 1, "status": "ok", "reports": [...], "artifacts": {...}}
//! {"id": 2, "status": "busy", "error": "server at capacity ..."}
//! {"id": 3, "status": "error", "error": "parse error at line 2, column 7: ..."}
//! ```
//!
//! Compile replies are *deterministic*: they carry graphs, remarks
//! (machine rendering) and the counter half of the metrics snapshot, but
//! no wall-clock timings — so a cache hit is byte-identical to the cold
//! compile that populated it, and golden tests can compare raw reply
//! lines.

use snslp_bench::json::Json;
use snslp_core::{FunctionReport, SlpConfig, SlpMode};
use snslp_cost::{CostModel, TargetDesc};

/// Reply status tag.
pub const STATUS_OK: &str = "ok";
/// Reply status tag for admission-control refusals (the HTTP-429
/// analogue). The request was *not* compiled; resubmit later.
pub const STATUS_BUSY: &str = "busy";
/// Reply status tag for malformed requests or compile errors.
pub const STATUS_ERROR: &str = "error";

/// Which optional artifacts a compile request wants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArtifactSet {
    /// The rewritten module text after the pass.
    pub codegen: bool,
    /// The single-file HTML vectorization explorer.
    pub html: bool,
    /// Interpreted dynamic profile (needs an `; INPUTS:` line).
    pub dynstats: bool,
    /// Instrumented native hotness (`snslp-hot/v1`; needs an `; INPUTS:`
    /// line and the native backend — empty-string artifact elsewhere).
    pub hot: bool,
}

/// A parsed compile request.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// Raw `.snir` module text, exactly as submitted.
    pub module_text: String,
    /// Vectorizer to run.
    pub mode: SlpMode,
    /// Target label (`sse2` | `avx2` | `noaltop`).
    pub target: String,
    /// Requested optional artifacts.
    pub artifacts: ArtifactSet,
}

impl CompileRequest {
    /// Builds the pass configuration this request describes.
    pub fn config(&self) -> SlpConfig {
        let target = match self.target.as_str() {
            "avx2" => TargetDesc::avx2_like(),
            "noaltop" => TargetDesc::no_altop_128(),
            _ => TargetDesc::sse2_like(),
        };
        let mut cfg = SlpConfig::new(self.mode).with_model(CostModel::new(target));
        // The explorer embeds decision-stamped graph snapshots; the flag
        // is part of the config fingerprint, so html and non-html
        // requests cache separately (their artifacts differ).
        cfg.keep_graph_dots = self.artifacts.html;
        cfg
    }
}

/// One parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a module.
    Compile {
        /// Echoed request tag.
        id: u64,
        /// The compile payload.
        compile: CompileRequest,
    },
    /// Report server cache statistics.
    Stats {
        /// Echoed request tag.
        id: u64,
    },
}

impl Request {
    /// The request tag.
    pub fn id(&self) -> u64 {
        match self {
            Request::Compile { id, .. } | Request::Stats { id } => *id,
        }
    }

    /// Renders a compile request as one wire line (no trailing newline).
    pub fn render_compile(
        id: u64,
        module_text: &str,
        mode: &str,
        target: &str,
        artifacts: &[&str],
    ) -> String {
        let mut members = vec![
            ("id".to_string(), Json::Num(id as f64)),
            ("module".to_string(), Json::Str(module_text.to_string())),
            ("mode".to_string(), Json::Str(mode.to_string())),
            ("target".to_string(), Json::Str(target.to_string())),
        ];
        if !artifacts.is_empty() {
            members.push((
                "artifacts".to_string(),
                Json::Arr(artifacts.iter().map(|a| Json::Str(a.to_string())).collect()),
            ));
        }
        Json::Obj(members).render_compact()
    }

    /// Renders a stats request as one wire line.
    pub fn render_stats(id: u64) -> String {
        Json::Obj(vec![
            ("id".to_string(), Json::Num(id as f64)),
            ("op".to_string(), Json::Str("stats".to_string())),
        ])
        .render_compact()
    }

    /// Parses one request line. On failure, returns the request id (when
    /// it could still be recovered) and a diagnosis, so the server can
    /// address the error reply.
    pub fn parse(line: &str) -> Result<Request, (Option<u64>, String)> {
        let doc = Json::parse(line).map_err(|e| (None, format!("malformed request JSON: {e}")))?;
        let id = doc.get("id").and_then(Json::as_num).map(|n| n as u64);
        let fail = |msg: String| (id, msg);
        let id = id.ok_or_else(|| (None, "request is missing a numeric `id`".to_string()))?;

        if let Some(op) = doc.get("op").and_then(Json::as_str) {
            return match op {
                "stats" => Ok(Request::Stats { id }),
                other => Err(fail(format!("unknown op `{other}`"))),
            };
        }

        let module_text = doc
            .get("module")
            .and_then(Json::as_str)
            .ok_or_else(|| fail("compile request is missing `module`".to_string()))?
            .to_string();
        let mode = match doc.get("mode").and_then(Json::as_str).unwrap_or("snslp") {
            "slp" => SlpMode::Slp,
            "lslp" => SlpMode::Lslp,
            "snslp" => SlpMode::SnSlp,
            other => {
                return Err(fail(format!(
                    "unknown mode `{other}` (want slp|lslp|snslp)"
                )))
            }
        };
        let target = doc
            .get("target")
            .and_then(Json::as_str)
            .unwrap_or("sse2")
            .to_string();
        if !matches!(target.as_str(), "sse2" | "avx2" | "noaltop") {
            return Err(fail(format!(
                "unknown target `{target}` (want sse2|avx2|noaltop)"
            )));
        }
        let mut artifacts = ArtifactSet::default();
        if let Some(list) = doc.get("artifacts").and_then(Json::as_arr) {
            for item in list {
                match item.as_str() {
                    Some("codegen") => artifacts.codegen = true,
                    Some("html") => artifacts.html = true,
                    Some("dynstats") => artifacts.dynstats = true,
                    Some("hot") => artifacts.hot = true,
                    other => {
                        return Err(fail(format!(
                            "unknown artifact {other:?} (want codegen|html|dynstats|hot)"
                        )))
                    }
                }
            }
        }
        Ok(Request::Compile {
            id,
            compile: CompileRequest {
                module_text,
                mode,
                target,
                artifacts,
            },
        })
    }
}

/// Renders one function report as its deterministic wire object: graphs,
/// machine-rendered remarks, counter metrics — no wall-clock fields.
pub fn report_to_json(report: &FunctionReport) -> Json {
    let graphs = report
        .graphs
        .iter()
        .map(|g| {
            Json::Obj(vec![
                ("decision".to_string(), Json::Str(g.decision.render())),
                ("width".to_string(), Json::Num(f64::from(g.width))),
                ("cost".to_string(), Json::Num(f64::from(g.cost))),
                ("vectorized".to_string(), Json::Bool(g.vectorized)),
                ("num_nodes".to_string(), Json::Num(g.num_nodes as f64)),
                (
                    "super_node_sizes".to_string(),
                    Json::Arr(
                        g.super_node_sizes
                            .iter()
                            .map(|&s| Json::Num(f64::from(s)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("function".to_string(), Json::Str(report.function.clone())),
        (
            "mode".to_string(),
            Json::Str(report.mode.label().to_string()),
        ),
        (
            "vectorized_graphs".to_string(),
            Json::Num(report.vectorized_graphs() as f64),
        ),
        (
            "predicted_cost".to_string(),
            Json::Num(report.predicted_cost() as f64),
        ),
        ("graphs".to_string(), Json::Arr(graphs)),
        (
            "remarks".to_string(),
            Json::Arr(
                report
                    .remarks
                    .iter()
                    .map(|r| Json::Str(r.machine()))
                    .collect(),
            ),
        ),
        ("metrics".to_string(), Json::Str(report.metrics.machine())),
    ])
}

/// Renders the status/payload half of an `ok` compile reply — everything
/// after the `id` member. The server memoizes this string per module
/// text, so it must not contain anything request-specific.
pub fn ok_body(reports: &[FunctionReport], artifacts: &[(String, String)]) -> String {
    let mut members = vec![
        ("status".to_string(), Json::Str(STATUS_OK.to_string())),
        (
            "reports".to_string(),
            Json::Arr(reports.iter().map(report_to_json).collect()),
        ),
    ];
    if !artifacts.is_empty() {
        members.push((
            "artifacts".to_string(),
            Json::Obj(
                artifacts
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    body_of(Json::Obj(members))
}

/// Renders the status/payload half of a `busy` or `error` reply.
pub fn failure_body(status: &str, error: &str) -> String {
    body_of(Json::Obj(vec![
        ("status".to_string(), Json::Str(status.to_string())),
        ("error".to_string(), Json::Str(error.to_string())),
    ]))
}

/// Renders the status/payload half of a stats reply: the legacy flat
/// `stats` counters (older clients and the load generator's scraper
/// parse these) plus the full `snslpd-telemetry/v1` snapshot under
/// `telemetry`, extractable and re-validatable on its own.
pub fn stats_body(telemetry: &crate::telemetry::TelemetrySnapshot) -> String {
    body_of(Json::Obj(vec![
        ("status".to_string(), Json::Str(STATUS_OK.to_string())),
        (
            "stats".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::Num(telemetry.cache.hits as f64)),
                (
                    "misses".to_string(),
                    Json::Num(telemetry.cache.misses as f64),
                ),
                (
                    "evictions".to_string(),
                    Json::Num(telemetry.cache.evictions as f64),
                ),
                (
                    "entries".to_string(),
                    Json::Num(telemetry.cache.entries as f64),
                ),
                (
                    "memo_hits".to_string(),
                    Json::Num(telemetry.counters.memo_hits as f64),
                ),
            ]),
        ),
        ("telemetry".to_string(), telemetry.to_json()),
    ]))
}

/// Strips the outer braces of a rendered object so [`address`] can splice
/// an `id` member in front without re-rendering.
fn body_of(obj: Json) -> String {
    let line = obj.render_compact();
    debug_assert!(line.starts_with('{') && line.ends_with('}'));
    line[1..line.len() - 1].to_string()
}

/// Completes a reply line: the echoed `id` plus a memoized body.
pub fn address(id: u64, body: &str) -> String {
    format!("{{\"id\":{id},{body}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_round_trips() {
        let line = Request::render_compile(
            7,
            "func @f() -> void {\nentry:\n  ret\n}\n",
            "lslp",
            "avx2",
            &["codegen", "html", "hot"],
        );
        assert!(!line.contains('\n'));
        match Request::parse(&line).unwrap() {
            Request::Compile { id, compile } => {
                assert_eq!(id, 7);
                assert!(compile.module_text.contains("func @f"));
                assert_eq!(compile.mode, SlpMode::Lslp);
                assert_eq!(compile.target, "avx2");
                assert!(compile.artifacts.codegen);
                assert!(compile.artifacts.html);
                assert!(!compile.artifacts.dynstats);
                assert!(compile.artifacts.hot);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn stats_request_round_trips() {
        let line = Request::render_stats(3);
        match Request::parse(&line).unwrap() {
            Request::Stats { id } => assert_eq!(id, 3),
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors_recover_the_id_when_possible() {
        let (id, _) = Request::parse(r#"{"id": 9, "mode": "snslp"}"#).unwrap_err();
        assert_eq!(id, Some(9));
        let (id, _) = Request::parse("not json").unwrap_err();
        assert_eq!(id, None);
        let (id, msg) = Request::parse(r#"{"module": "x"}"#).unwrap_err();
        assert_eq!(id, None);
        assert!(msg.contains("id"));
        let (id, msg) = Request::parse(r#"{"id": 1, "module": "x", "mode": "turbo"}"#).unwrap_err();
        assert_eq!(id, Some(1));
        assert!(msg.contains("turbo"));
    }

    #[test]
    fn addressed_replies_are_valid_json() {
        let body = failure_body(STATUS_BUSY, "server at capacity");
        let line = address(42, &body);
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("id").and_then(Json::as_num), Some(42.0));
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("busy"));
    }

    #[test]
    fn html_requests_fingerprint_separately() {
        let mk = |html| CompileRequest {
            module_text: String::new(),
            mode: SlpMode::SnSlp,
            target: "sse2".to_string(),
            artifacts: ArtifactSet {
                html,
                ..Default::default()
            },
        };
        assert_ne!(
            mk(true).config().fingerprint(),
            mk(false).config().fingerprint()
        );
    }
}
