//! Server-side telemetry: per-request stage timing, lock-free latency
//! histograms, rolling gauges, and the `snslpd-telemetry/v1` snapshot.
//!
//! # Stages
//!
//! Every request carries a [`ReqTelem`] from the moment its line is read
//! to the moment its reply hits the connection writer. [`ReqTelem::mark`]
//! charges the time since the previous mark to one of five stages:
//!
//! * **parse** — request-line JSON decode plus module parse/verify;
//! * **queue** — waiting in a shard queue for a worker;
//! * **compile** — the driver invocation (or the memo lookup on a hit);
//! * **render** — reply-body JSON rendering;
//! * **write** — from render until the reply is handed to the socket.
//!
//! Because every interval lands in exactly one stage, the stage sums of a
//! request equal its span duration *by construction* — the fuzz oracle in
//! `crates/serve/tests/telemetry.rs` holds the implementation to that.
//!
//! # Recording policy
//!
//! Only successful compile replies (fresh compiles and memo hits) enter
//! the latency histograms; `requests_served` counts exactly those, so
//! every stage histogram's `count` equals `requests_served` and
//! `compile_hit.count + compile_miss.count` equals it too. Busy refusals,
//! compile errors, malformed requests, and `stats` requests land in their
//! own counters and never touch the histograms — a retry storm cannot
//! poison p99.
//!
//! All record-path operations are relaxed atomics (no locks); snapshots
//! are read with the same cheap loads, so a `stats` request under load
//! observes a consistent-enough view without stalling compiles.

use std::sync::atomic::{AtomicU64, Ordering};

use snslp_bench::json::{check_schema, Json};
use snslp_core::CacheStats;
use snslp_trace::hist::{bucket_lo, bucket_width, NUM_BUCKETS};
use snslp_trace::serve::EVENT_ACCESS;
use snslp_trace::{clock, trace_event, HistSnapshot, Histogram};

/// Schema tag of the telemetry snapshot returned by the `stats` op.
pub const TELEMETRY_SCHEMA: &str = "snslpd-telemetry/v1";

/// The latency histograms a snapshot carries, in canonical order.
pub const HIST_NAMES: [&str; 7] = [
    "request_total",
    "parse",
    "queue",
    "compile_hit",
    "compile_miss",
    "render",
    "write",
];

/// One of the five per-request timing stages (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Request-line decode plus module parse/verify.
    Parse,
    /// Shard-queue wait.
    Queue,
    /// Driver invocation or memo lookup.
    Compile,
    /// Reply-body rendering.
    Render,
    /// Render-to-socket handoff.
    Write,
}

const NUM_STAGES: usize = 5;

impl Stage {
    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::Queue => 1,
            Stage::Compile => 2,
            Stage::Render => 3,
            Stage::Write => 4,
        }
    }
}

/// What kind of request this was, for the access log and counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// A compile request (well-formed enough to classify).
    Compile,
    /// A `stats` control request.
    Stats,
    /// A line that failed request parsing.
    Invalid,
}

impl ReqKind {
    fn label(self) -> &'static str {
        match self {
            ReqKind::Compile => "compile",
            ReqKind::Stats => "stats",
            ReqKind::Invalid => "invalid",
        }
    }
}

/// How the request was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyClass {
    /// `status: ok`.
    Ok,
    /// `status: busy` (admission refusal; not compiled).
    Busy,
    /// `status: error` (malformed request or compile failure).
    Error,
}

impl ReplyClass {
    fn label(self) -> &'static str {
        match self {
            ReplyClass::Ok => "ok",
            ReplyClass::Busy => "busy",
            ReplyClass::Error => "error",
        }
    }
}

/// Per-request stage accumulator. Created when the request line is read,
/// marked at each stage boundary, and recorded into the registry just
/// before the reply is written.
#[derive(Debug)]
pub struct ReqTelem {
    /// Request classification (set after parse; starts `Invalid`).
    pub kind: ReqKind,
    /// Reply classification (set when the body is chosen).
    pub class: ReplyClass,
    /// Was this compile answered from the whole-request memo?
    pub memo: bool,
    /// Instrumented native activations this request executed while
    /// rendering a `hot` artifact (0 when the artifact was not asked
    /// for, memoized, or the host has no native backend).
    pub native_runs: u64,
    /// Native instruction executions those activations measured.
    pub native_ops: u64,
    id: u64,
    bytes_in: u64,
    bytes_out: u64,
    start_ns: u64,
    last_ns: u64,
    stage_ns: [u64; NUM_STAGES],
}

impl ReqTelem {
    /// Starts the span: one clock read, `bytes_in` = request line bytes
    /// including the newline.
    pub fn start(bytes_in: u64) -> ReqTelem {
        let now = clock::now_ns();
        ReqTelem {
            kind: ReqKind::Invalid,
            class: ReplyClass::Error,
            memo: false,
            native_runs: 0,
            native_ops: 0,
            id: 0,
            bytes_in,
            bytes_out: 0,
            start_ns: now,
            last_ns: now,
            stage_ns: [0; NUM_STAGES],
        }
    }

    /// Sets the echoed request id once parsing recovers it.
    pub fn set_id(&mut self, id: u64) {
        self.id = id;
    }

    /// The echoed request id (0 until parsing recovers one).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Charges the time since the previous mark to `stage`.
    pub fn mark(&mut self, stage: Stage) {
        let now = clock::now_ns();
        self.stage_ns[stage.index()] += now.saturating_sub(self.last_ns);
        self.last_ns = now;
    }

    /// Reply line bytes, including the newline.
    pub fn set_bytes_out(&mut self, bytes: u64) {
        self.bytes_out = bytes;
    }

    /// Accounts a native-execution pass made for the `hot` artifact:
    /// `runs` instrumented activations measuring `ops` instruction
    /// executions in total.
    pub fn note_native(&mut self, runs: u64, ops: u64) {
        self.native_runs += runs;
        self.native_ops += ops;
    }

    /// Nanoseconds accumulated in `stage` so far.
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage.index()]
    }

    /// Span duration so far: start to the latest mark. Equals the sum of
    /// the stage accumulators by construction.
    pub fn total_ns(&self) -> u64 {
        self.last_ns.saturating_sub(self.start_ns)
    }
}

/// The server's telemetry registry: histograms, counters, gauges. One
/// per [`crate::ServerState`]; shared by every connection and worker.
#[derive(Debug)]
pub struct Telemetry {
    request_total: Histogram,
    parse: Histogram,
    queue: Histogram,
    compile_hit: Histogram,
    compile_miss: Histogram,
    render: Histogram,
    write: Histogram,
    requests_served: AtomicU64,
    memo_hits: AtomicU64,
    busy_replies: AtomicU64,
    error_replies: AtomicU64,
    stats_requests: AtomicU64,
    invalid_requests: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    hot_requests: AtomicU64,
    native_runs: AtomicU64,
    native_ops: AtomicU64,
    busy_workers: AtomicU64,
    peak_busy_workers: AtomicU64,
    peak_inflight: AtomicU64,
    peak_queue_depth: AtomicU64,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    pub fn new() -> Telemetry {
        Telemetry {
            request_total: Histogram::new(),
            parse: Histogram::new(),
            queue: Histogram::new(),
            compile_hit: Histogram::new(),
            compile_miss: Histogram::new(),
            render: Histogram::new(),
            write: Histogram::new(),
            requests_served: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            busy_replies: AtomicU64::new(0),
            error_replies: AtomicU64::new(0),
            stats_requests: AtomicU64::new(0),
            invalid_requests: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            hot_requests: AtomicU64::new(0),
            native_runs: AtomicU64::new(0),
            native_ops: AtomicU64::new(0),
            busy_workers: AtomicU64::new(0),
            peak_busy_workers: AtomicU64::new(0),
            peak_inflight: AtomicU64::new(0),
            peak_queue_depth: AtomicU64::new(0),
        }
    }

    /// Records one finished request (all marks done, `bytes_out` set) and
    /// emits its access-log line. Called exactly once per request, just
    /// before the reply is written.
    pub fn record(&self, t: &ReqTelem) {
        self.bytes_in.fetch_add(t.bytes_in, Ordering::Relaxed);
        self.bytes_out.fetch_add(t.bytes_out, Ordering::Relaxed);
        match t.kind {
            ReqKind::Invalid => {
                self.invalid_requests.fetch_add(1, Ordering::Relaxed);
            }
            ReqKind::Stats => {
                self.stats_requests.fetch_add(1, Ordering::Relaxed);
            }
            ReqKind::Compile => match t.class {
                ReplyClass::Busy => {
                    self.busy_replies.fetch_add(1, Ordering::Relaxed);
                }
                ReplyClass::Error => {
                    self.error_replies.fetch_add(1, Ordering::Relaxed);
                }
                ReplyClass::Ok => {
                    self.requests_served.fetch_add(1, Ordering::Relaxed);
                    if t.native_runs > 0 {
                        self.hot_requests.fetch_add(1, Ordering::Relaxed);
                        self.native_runs.fetch_add(t.native_runs, Ordering::Relaxed);
                        self.native_ops.fetch_add(t.native_ops, Ordering::Relaxed);
                    }
                    self.request_total.record(t.total_ns());
                    self.parse.record(t.stage_ns(Stage::Parse));
                    self.queue.record(t.stage_ns(Stage::Queue));
                    if t.memo {
                        self.memo_hits.fetch_add(1, Ordering::Relaxed);
                        self.compile_hit.record(t.stage_ns(Stage::Compile));
                    } else {
                        self.compile_miss.record(t.stage_ns(Stage::Compile));
                    }
                    self.render.record(t.stage_ns(Stage::Render));
                    self.write.record(t.stage_ns(Stage::Write));
                }
            },
        }
        trace_event!(EVENT_ACCESS,
            "id" => t.id,
            "op" => t.kind.label(),
            "status" => t.class.label(),
            "cache" => if t.kind != ReqKind::Compile || t.class != ReplyClass::Ok {
                "none"
            } else if t.memo {
                "memo"
            } else {
                "compiled"
            },
            "parse_ns" => t.stage_ns(Stage::Parse),
            "queue_ns" => t.stage_ns(Stage::Queue),
            "compile_ns" => t.stage_ns(Stage::Compile),
            "render_ns" => t.stage_ns(Stage::Render),
            "write_ns" => t.stage_ns(Stage::Write),
            "total_ns" => t.total_ns(),
            "bytes_in" => t.bytes_in,
            "bytes_out" => t.bytes_out,
        );
    }

    /// A worker started compiling a batch.
    pub fn worker_busy_enter(&self) {
        let now = self.busy_workers.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_busy_workers.fetch_max(now, Ordering::Relaxed);
    }

    /// A worker finished its batch (called before the replies are sent,
    /// so a client that has seen its reply also sees the worker idle).
    pub fn worker_busy_exit(&self) {
        self.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Admission control admitted a request; `inflight_now` is the new
    /// queued-or-running total.
    pub fn note_admitted(&self, inflight_now: u64) {
        self.peak_inflight
            .fetch_max(inflight_now, Ordering::Relaxed);
    }

    /// A shard queue grew to `depth` entries.
    pub fn note_queue_depth(&self, depth: u64) {
        self.peak_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Whole-request memo hits so far.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits.load(Ordering::Relaxed)
    }

    /// Busy refusals so far.
    pub fn busy_replies(&self) -> u64 {
        self.busy_replies.load(Ordering::Relaxed)
    }

    /// Successful compile replies so far (fresh + memo).
    pub fn requests_served(&self) -> u64 {
        self.requests_served.load(Ordering::Relaxed)
    }

    /// Assembles the full snapshot. The caller supplies the scheduler
    /// gauges the registry cannot see (current inflight, per-shard queue
    /// depths) and the function-cache counters.
    pub fn snapshot(
        &self,
        inflight: u64,
        queue_depths: Vec<u64>,
        cache: &CacheStats,
    ) -> TelemetrySnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        TelemetrySnapshot {
            counters: TelemetryCounters {
                requests_served: load(&self.requests_served),
                memo_hits: load(&self.memo_hits),
                busy_replies: load(&self.busy_replies),
                error_replies: load(&self.error_replies),
                stats_requests: load(&self.stats_requests),
                invalid_requests: load(&self.invalid_requests),
                bytes_in: load(&self.bytes_in),
                bytes_out: load(&self.bytes_out),
                hot_requests: load(&self.hot_requests),
                native_runs: load(&self.native_runs),
                native_ops: load(&self.native_ops),
            },
            cache: CacheCounters {
                hits: cache.hits,
                misses: cache.misses,
                evictions: cache.evictions,
                entries: cache.entries as u64,
            },
            gauges: TelemetryGauges {
                inflight,
                busy_workers: load(&self.busy_workers),
                queue_depths,
                peak_inflight: load(&self.peak_inflight),
                peak_busy_workers: load(&self.peak_busy_workers),
                peak_queue_depth: load(&self.peak_queue_depth),
            },
            hists: vec![
                ("request_total".to_string(), self.request_total.snapshot()),
                ("parse".to_string(), self.parse.snapshot()),
                ("queue".to_string(), self.queue.snapshot()),
                ("compile_hit".to_string(), self.compile_hit.snapshot()),
                ("compile_miss".to_string(), self.compile_miss.snapshot()),
                ("render".to_string(), self.render.snapshot()),
                ("write".to_string(), self.write.snapshot()),
            ],
        }
    }
}

/// Lifetime counters. `requests_served` counts successful compile
/// replies only — it equals every stage histogram's `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryCounters {
    pub requests_served: u64,
    pub memo_hits: u64,
    pub busy_replies: u64,
    pub error_replies: u64,
    pub stats_requests: u64,
    pub invalid_requests: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Served compiles whose `hot` artifact ran native code.
    pub hot_requests: u64,
    /// Instrumented native activations across those requests.
    pub native_runs: u64,
    /// Native instruction executions those activations measured.
    pub native_ops: u64,
}

/// Function-level artifact-cache counters (mirrors
/// [`snslp_core::CacheStats`], with `entries` widened for the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub entries: u64,
}

/// Point-in-time scheduler gauges plus lifetime peaks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetryGauges {
    /// Compile requests queued-or-running right now.
    pub inflight: u64,
    /// Workers inside a batch compile right now.
    pub busy_workers: u64,
    /// Current depth of each shard queue, in shard order.
    pub queue_depths: Vec<u64>,
    pub peak_inflight: u64,
    pub peak_busy_workers: u64,
    pub peak_queue_depth: u64,
}

/// One `snslpd-telemetry/v1` document: counters, cache, gauges, and the
/// seven latency histograms of [`HIST_NAMES`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    pub counters: TelemetryCounters,
    pub cache: CacheCounters,
    pub gauges: TelemetryGauges,
    /// `(name, snapshot)` in [`HIST_NAMES`] order.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl TelemetrySnapshot {
    /// An all-zero snapshot (useful as a delta baseline).
    pub fn empty(shards: usize) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: TelemetryCounters::default(),
            cache: CacheCounters::default(),
            gauges: TelemetryGauges {
                queue_depths: vec![0; shards],
                ..Default::default()
            },
            hists: HIST_NAMES
                .iter()
                .map(|n| (n.to_string(), HistSnapshot::empty()))
                .collect(),
        }
    }

    /// The named histogram, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Everything that happened between `earlier` and `self` (two
    /// snapshots of the same server, `self` taken later): counters and
    /// cache subtract, histograms take bucket-wise deltas, gauges come
    /// from `self` (they are point-in-time, not cumulative).
    #[must_use]
    pub fn delta(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let c = &self.counters;
        let e = &earlier.counters;
        TelemetrySnapshot {
            counters: TelemetryCounters {
                requests_served: c.requests_served.saturating_sub(e.requests_served),
                memo_hits: c.memo_hits.saturating_sub(e.memo_hits),
                busy_replies: c.busy_replies.saturating_sub(e.busy_replies),
                error_replies: c.error_replies.saturating_sub(e.error_replies),
                stats_requests: c.stats_requests.saturating_sub(e.stats_requests),
                invalid_requests: c.invalid_requests.saturating_sub(e.invalid_requests),
                bytes_in: c.bytes_in.saturating_sub(e.bytes_in),
                bytes_out: c.bytes_out.saturating_sub(e.bytes_out),
                hot_requests: c.hot_requests.saturating_sub(e.hot_requests),
                native_runs: c.native_runs.saturating_sub(e.native_runs),
                native_ops: c.native_ops.saturating_sub(e.native_ops),
            },
            cache: CacheCounters {
                hits: self.cache.hits.saturating_sub(earlier.cache.hits),
                misses: self.cache.misses.saturating_sub(earlier.cache.misses),
                evictions: self.cache.evictions.saturating_sub(earlier.cache.evictions),
                entries: self.cache.entries,
            },
            gauges: self.gauges.clone(),
            hists: self
                .hists
                .iter()
                .map(|(name, h)| {
                    let before = earlier.hist(name).cloned().unwrap_or_default();
                    (name.clone(), h.delta(&before))
                })
                .collect(),
        }
    }

    // -- wire form ----------------------------------------------------

    /// The snapshot as a JSON value (deterministic member order).
    pub fn to_json(&self) -> Json {
        let num = |v: u64| Json::Num(v as f64);
        let c = &self.counters;
        let g = &self.gauges;
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(TELEMETRY_SCHEMA.to_string()),
            ),
            (
                "counters".to_string(),
                Json::Obj(vec![
                    ("requests_served".to_string(), num(c.requests_served)),
                    ("memo_hits".to_string(), num(c.memo_hits)),
                    ("busy_replies".to_string(), num(c.busy_replies)),
                    ("error_replies".to_string(), num(c.error_replies)),
                    ("stats_requests".to_string(), num(c.stats_requests)),
                    ("invalid_requests".to_string(), num(c.invalid_requests)),
                    ("bytes_in".to_string(), num(c.bytes_in)),
                    ("bytes_out".to_string(), num(c.bytes_out)),
                    ("hot_requests".to_string(), num(c.hot_requests)),
                    ("native_runs".to_string(), num(c.native_runs)),
                    ("native_ops".to_string(), num(c.native_ops)),
                ]),
            ),
            (
                "cache".to_string(),
                Json::Obj(vec![
                    ("hits".to_string(), num(self.cache.hits)),
                    ("misses".to_string(), num(self.cache.misses)),
                    ("evictions".to_string(), num(self.cache.evictions)),
                    ("entries".to_string(), num(self.cache.entries)),
                ]),
            ),
            (
                "gauges".to_string(),
                Json::Obj(vec![
                    ("inflight".to_string(), num(g.inflight)),
                    ("busy_workers".to_string(), num(g.busy_workers)),
                    (
                        "queue_depths".to_string(),
                        Json::Arr(g.queue_depths.iter().map(|&d| num(d)).collect()),
                    ),
                    ("peak_inflight".to_string(), num(g.peak_inflight)),
                    ("peak_busy_workers".to_string(), num(g.peak_busy_workers)),
                    ("peak_queue_depth".to_string(), num(g.peak_queue_depth)),
                ]),
            ),
            (
                "histograms".to_string(),
                Json::Obj(
                    self.hists
                        .iter()
                        .map(|(name, h)| (name.clone(), hist_to_json(h)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Pretty-printed document (the golden-file form).
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// The strict re-validating reader. Beyond shape and types it
    /// re-derives every derivable field and rejects any disagreement:
    /// quantiles must match a recomputation from the buckets, bucket
    /// counts must sum to `count`, `min`/`max` must fall inside the
    /// outermost occupied buckets, stage-histogram counts must equal
    /// `requests_served`, and the stage sums must add up to the
    /// request-total sum.
    pub fn from_json(doc: &Json) -> Result<TelemetrySnapshot, String> {
        check_schema(doc, TELEMETRY_SCHEMA)?;
        let top = members_of(doc, "snapshot")?;
        expect_keys(
            top,
            &["schema", "counters", "cache", "gauges", "histograms"],
            "snapshot",
        )?;

        let counters = doc.get("counters").expect("checked");
        let cm = members_of(counters, "counters")?;
        expect_keys(
            cm,
            &[
                "requests_served",
                "memo_hits",
                "busy_replies",
                "error_replies",
                "stats_requests",
                "invalid_requests",
                "bytes_in",
                "bytes_out",
                "hot_requests",
                "native_runs",
                "native_ops",
            ],
            "counters",
        )?;
        let counters = TelemetryCounters {
            requests_served: u64_field(counters, "requests_served")?,
            memo_hits: u64_field(counters, "memo_hits")?,
            busy_replies: u64_field(counters, "busy_replies")?,
            error_replies: u64_field(counters, "error_replies")?,
            stats_requests: u64_field(counters, "stats_requests")?,
            invalid_requests: u64_field(counters, "invalid_requests")?,
            bytes_in: u64_field(counters, "bytes_in")?,
            bytes_out: u64_field(counters, "bytes_out")?,
            hot_requests: u64_field(counters, "hot_requests")?,
            native_runs: u64_field(counters, "native_runs")?,
            native_ops: u64_field(counters, "native_ops")?,
        };

        let cache = doc.get("cache").expect("checked");
        expect_keys(
            members_of(cache, "cache")?,
            &["hits", "misses", "evictions", "entries"],
            "cache",
        )?;
        let cache = CacheCounters {
            hits: u64_field(cache, "hits")?,
            misses: u64_field(cache, "misses")?,
            evictions: u64_field(cache, "evictions")?,
            entries: u64_field(cache, "entries")?,
        };

        let gauges = doc.get("gauges").expect("checked");
        expect_keys(
            members_of(gauges, "gauges")?,
            &[
                "inflight",
                "busy_workers",
                "queue_depths",
                "peak_inflight",
                "peak_busy_workers",
                "peak_queue_depth",
            ],
            "gauges",
        )?;
        let depths = gauges
            .get("queue_depths")
            .and_then(Json::as_arr)
            .ok_or("gauges.queue_depths must be an array")?;
        let queue_depths = depths
            .iter()
            .map(|d| as_u64(d).ok_or_else(|| "queue_depths entries must be u64".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        if queue_depths.is_empty() {
            return Err("gauges.queue_depths must name at least one shard".to_string());
        }
        let gauges = TelemetryGauges {
            inflight: u64_field(gauges, "inflight")?,
            busy_workers: u64_field(gauges, "busy_workers")?,
            queue_depths,
            peak_inflight: u64_field(gauges, "peak_inflight")?,
            peak_busy_workers: u64_field(gauges, "peak_busy_workers")?,
            peak_queue_depth: u64_field(gauges, "peak_queue_depth")?,
        };

        let hists_doc = doc.get("histograms").expect("checked");
        let hist_members = members_of(hists_doc, "histograms")?;
        expect_keys(hist_members, &HIST_NAMES, "histograms")?;
        let mut hists = Vec::with_capacity(HIST_NAMES.len());
        for name in HIST_NAMES {
            let h = hists_doc.get(name).expect("checked");
            let snap = hist_from_json(h).map_err(|e| format!("histograms.{name}: {e}"))?;
            hists.push((name.to_string(), snap));
        }

        let snapshot = TelemetrySnapshot {
            counters,
            cache,
            gauges,
            hists,
        };
        snapshot.check_cross_invariants()?;
        Ok(snapshot)
    }

    /// Counter/histogram agreement: the invariants the recording policy
    /// guarantees, re-checked on every read so the two can never
    /// silently diverge.
    fn check_cross_invariants(&self) -> Result<(), String> {
        let served = self.counters.requests_served;
        let total = self.hist("request_total").expect("canonical set");
        if total.count != served {
            return Err(format!(
                "request_total.count {} != counters.requests_served {served}",
                total.count
            ));
        }
        let hit = self.hist("compile_hit").expect("canonical set");
        let miss = self.hist("compile_miss").expect("canonical set");
        if hit.count + miss.count != served {
            return Err(format!(
                "compile_hit.count {} + compile_miss.count {} != requests_served {served}",
                hit.count, miss.count
            ));
        }
        if hit.count != self.counters.memo_hits {
            return Err(format!(
                "compile_hit.count {} != counters.memo_hits {}",
                hit.count, self.counters.memo_hits
            ));
        }
        let mut stage_sum = 0u64;
        for name in ["parse", "queue", "render", "write"] {
            let h = self.hist(name).expect("canonical set");
            if h.count != served {
                return Err(format!(
                    "{name}.count {} != counters.requests_served {served}",
                    h.count
                ));
            }
            stage_sum += h.sum;
        }
        stage_sum += hit.sum + miss.sum;
        if stage_sum != total.sum {
            return Err(format!(
                "stage sums {stage_sum} != request_total.sum {} \
                 (stages must partition every request's span)",
                total.sum
            ));
        }
        let c = &self.counters;
        if c.hot_requests > served {
            return Err(format!(
                "hot_requests {} > requests_served {served} \
                 (only served compiles can run native code)",
                c.hot_requests
            ));
        }
        if c.native_runs < c.hot_requests {
            return Err(format!(
                "native_runs {} < hot_requests {} \
                 (every hot request executes at least one activation)",
                c.native_runs, c.hot_requests
            ));
        }
        if c.native_ops > 0 && c.native_runs == 0 {
            return Err(format!(
                "native_ops {} counted without any native_runs",
                c.native_ops
            ));
        }
        Ok(())
    }
}

/// Renders one histogram as its wire object: summary fields plus sparse
/// `[index, count]` bucket pairs.
fn hist_to_json(h: &HistSnapshot) -> Json {
    let num = |v: u64| Json::Num(v as f64);
    Json::Obj(vec![
        ("count".to_string(), num(h.count)),
        ("sum_ns".to_string(), num(h.sum)),
        ("min_ns".to_string(), num(h.min)),
        ("max_ns".to_string(), num(h.max)),
        ("p50_ns".to_string(), num(h.quantile(50.0))),
        ("p90_ns".to_string(), num(h.quantile(90.0))),
        ("p99_ns".to_string(), num(h.quantile(99.0))),
        (
            "buckets".to_string(),
            Json::Arr(
                h.buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| Json::Arr(vec![num(i as u64), num(c)]))
                    .collect(),
            ),
        ),
    ])
}

/// Strict histogram reader: rebuilds the dense snapshot from the sparse
/// pairs, then re-derives the summary fields and rejects disagreement.
fn hist_from_json(doc: &Json) -> Result<HistSnapshot, String> {
    expect_keys(
        members_of(doc, "histogram")?,
        &[
            "count", "sum_ns", "min_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns", "buckets",
        ],
        "histogram",
    )?;
    let count = u64_field(doc, "count")?;
    let sum = u64_field(doc, "sum_ns")?;
    let min = u64_field(doc, "min_ns")?;
    let max = u64_field(doc, "max_ns")?;
    let pairs = doc
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("`buckets` must be an array")?;
    let mut buckets = vec![0u64; NUM_BUCKETS];
    let mut last_idx: Option<usize> = None;
    let mut bucket_total = 0u64;
    for pair in pairs {
        let pair = pair
            .as_arr()
            .ok_or("bucket entries must be [index, count]")?;
        let [idx, c] = pair else {
            return Err("bucket entries must be [index, count]".to_string());
        };
        let idx = as_u64(idx).ok_or("bucket index must be a u64")? as usize;
        let c = as_u64(c).ok_or("bucket count must be a u64")?;
        if idx >= NUM_BUCKETS {
            return Err(format!("bucket index {idx} out of range"));
        }
        if last_idx.is_some_and(|prev| idx <= prev) {
            return Err("bucket indices must be strictly ascending".to_string());
        }
        if c == 0 {
            return Err("sparse buckets must omit zero counts".to_string());
        }
        last_idx = Some(idx);
        buckets[idx] = c;
        bucket_total += c;
    }
    if bucket_total != count {
        return Err(format!(
            "bucket counts sum to {bucket_total}, `count` says {count}"
        ));
    }
    let snap = HistSnapshot {
        buckets,
        count,
        sum,
        min,
        max,
    };
    if count == 0 {
        if sum != 0 || min != 0 || max != 0 {
            return Err("empty histogram must have zero sum/min/max".to_string());
        }
    } else {
        let first = snap.buckets.iter().position(|&c| c > 0).expect("count > 0");
        let last = snap
            .buckets
            .iter()
            .rposition(|&c| c > 0)
            .expect("count > 0");
        let in_bucket = |v: u64, i: usize| v >= bucket_lo(i) && v - bucket_lo(i) < bucket_width(i);
        if !in_bucket(min, first) {
            return Err(format!(
                "min_ns {min} outside first occupied bucket {first}"
            ));
        }
        if !in_bucket(max, last) {
            return Err(format!("max_ns {max} outside last occupied bucket {last}"));
        }
        if min > max {
            return Err("min_ns > max_ns".to_string());
        }
        if sum < count.saturating_mul(min) || sum > count.saturating_mul(max) {
            return Err(format!(
                "sum_ns {sum} implausible for count {count} in [{min}, {max}]"
            ));
        }
    }
    for (key, p) in [("p50_ns", 50.0), ("p90_ns", 90.0), ("p99_ns", 99.0)] {
        let claimed = u64_field(doc, key)?;
        let derived = snap.quantile(p);
        if claimed != derived {
            return Err(format!(
                "{key} {claimed} disagrees with bucket recomputation {derived}"
            ));
        }
    }
    Ok(snap)
}

// -- human rendering ---------------------------------------------------

/// Formats nanoseconds with an adaptive unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the snapshot as an aligned human-readable table — the
/// `snslp-client stats` and `snslp-top --once` form.
pub fn render_table(s: &TelemetrySnapshot) -> String {
    use std::fmt::Write as _;
    let c = &s.counters;
    let g = &s.gauges;
    let mut out = String::new();
    let _ = writeln!(out, "snslpd telemetry ({TELEMETRY_SCHEMA})");
    out.push_str("\ncounters\n");
    let rows = [
        ("requests_served", c.requests_served),
        ("memo_hits", c.memo_hits),
        ("busy_replies", c.busy_replies),
        ("error_replies", c.error_replies),
        ("stats_requests", c.stats_requests),
        ("invalid_requests", c.invalid_requests),
        ("bytes_in", c.bytes_in),
        ("bytes_out", c.bytes_out),
        ("hot_requests", c.hot_requests),
        ("native_runs", c.native_runs),
        ("native_ops", c.native_ops),
    ];
    for (name, v) in rows {
        let _ = writeln!(out, "  {name:<18} {v:>12}");
    }
    let lookups = s.cache.hits + s.cache.misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        100.0 * s.cache.hits as f64 / lookups as f64
    };
    out.push_str("\ncache\n");
    let _ = writeln!(
        out,
        "  hits {:<10} misses {:<10} evictions {:<8} entries {:<8} hit_rate {:.1}%",
        s.cache.hits, s.cache.misses, s.cache.evictions, s.cache.entries, hit_rate
    );
    out.push_str("\ngauges\n");
    let depths = g
        .queue_depths
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        out,
        "  inflight {:<6} busy_workers {:<6} queue_depths [{depths}]",
        g.inflight, g.busy_workers
    );
    let _ = writeln!(
        out,
        "  peaks: inflight {:<6} busy_workers {:<6} queue_depth {}",
        g.peak_inflight, g.peak_busy_workers, g.peak_queue_depth
    );
    out.push_str("\nhistograms\n");
    let _ = writeln!(
        out,
        "  {:<15} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p90", "p99", "max"
    );
    for (name, h) in &s.hists {
        let _ = writeln!(
            out,
            "  {:<15} {:>8} {:>10} {:>10} {:>10} {:>10}",
            name,
            h.count,
            fmt_ns(h.quantile(50.0)),
            fmt_ns(h.quantile(90.0)),
            fmt_ns(h.quantile(99.0)),
            fmt_ns(h.max),
        );
    }
    out
}

/// Compresses a histogram's occupied bucket range into at most `cols`
/// columns of block glyphs (`▁`..`█`), each column scaled against the
/// densest column. Empty histograms render as an empty string.
pub fn sparkline(h: &HistSnapshot, cols: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (Some(first), Some(last)) = (
        h.buckets.iter().position(|&c| c > 0),
        h.buckets.iter().rposition(|&c| c > 0),
    ) else {
        return String::new();
    };
    let span = last - first + 1;
    let mut columns = vec![0u64; cols.max(1).min(span)];
    let n = columns.len();
    for (i, &c) in h.buckets[first..=last].iter().enumerate() {
        columns[i * n / span] += c;
    }
    let peak = *columns.iter().max().expect("at least one column");
    columns
        .iter()
        .map(|&c| {
            if c == 0 {
                ' '
            } else {
                GLYPHS[((c * 8).div_ceil(peak) as usize).clamp(1, 8) - 1]
            }
        })
        .collect()
}

// -- small JSON helpers ------------------------------------------------

fn members_of<'j>(doc: &'j Json, what: &str) -> Result<&'j [(String, Json)], String> {
    match doc {
        Json::Obj(members) => Ok(members),
        _ => Err(format!("`{what}` must be an object")),
    }
}

fn expect_keys(members: &[(String, Json)], expected: &[&str], what: &str) -> Result<(), String> {
    for (k, _) in members {
        if !expected.contains(&k.as_str()) {
            return Err(format!("`{what}` has unknown member `{k}`"));
        }
    }
    for want in expected {
        if !members.iter().any(|(k, _)| k == want) {
            return Err(format!("`{what}` is missing member `{want}`"));
        }
    }
    Ok(())
}

fn as_u64(v: &Json) -> Option<u64> {
    let n = v.as_num()?;
    (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
}

fn u64_field(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(as_u64)
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_trace::hist::Histogram;

    fn sample_snapshot() -> TelemetrySnapshot {
        let telem = Telemetry::new();
        // Three served requests: two compiled, one memo hit. The first
        // compile also renders a `hot` artifact (native execution).
        for (memo, scale) in [(false, 7u64), (false, 3), (true, 1)] {
            let mut t = ReqTelem::start(100);
            t.kind = ReqKind::Compile;
            t.class = ReplyClass::Ok;
            t.memo = memo;
            if scale == 7 {
                t.note_native(4, 1_000);
            }
            // Synthesize stage times directly (virtual-clock-free).
            t.stage_ns = [
                50 * scale,
                200 * scale,
                9000 * scale,
                30 * scale,
                20 * scale,
            ];
            t.last_ns = t.start_ns + t.stage_ns.iter().sum::<u64>();
            t.set_bytes_out(400);
            telem.record(&t);
        }
        let mut busy = ReqTelem::start(80);
        busy.kind = ReqKind::Compile;
        busy.class = ReplyClass::Busy;
        busy.set_bytes_out(60);
        telem.record(&busy);
        telem.note_admitted(2);
        telem.note_queue_depth(3);
        telem.snapshot(
            1,
            vec![0, 2],
            &CacheStats {
                hits: 10,
                misses: 5,
                evictions: 1,
                entries: 5,
            },
        )
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample_snapshot();
        assert_eq!(snap.counters.requests_served, 3);
        assert_eq!(snap.counters.memo_hits, 1);
        assert_eq!(snap.counters.busy_replies, 1);
        assert_eq!(snap.counters.hot_requests, 1);
        assert_eq!(snap.counters.native_runs, 4);
        assert_eq!(snap.counters.native_ops, 1_000);
        let doc = Json::parse(&snap.render()).unwrap();
        let back = TelemetrySnapshot::from_json(&doc).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn busy_replies_stay_out_of_the_histograms() {
        let snap = sample_snapshot();
        assert_eq!(snap.hist("request_total").unwrap().count, 3);
        assert_eq!(snap.counters.busy_replies, 1);
        // bytes still counted for the busy request
        assert_eq!(snap.counters.bytes_in, 380);
    }

    #[test]
    fn reader_rejects_tampered_documents() {
        let snap = sample_snapshot();
        let tamper = |edit: &dyn Fn(&mut Json)| -> Result<TelemetrySnapshot, String> {
            let mut doc = Json::parse(&snap.render()).unwrap();
            edit(&mut doc);
            TelemetrySnapshot::from_json(&doc)
        };
        let set = |doc: &mut Json, path: &[&str], v: Json| {
            let mut cur = doc;
            for (i, key) in path.iter().enumerate() {
                let Json::Obj(members) = cur else {
                    panic!("not an object")
                };
                let slot = &mut members
                    .iter_mut()
                    .find(|(k, _)| k == key)
                    .expect("path exists")
                    .1;
                if i + 1 == path.len() {
                    *slot = v;
                    return;
                }
                cur = slot;
            }
        };
        // Wrong schema tag.
        assert!(tamper(&|d| set(d, &["schema"], Json::Str("nope/v0".into()))).is_err());
        // Counter that disagrees with the histograms.
        assert!(tamper(&|d| set(d, &["counters", "requests_served"], Json::Num(99.0))).is_err());
        // Native ops without any recorded activation.
        assert!(tamper(&|d| set(d, &["counters", "native_runs"], Json::Num(0.0))).is_err());
        // More hot requests than served compiles.
        assert!(tamper(&|d| set(d, &["counters", "hot_requests"], Json::Num(9.0))).is_err());
        // Quantile that disagrees with the buckets.
        assert!(tamper(&|d| set(
            d,
            &["histograms", "request_total", "p50_ns"],
            Json::Num(1.0)
        ))
        .is_err());
        // Unknown member.
        assert!(tamper(&|d| {
            let Json::Obj(members) = d else {
                unreachable!()
            };
            members.push(("extra".to_string(), Json::Null));
        })
        .is_err());
        // Untouched parses fine.
        assert!(tamper(&|_| {}).is_ok());
    }

    #[test]
    fn delta_isolates_a_window() {
        let telem = Telemetry::new();
        let record_one = |memo: bool| {
            let mut t = ReqTelem::start(10);
            t.kind = ReqKind::Compile;
            t.class = ReplyClass::Ok;
            t.memo = memo;
            t.stage_ns = [1, 2, 3, 4, 5];
            t.last_ns = t.start_ns + 15;
            t.set_bytes_out(20);
            telem.record(&t);
        };
        let stats = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
        };
        record_one(false);
        let before = telem.snapshot(0, vec![0], &stats);
        record_one(true);
        record_one(true);
        let after = telem.snapshot(0, vec![0], &stats);
        let window = after.delta(&before);
        assert_eq!(window.counters.requests_served, 2);
        assert_eq!(window.counters.memo_hits, 2);
        assert_eq!(window.hist("request_total").unwrap().count, 2);
        assert_eq!(window.hist("compile_miss").unwrap().count, 0);
        // Deltas still satisfy every cross-invariant.
        window.check_cross_invariants().unwrap();
    }

    #[test]
    fn table_rendering_covers_every_histogram() {
        let table = render_table(&sample_snapshot());
        for name in HIST_NAMES {
            assert!(table.contains(name), "table missing {name}");
        }
        assert!(table.contains("hit_rate"));
    }

    #[test]
    fn sparkline_scales_to_the_densest_column() {
        let hist = Histogram::new();
        for _ in 0..80 {
            hist.record(1_000);
        }
        hist.record(1_000_000);
        let line = sparkline(&hist.snapshot(), 16);
        assert!(line.chars().count() <= 16);
        assert!(line.contains('█'), "dense column must peak: {line:?}");
        assert!(line.contains('▁'), "sparse column must floor: {line:?}");
        assert_eq!(sparkline(&Histogram::new().snapshot(), 16), "");
    }

    #[test]
    fn empty_histogram_serializes_and_validates() {
        let h = Histogram::new().snapshot();
        let doc = hist_to_json(&h);
        let back = hist_from_json(&doc).unwrap();
        assert_eq!(back, h);
    }
}
