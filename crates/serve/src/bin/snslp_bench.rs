//! `snslp-bench` — load generator for the compile service.
//!
//! Usage:
//!   `snslp-bench serve [target] [traffic flags] [--out FILE] [--check]`
//!
//! Target (pick one):
//!   `--socket PATH`   drive an already-running snslpd
//!   `--spawn`         spawn the sibling `snslpd` binary on a temp socket
//!   (neither)         start an in-process server on a temp socket
//!
//! Traffic flags:
//!   `--clients N` `--requests N` `--functions N` `--seed N`
//!   `--mode slp|lslp|snslp` `--target-isa sse2|avx2|noaltop`
//!
//! Output: the `snslp-serve-bench/v2` report JSON on stdout (and to
//! `--out FILE`). With `--check`, the report is additionally run through
//! the same shape-invariant gate as `bench_check serve` and the exit
//! status reflects it.

use std::path::PathBuf;
use std::process::ExitCode;

use snslp_bench::servebench::{check_serve, ServeBenchReport};
use snslp_serve::{run_loadgen, LoadgenOptions, ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: snslp-bench serve [--socket PATH | --spawn] [--clients N] [--requests N] \
         [--functions N] [--seed N] [--mode M] [--target-isa T] [--out FILE] [--check]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    value.and_then(|v| v.parse::<T>().ok()).unwrap_or_else(|| {
        eprintln!("snslp-bench: {flag} needs a numeric argument");
        usage();
    })
}

/// Blocks until `path` exists (the daemon's readiness signal).
fn wait_for_socket(path: &std::path::Path) -> Result<(), String> {
    for _ in 0..2000 {
        if path.exists() {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    Err(format!("timed out waiting for socket {}", path.display()))
}

fn temp_socket() -> PathBuf {
    std::env::temp_dir().join(format!("snslpd-bench-{}.sock", std::process::id()))
}

fn serve_main(args: &[String]) -> ExitCode {
    let mut opts = LoadgenOptions::default();
    let mut socket: Option<PathBuf> = None;
    let mut spawn = false;
    let mut out: Option<String> = None;
    let mut check = false;
    let mut it = args.iter().cloned();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = it.next().map(PathBuf::from),
            "--spawn" => spawn = true,
            "--clients" => opts.clients = parse_num("--clients", it.next()),
            "--requests" => opts.requests_per_client = parse_num("--requests", it.next()),
            "--functions" => opts.functions_per_module = parse_num("--functions", it.next()),
            "--seed" => opts.seed = parse_num("--seed", it.next()),
            "--mode" => opts.mode = it.next().unwrap_or_else(|| usage()),
            "--target-isa" => opts.target = it.next().unwrap_or_else(|| usage()),
            "--out" => out = Some(it.next().unwrap_or_else(|| usage())),
            "--check" => check = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("snslp-bench: unknown argument {other}");
                usage();
            }
        }
    }
    if spawn && socket.is_some() {
        eprintln!("snslp-bench: --spawn and --socket are mutually exclusive");
        usage();
    }
    if opts.clients == 0 || opts.requests_per_client == 0 || opts.functions_per_module == 0 {
        eprintln!("snslp-bench: --clients/--requests/--functions must be positive");
        usage();
    }

    // Stand the server up (or point at one), run, then tear down.
    let mut child: Option<std::process::Child> = None;
    let mut local: Option<Server> = None;
    let socket_path = match socket {
        Some(path) => path,
        None => {
            let path = temp_socket();
            if spawn {
                let snslpd = std::env::current_exe()
                    .ok()
                    .and_then(|p| p.parent().map(|d| d.join("snslpd")))
                    .filter(|p| p.exists());
                let Some(snslpd) = snslpd else {
                    eprintln!("snslp-bench: cannot find a sibling snslpd binary for --spawn");
                    return ExitCode::FAILURE;
                };
                match std::process::Command::new(&snslpd)
                    .args(["--socket"])
                    .arg(&path)
                    .spawn()
                {
                    Ok(c) => child = Some(c),
                    Err(e) => {
                        eprintln!("snslp-bench: cannot spawn {}: {e}", snslpd.display());
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                let mut server = Server::start(ServeConfig::default());
                if let Err(e) = server.bind_unix(&path) {
                    eprintln!("snslp-bench: cannot bind {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                local = Some(server);
            }
            path
        }
    };

    let result = wait_for_socket(&socket_path).and_then(|()| run_loadgen(&socket_path, &opts));

    if let Some(mut child) = child {
        let _ = child.kill();
        let _ = child.wait();
        let _ = std::fs::remove_file(&socket_path);
    }
    if let Some(server) = local {
        server.shutdown();
    }

    let report: ServeBenchReport = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("snslp-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let json = report.to_json();
    println!("{json}");
    if let Some(out) = &out {
        if let Err(e) = std::fs::write(out, &json) {
            eprintln!("snslp-bench: cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("snslp-bench: wrote report to {out}");
    }
    if check {
        match check_serve(&report, "fresh") {
            Ok(summary) => eprint!("{summary}"),
            Err(e) => {
                eprintln!("snslp-bench: gate failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => serve_main(&argv[1..]),
        _ => usage(),
    }
}
