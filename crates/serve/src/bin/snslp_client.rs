//! `snslp-client` — one-shot CLI client for `snslpd`.
//!
//! Usage:
//!   `snslp-client --socket PATH [--mode M] [--target T] [--artifact A]... FILE`
//!   `snslp-client --socket PATH --stats [--json]`
//!
//! `FILE` is a `.snir` module (`-` for stdin). The raw reply line is
//! printed to stdout; exit status is non-zero unless the reply status is
//! `ok`. Busy replies are retried with a short backoff.
//!
//! `--stats` renders the server's telemetry snapshot as an aligned
//! human-readable table (strictly validated on the way in); add `--json`
//! for the raw wire reply instead.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;

use snslp_serve::telemetry::{render_table, TelemetrySnapshot};
use snslp_serve::{Client, STATUS_OK};

fn usage() -> ! {
    eprintln!(
        "usage: snslp-client --socket PATH [--mode slp|lslp|snslp] [--target sse2|avx2|noaltop] \
         [--artifact codegen|html|dynstats]... (FILE|- | --stats [--json])"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut mode = "snslp".to_string();
    let mut target = "avx2".to_string();
    let mut artifacts: Vec<String> = Vec::new();
    let mut stats = false;
    let mut json = false;
    let mut input: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next().map(PathBuf::from),
            "--mode" => mode = args.next().unwrap_or_else(|| usage()),
            "--target" => target = args.next().unwrap_or_else(|| usage()),
            "--artifact" => artifacts.push(args.next().unwrap_or_else(|| usage())),
            "--stats" => stats = true,
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with("--") => {
                eprintln!("snslp-client: unknown argument {other}");
                usage();
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    eprintln!("snslp-client: more than one input file");
                    usage();
                }
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("snslp-client: --socket is required");
        usage();
    };

    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("snslp-client: cannot connect to {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };

    if stats && !json {
        // Human form: fetch, strictly validate, render the table.
        return match client.stats() {
            Ok(reply) => {
                let snapshot = reply
                    .json
                    .get("telemetry")
                    .ok_or_else(|| "stats reply lacks a `telemetry` member".to_string())
                    .and_then(TelemetrySnapshot::from_json);
                match snapshot {
                    Ok(snapshot) => {
                        print!("{}", render_table(&snapshot));
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("snslp-client: invalid telemetry snapshot: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                eprintln!("snslp-client: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let reply = if stats {
        client.stats()
    } else {
        let Some(input) = input else {
            eprintln!("snslp-client: no input file (or pass --stats)");
            usage();
        };
        let text = if input == "-" {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("snslp-client: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buf
        } else {
            match std::fs::read_to_string(&input) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("snslp-client: cannot read {input}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        };
        let artifact_refs: Vec<&str> = artifacts.iter().map(String::as_str).collect();
        client
            .compile(&text, &mode, &target, &artifact_refs)
            .map(|(reply, _busy)| reply)
    };

    match reply {
        Ok(reply) => {
            println!("{}", reply.raw);
            if stats || reply.status == STATUS_OK {
                ExitCode::SUCCESS
            } else {
                eprintln!(
                    "snslp-client: server answered {}: {}",
                    reply.status,
                    reply.error.as_deref().unwrap_or("(no error message)")
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("snslp-client: {e}");
            ExitCode::FAILURE
        }
    }
}
