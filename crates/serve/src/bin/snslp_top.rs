//! `snslp-top` — live terminal dashboard for a running `snslpd`.
//!
//! Usage:
//!   `snslp-top --socket PATH [--interval SECS] [--once] [--snapshot FILE]`
//!
//! Polls the server's `stats` op, strictly re-validates each
//! `snslpd-telemetry/v1` snapshot with the shared reader, and redraws a
//! terminal dashboard: counters, scheduler gauges, cache hit rate, and
//! the per-stage latency histograms as p50/p90/p99 rows with log-bucket
//! sparklines. Between polls it also shows interval rates (requests/s,
//! memo hits/s) computed from snapshot deltas.
//!
//! `--once` prints a single plain-text frame and exits — the CI form.
//! `--snapshot FILE` additionally writes the latest validated snapshot
//! (pretty JSON, trailing newline) to `FILE` on every poll, so smoke
//! jobs can both eyeball the dashboard and archive the raw document.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use snslp_serve::telemetry::{fmt_ns, render_table, sparkline, TelemetrySnapshot};
use snslp_serve::Client;

const SPARK_COLS: usize = 24;

fn usage() -> ! {
    eprintln!("usage: snslp-top --socket PATH [--interval SECS] [--once] [--snapshot FILE]");
    std::process::exit(2);
}

/// The distribution block appended to every frame: one sparkline per
/// occupied histogram, labelled with its observed range.
fn distributions(s: &TelemetrySnapshot) -> String {
    let mut out = String::from("\ndistribution (log buckets, ≤6.25% wide)\n");
    for (name, h) in &s.hists {
        let line = sparkline(h, SPARK_COLS);
        if line.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<15} {:<SPARK_COLS$} [{} .. {}]",
            name,
            line,
            fmt_ns(h.min),
            fmt_ns(h.max)
        );
    }
    out
}

/// Interval rates from two consecutive snapshots.
fn rates(cur: &TelemetrySnapshot, prev: &TelemetrySnapshot, secs: f64) -> String {
    let window = cur.delta(prev);
    let c = &window.counters;
    let per_s = |v: u64| v as f64 / secs.max(1e-9);
    let lookups = window.cache.hits + window.cache.misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        100.0 * window.cache.hits as f64 / lookups as f64
    };
    format!(
        "last {:.1}s: {:.1} req/s ({:.1} memo/s, {:.1} busy/s), cache hit rate {:.1}%\n",
        secs,
        per_s(c.requests_served),
        per_s(c.memo_hits),
        per_s(c.busy_replies),
        hit_rate
    )
}

fn main() -> ExitCode {
    let mut socket: Option<PathBuf> = None;
    let mut interval = 1.0f64;
    let mut once = false;
    let mut snapshot_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = args.next().map(PathBuf::from),
            "--interval" => {
                interval = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|v: &f64| *v > 0.0)
                    .unwrap_or_else(|| usage());
            }
            "--once" => once = true,
            "--snapshot" => snapshot_path = args.next().map(PathBuf::from),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("snslp-top: unknown argument {other}");
                usage();
            }
        }
    }
    let Some(socket) = socket else {
        eprintln!("snslp-top: --socket is required");
        usage();
    };

    let mut client = match Client::connect(&socket) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("snslp-top: cannot connect to {}: {e}", socket.display());
            return ExitCode::FAILURE;
        }
    };

    let mut prev: Option<TelemetrySnapshot> = None;
    let mut polls = 0u64;
    loop {
        let snapshot = match client.telemetry() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("snslp-top: {e}");
                return ExitCode::FAILURE;
            }
        };
        polls += 1;
        if let Some(path) = &snapshot_path {
            if let Err(e) = std::fs::write(path, snapshot.render()) {
                eprintln!("snslp-top: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }

        let mut frame = String::new();
        if !once {
            // Clear screen, home cursor.
            frame.push_str("\x1b[2J\x1b[H");
        }
        let _ = writeln!(
            frame,
            "snslp-top — {} — poll #{polls}{}",
            socket.display(),
            if once { "" } else { "  (ctrl-c to quit)" }
        );
        if let Some(prev) = &prev {
            frame.push_str(&rates(&snapshot, prev, interval));
        }
        frame.push('\n');
        frame.push_str(&render_table(&snapshot));
        frame.push_str(&distributions(&snapshot));
        print!("{frame}");
        let _ = std::io::stdout().flush();

        if once {
            return ExitCode::SUCCESS;
        }
        prev = Some(snapshot);
        std::thread::sleep(Duration::from_secs_f64(interval));
    }
}
