//! `snslpd` — the long-running SN-SLP compile service.
//!
//! Speaks newline-delimited JSON (one request object per line, one reply
//! per line, per-connection replies in request order). See
//! `snslp_serve::proto` for the wire format.
//!
//! Usage:
//!   `snslpd --socket PATH [flags]`   serve a Unix socket until killed
//!   `snslpd --stdio [flags]`         serve stdin/stdout, exit at EOF
//!
//! Flags:
//!   `--shards N`          scheduler shards (default 2)
//!   `--queue-depth N`     per-shard queue bound (default 64)
//!   `--max-inflight N`    admission limit before busy replies (default 256)
//!   `--batch-max N`       jobs coalesced per driver invocation (default 16)
//!   `--cache-entries N`   function-cache capacity (default 4096)
//!   `--memo-entries N`    whole-request memo capacity (default 4096)
//!   `--threads N`         driver threads per batch (default 1)
//!
//! `SNSLP_TRACE=events,json` turns the per-request `serve.access`
//! records into an NDJSON access log on stderr (one line per request
//! with the per-stage nanosecond breakdown).

use std::path::PathBuf;
use std::process::ExitCode;

use snslp_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: snslpd (--socket PATH | --stdio) [--shards N] [--queue-depth N] \
         [--max-inflight N] [--batch-max N] [--cache-entries N] [--memo-entries N] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, value: Option<String>) -> usize {
    let Some(v) = value else {
        eprintln!("snslpd: {flag} needs a positive integer argument");
        usage();
    };
    match v.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => {
            eprintln!("snslpd: invalid {flag} value {v:?} (expected a positive integer)");
            usage();
        }
    }
}

fn main() -> ExitCode {
    if let Err(e) = snslp_trace::init_from_env() {
        eprintln!("snslpd: {e}");
        return ExitCode::from(2);
    }
    let mut cfg = ServeConfig::default();
    let mut socket: Option<PathBuf> = None;
    let mut stdio = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(p) => socket = Some(PathBuf::from(p)),
                None => {
                    eprintln!("snslpd: --socket needs a path argument");
                    usage();
                }
            },
            "--stdio" => stdio = true,
            "--shards" => cfg.shards = parse_num("--shards", args.next()),
            "--queue-depth" => cfg.queue_depth = parse_num("--queue-depth", args.next()),
            "--max-inflight" => cfg.max_inflight = parse_num("--max-inflight", args.next()),
            "--batch-max" => cfg.batch_max = parse_num("--batch-max", args.next()),
            "--cache-entries" => cfg.cache_entries = parse_num("--cache-entries", args.next()),
            "--memo-entries" => cfg.memo_entries = parse_num("--memo-entries", args.next()),
            "--threads" => cfg.threads_per_batch = parse_num("--threads", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("snslpd: unknown argument {other}");
                usage();
            }
        }
    }
    if stdio == socket.is_some() {
        eprintln!("snslpd: pass exactly one of --socket PATH or --stdio");
        usage();
    }

    let mut server = Server::start(cfg);
    if let Some(path) = socket {
        if let Err(e) = server.bind_unix(&path) {
            eprintln!("snslpd: cannot bind {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("snslpd: listening on {}", path.display());
        // Serve until killed. The accept loop and shard workers own the
        // process from here.
        loop {
            std::thread::park();
        }
    }
    server.serve_stdio();
    server.shutdown();
    ExitCode::SUCCESS
}
