//! The SN-SLP compile service: `snslpd` (a long-running daemon answering
//! newline-delimited JSON compile requests over a Unix socket or stdio),
//! `snslp-client` (a one-shot CLI client), and `snslp-bench serve` (a
//! latency-gated load generator).
//!
//! Why a service at all: the driver is fast, but cold process startup
//! plus module parsing dominates small-module compile latency, and a
//! fleet of short-lived `snslpc` invocations shares nothing. A resident
//! server amortizes both through two content-addressed cache levels — a
//! whole-request memo over the raw module text and the function-level
//! [`snslp_core::ArtifactCache`] — and schedules concurrent requests
//! onto work-stealing shards that batch compatible jobs into single
//! driver invocations. See [`server`] for the architecture and
//! [`proto`] for the wire format.

pub mod client;
pub mod loadgen;
pub mod proto;
pub mod server;
pub mod telemetry;

pub use client::{Client, Reply};
pub use loadgen::{run_loadgen, LoadgenOptions};
pub use proto::{Request, STATUS_BUSY, STATUS_ERROR, STATUS_OK};
pub use server::{serve_connection, ReplyMsg, ServeConfig, Server, ServerState};
pub use telemetry::{TelemetrySnapshot, TELEMETRY_SCHEMA};
