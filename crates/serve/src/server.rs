//! The `snslpd` server: sharded work-stealing scheduling, request
//! batching, admission control, and the two-level artifact cache.
//!
//! # Architecture
//!
//! Each connection gets a *reader* (the connection's own thread) and a
//! *writer* (a scoped helper thread). The reader classifies each request
//! line and answers cheap cases inline — stats, malformed requests,
//! whole-request memo hits, busy refusals — while compile jobs go to a
//! shard queue with a per-request reply channel. The writer drains reply
//! channels **in request order**, so replies are ordered per connection
//! even though compiles from many connections finish out of order.
//!
//! Shards are worker threads with bounded queues. A worker drains up to
//! [`ServeConfig::batch_max`] jobs at once — *batching*: jobs with the
//! same config fingerprint are coalesced into one module and compiled by
//! one driver invocation ([`run_slp_module_cached`]), so concurrent
//! small requests amortize driver startup and share in-batch dedupe. An
//! idle worker *steals* a batch from a sibling's queue before sleeping.
//!
//! Admission control is explicit: beyond
//! [`ServeConfig::max_inflight`] queued-or-running compile requests (or
//! when every shard queue is full) the server answers
//! `{"status":"busy"}` instead of queueing unboundedly — the HTTP-429
//! analogue. Clients retry; connections are never dropped.
//!
//! # Caching
//!
//! Two levels, both content-addressed:
//!
//! 1. a whole-request memo — stable hash of the raw module text ×
//!    config fingerprint × artifact set → the rendered reply body, so an
//!    exact resubmission skips even the parser;
//! 2. the function-level [`ArtifactCache`] inside the driver, so a
//!    module that shares *some* functions with earlier traffic
//!    recompiles only the changed ones.
//!
//! Replies carry no wall-clock fields, so both levels return bytes
//! identical to the cold compile that populated them.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Duration;

use snslp_bench::attrib::{attrib_function, render_html, AttribReport};
use snslp_bench::json::Json;
use snslp_bench::stats::mode_code;
use snslp_core::{run_slp_module_cached, ArtifactCache, CacheStats, FunctionReport, SlpConfig};
use snslp_interp::{parse_inputs_line, run_with_args, ExecOptions};
use snslp_ir::{parse_module, stable_text_hash, Function, FxHashMap, Module};
use snslp_trace::serve::{EVENT_BUSY, EVENT_MEMO_HIT, SPAN_BATCH, SPAN_CONNECTION};
use snslp_trace::{trace_event, Span};

use crate::proto::{
    address, failure_body, ok_body, stats_body, CompileRequest, Request, STATUS_BUSY, STATUS_ERROR,
};
use crate::telemetry::{ReplyClass, ReqKind, ReqTelem, Stage, Telemetry, TelemetrySnapshot};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (each is one scheduler thread with its own queue).
    pub shards: usize,
    /// Pending jobs a shard queue holds before submits spill to the next
    /// shard (and, with every queue full, requests go busy).
    pub queue_depth: usize,
    /// Compile requests queued-or-running before new ones go busy.
    pub max_inflight: usize,
    /// Jobs one worker drains into a single batch.
    pub batch_max: usize,
    /// Function-level artifact cache capacity (entries).
    pub cache_entries: usize,
    /// Whole-request memo capacity (entries).
    pub memo_entries: usize,
    /// Driver worker threads per batch compile. 1 by default: shards are
    /// the parallelism; nesting thread pools multiplies threads.
    pub threads_per_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            queue_depth: 64,
            max_inflight: 256,
            batch_max: 16,
            cache_entries: 4096,
            memo_entries: 4096,
            threads_per_batch: 1,
        }
    }
}

/// One reply travelling to a connection writer: the rendered line plus
/// the request's telemetry, which the writer seals (final `write` mark,
/// byte counts, one registry record) just before the socket write.
pub struct ReplyMsg {
    pub(crate) line: String,
    pub(crate) telem: ReqTelem,
}

/// One queued compile job: a parsed, verified request plus its reply
/// channel.
struct Job {
    id: u64,
    compile: CompileRequest,
    functions: Vec<Function>,
    cfg: SlpConfig,
    fingerprint: u64,
    memo_key: u128,
    telem: ReqTelem,
    reply: mpsc::Sender<ReplyMsg>,
}

struct Shard {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
}

#[derive(Default)]
struct Memo {
    map: FxHashMap<u128, (u64, Arc<MemoEntry>)>,
    tick: u64,
}

struct MemoEntry {
    body: String,
    num_functions: u64,
}

/// Shared server state: scheduler, caches, telemetry.
pub struct ServerState {
    cfg: ServeConfig,
    shards: Vec<Shard>,
    next_shard: AtomicUsize,
    inflight: AtomicUsize,
    stop: AtomicBool,
    cache: ArtifactCache,
    memo: Mutex<Memo>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("cfg", &self.cfg)
            .field("inflight", &self.inflight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl ServerState {
    fn new(cfg: ServeConfig) -> ServerState {
        let shards = (0..cfg.shards.max(1))
            .map(|_| Shard {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            })
            .collect();
        ServerState {
            cache: ArtifactCache::new(cfg.cache_entries),
            shards,
            next_shard: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            memo: Mutex::new(Memo::default()),
            telemetry: Telemetry::new(),
            cfg,
        }
    }

    /// Function-level cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The telemetry registry (histograms, counters, gauges).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Whole-request memo hits so far.
    pub fn memo_hits(&self) -> u64 {
        self.telemetry.memo_hits()
    }

    /// Busy refusals so far.
    pub fn busy_replies(&self) -> u64 {
        self.telemetry.busy_replies()
    }

    /// A full `snslpd-telemetry/v1` snapshot: registry state plus the
    /// scheduler gauges only the server can see.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let queue_depths = self
            .shards
            .iter()
            .map(|s| s.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as u64)
            .collect();
        self.telemetry.snapshot(
            self.inflight.load(Ordering::Relaxed) as u64,
            queue_depths,
            &self.cache.stats(),
        )
    }

    // -- memo ---------------------------------------------------------

    fn memo_key(text_hash: u128, fingerprint: u64, compile: &CompileRequest) -> u128 {
        // keep_graph_dots is already inside the fingerprint; codegen,
        // dynstats and hot change only the reply body, so they need
        // their own bits in the memo key.
        let artifact_bits = u128::from(compile.artifacts.codegen)
            | (u128::from(compile.artifacts.dynstats) << 1)
            | (u128::from(compile.artifacts.hot) << 2);
        text_hash ^ (u128::from(fingerprint) << 64) ^ artifact_bits
    }

    fn memo_get(&self, key: u128) -> Option<Arc<MemoEntry>> {
        let mut memo = self.memo.lock().unwrap_or_else(|e| e.into_inner());
        memo.tick += 1;
        let tick = memo.tick;
        let (touched, entry) = memo.map.get_mut(&key)?;
        *touched = tick;
        Some(entry.clone())
    }

    fn memo_put(&self, key: u128, entry: MemoEntry) {
        let mut memo = self.memo.lock().unwrap_or_else(|e| e.into_inner());
        memo.tick += 1;
        let tick = memo.tick;
        memo.map.insert(key, (tick, Arc::new(entry)));
        while memo.map.len() > self.cfg.memo_entries.max(1) {
            let Some(oldest) = memo
                .map
                .iter()
                .min_by_key(|(_, (touched, _))| *touched)
                .map(|(k, _)| *k)
            else {
                break;
            };
            memo.map.remove(&oldest);
        }
    }

    // -- request intake -----------------------------------------------

    /// Classifies one request line. Cheap cases (stats, errors, memo
    /// hits, busy) are answered through `reply` immediately; compile jobs
    /// are queued and answered later by a shard worker. Either way
    /// exactly one [`ReplyMsg`] is eventually sent on `reply`, carrying
    /// the request's stage telemetry for the writer to seal.
    pub fn handle_line(
        self: &Arc<Self>,
        line: &str,
        mut telem: ReqTelem,
        reply: mpsc::Sender<ReplyMsg>,
    ) {
        let request = match Request::parse(line) {
            Err((id, msg)) => {
                telem.mark(Stage::Parse);
                telem.set_id(id.unwrap_or(0));
                let line = address(id.unwrap_or(0), &failure_body(STATUS_ERROR, &msg));
                telem.mark(Stage::Render);
                let _ = reply.send(ReplyMsg { line, telem });
                return;
            }
            Ok(r) => {
                telem.mark(Stage::Parse);
                r
            }
        };
        telem.set_id(request.id());
        match request {
            Request::Stats { id } => {
                telem.kind = ReqKind::Stats;
                telem.class = ReplyClass::Ok;
                let line = address(id, &stats_body(&self.telemetry_snapshot()));
                telem.mark(Stage::Render);
                let _ = reply.send(ReplyMsg { line, telem });
            }
            Request::Compile { id, compile } => {
                telem.kind = ReqKind::Compile;
                self.handle_compile(id, compile, telem, reply);
            }
        }
    }

    fn handle_compile(
        self: &Arc<Self>,
        id: u64,
        compile: CompileRequest,
        mut telem: ReqTelem,
        reply: mpsc::Sender<ReplyMsg>,
    ) {
        let cfg = compile.config();
        let fingerprint = cfg.fingerprint();
        let memo_key = Self::memo_key(
            stable_text_hash(&compile.module_text),
            fingerprint,
            &compile,
        );
        if let Some(entry) = self.memo_get(memo_key) {
            telem.memo = true;
            telem.class = ReplyClass::Ok;
            telem.mark(Stage::Compile);
            // A memo hit answers num_functions function lookups without
            // ever reaching the function cache; account for them so the
            // hit rate means "lookups answered without compiling".
            self.cache.note_upstream_hits(entry.num_functions);
            trace_event!(EVENT_MEMO_HIT, "id" => id, "functions" => entry.num_functions);
            let line = address(id, &entry.body);
            telem.mark(Stage::Render);
            let _ = reply.send(ReplyMsg { line, telem });
            return;
        }
        // The missed lookup is compile-path time.
        telem.mark(Stage::Compile);

        // Admission control *before* parsing: under overload the server
        // must shed cheaply, not burn CPU parsing doomed requests.
        let admitted = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                (n < self.cfg.max_inflight).then_some(n + 1)
            });
        match admitted {
            Ok(prev) => self.telemetry.note_admitted(prev as u64 + 1),
            Err(_) => {
                self.refuse_busy("in-flight limit", telem, &reply);
                return;
            }
        }

        let module = match parse_module(&compile.module_text) {
            Ok(m) => m,
            Err(e) => {
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                telem.mark(Stage::Parse);
                let line = address(id, &failure_body(STATUS_ERROR, &e.to_string()));
                telem.mark(Stage::Render);
                let _ = reply.send(ReplyMsg { line, telem });
                return;
            }
        };
        for f in module.functions() {
            if let Err(e) = snslp_ir::verify(f) {
                self.inflight.fetch_sub(1, Ordering::Relaxed);
                telem.mark(Stage::Parse);
                let body = failure_body(
                    STATUS_ERROR,
                    &format!("function @{} is malformed: {e}", f.name()),
                );
                let line = address(id, &body);
                telem.mark(Stage::Render);
                let _ = reply.send(ReplyMsg { line, telem });
                return;
            }
        }
        telem.mark(Stage::Parse);

        let job = Job {
            id,
            compile,
            functions: module.into_functions(),
            cfg,
            fingerprint,
            memo_key,
            telem,
            reply,
        };
        if let Some(job) = self.submit(job) {
            self.inflight.fetch_sub(1, Ordering::Relaxed);
            self.refuse_busy("all shard queues full", job.telem, &job.reply);
        }
    }

    fn refuse_busy(&self, why: &str, mut telem: ReqTelem, reply: &mpsc::Sender<ReplyMsg>) {
        // The busy counter is bumped when the writer seals the reply, so
        // a client that has read this refusal always sees it counted.
        telem.class = ReplyClass::Busy;
        trace_event!(EVENT_BUSY, "id" => telem.id(), "why" => why);
        let body = failure_body(
            STATUS_BUSY,
            &format!("server at capacity ({why}); retry later"),
        );
        let line = address(telem.id(), &body);
        telem.mark(Stage::Render);
        let _ = reply.send(ReplyMsg { line, telem });
    }

    /// Round-robin submit with spill: try every shard once. Returns the
    /// job back (for a busy reply) only when every queue is at depth.
    fn submit(&self, job: Job) -> Option<Job> {
        let start = self.next_shard.fetch_add(1, Ordering::Relaxed);
        let n = self.shards.len();
        let mut job = Some(job);
        for i in 0..n {
            let shard = &self.shards[(start + i) % n];
            let mut q = shard.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.len() < self.cfg.queue_depth {
                q.push_back(job.take().expect("job not yet queued"));
                self.telemetry.note_queue_depth(q.len() as u64);
                drop(q);
                shard.cv.notify_one();
                return None;
            }
        }
        job
    }

    // -- shard workers ------------------------------------------------

    /// Drains a batch: own queue first, then steal from siblings, then
    /// sleep briefly on the shard condvar. Empty result = check `stop`.
    fn grab_batch(&self, idx: usize) -> Vec<Job> {
        let n = self.shards.len();
        let drain = |q: &mut VecDeque<Job>| -> Vec<Job> {
            let take = q.len().min(self.cfg.batch_max.max(1));
            q.drain(..take).collect()
        };
        {
            let mut q = self.shards[idx]
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if !q.is_empty() {
                return drain(&mut q);
            }
        }
        for i in 1..n {
            let victim = &self.shards[(idx + i) % n];
            let mut q = victim.queue.lock().unwrap_or_else(|e| e.into_inner());
            if !q.is_empty() {
                return drain(&mut q);
            }
        }
        let q = self.shards[idx]
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let (mut q, _) = self.shards[idx]
            .cv
            .wait_timeout(q, Duration::from_millis(20))
            .unwrap_or_else(|e| e.into_inner());
        drain(&mut q)
    }

    fn worker(self: Arc<Self>, idx: usize) {
        loop {
            let batch = self.grab_batch(idx);
            if batch.is_empty() {
                if self.stop.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            self.run_batch(batch);
        }
        snslp_trace::prof::flush_thread(&format!("serve-shard-{idx}"));
    }

    /// Compiles one batch: jobs grouped by config fingerprint, each group
    /// coalesced into a single module and run through the cached driver
    /// once; reports are split back per job by index range.
    fn run_batch(&self, batch: Vec<Job>) {
        self.telemetry.worker_busy_enter();
        let n_jobs = batch.len();
        let mut groups: Vec<(u64, Vec<Job>)> = Vec::new();
        for mut job in batch {
            job.telem.mark(Stage::Queue);
            match groups.iter_mut().find(|(fp, _)| *fp == job.fingerprint) {
                Some((_, jobs)) => jobs.push(job),
                None => groups.push((job.fingerprint, vec![job])),
            }
        }
        let mut outgoing: Vec<(mpsc::Sender<ReplyMsg>, ReplyMsg)> = Vec::with_capacity(n_jobs);
        for (_, jobs) in groups {
            let span = Span::enter(SPAN_BATCH);
            span.note("jobs", jobs.len() as u64);
            let cfg = jobs[0].cfg.clone();
            let mut module = Module::new("serve-batch");
            let mut ranges = Vec::with_capacity(jobs.len());
            for job in &jobs {
                let start = module.functions().len();
                for f in &job.functions {
                    module.add_function(f.clone());
                }
                ranges.push((start, job.functions.len()));
            }
            let reports =
                run_slp_module_cached(&mut module, &cfg, self.cfg.threads_per_batch, &self.cache);
            for (mut job, (start, len)) in jobs.into_iter().zip(ranges) {
                job.telem.mark(Stage::Compile);
                let job_reports = &reports[start..start + len];
                let job_functions = &module.functions()[start..start + len];
                let body = match build_ok_body(&job, job_reports, job_functions) {
                    Ok((body, native)) => {
                        job.telem.note_native(native.runs, native.ops);
                        self.memo_put(
                            job.memo_key,
                            MemoEntry {
                                body: body.clone(),
                                num_functions: len as u64,
                            },
                        );
                        job.telem.class = ReplyClass::Ok;
                        body
                    }
                    Err(e) => {
                        job.telem.class = ReplyClass::Error;
                        failure_body(STATUS_ERROR, &e)
                    }
                };
                let line = address(job.id, &body);
                job.telem.mark(Stage::Render);
                let Job { reply, telem, .. } = job;
                outgoing.push((reply, ReplyMsg { line, telem }));
            }
        }
        // Free capacity and go idle *before* the replies travel to the
        // writers: a client that has read its reply then observes the
        // inflight and busy-worker gauges already settled, which is what
        // keeps the virtual-clock telemetry golden byte-stable.
        self.inflight.fetch_sub(n_jobs, Ordering::Relaxed);
        self.telemetry.worker_busy_exit();
        for (tx, msg) in outgoing {
            let _ = tx.send(msg);
        }
    }
}

/// Native-execution totals behind one `hot` artifact: how many
/// instrumented activations ran and how many instruction executions
/// they measured. Zero on hosts without the native backend.
#[derive(Debug, Clone, Copy, Default)]
struct NativeExec {
    runs: u64,
    ops: u64,
}

/// Renders a job's `ok` reply body, including any requested artifacts,
/// plus the native-execution totals for the telemetry counters.
fn build_ok_body(
    job: &Job,
    reports: &[FunctionReport],
    functions: &[Function],
) -> Result<(String, NativeExec), String> {
    let mut native = NativeExec::default();
    let mut artifacts: Vec<(String, String)> = Vec::new();
    if job.compile.artifacts.codegen {
        let mut text = String::new();
        for (i, f) in functions.iter().enumerate() {
            if i > 0 {
                text.push('\n');
            }
            text.push_str(&f.to_string());
        }
        artifacts.push(("codegen".to_string(), text));
    }
    if job.compile.artifacts.html {
        let report = AttribReport {
            mode: mode_code(job.cfg.mode).to_string(),
            functions: reports
                .iter()
                .map(|r| {
                    attrib_function(
                        "serve",
                        r,
                        &snslp_trace::Profile { tracks: Vec::new() },
                        None,
                        None,
                    )
                })
                .collect(),
        };
        artifacts.push(("html".to_string(), render_html(&report)));
    }
    if job.compile.artifacts.dynstats {
        artifacts.push((
            "dynstats".to_string(),
            dynstats_artifact(&job.compile.module_text, functions, &job.cfg)?,
        ));
    }
    if job.compile.artifacts.hot {
        let (text, exec) = hot_artifact(&job.compile.module_text, reports, functions, &job.cfg)?;
        native = exec;
        artifacts.push(("hot".to_string(), text));
    }
    Ok((ok_body(reports, &artifacts), native))
}

/// The `hot` artifact: every function compiled with instrumented-hotness
/// lowering, run natively on the module's `; INPUTS:` line, and rendered
/// as a `snslp-hot/v1` document. Exact counts only (no wall clock), so
/// the reply stays deterministic and memoizable. Hosts without the
/// native backend answer with an empty artifact — the absence of a
/// measurement is not a compile error.
fn hot_artifact(
    source: &str,
    reports: &[FunctionReport],
    functions: &[Function],
    cfg: &SlpConfig,
) -> Result<(String, NativeExec), String> {
    if !snslp_jit::native_supported() {
        return Ok((String::new(), NativeExec::default()));
    }
    let inputs = source.lines().find_map(|l| {
        l.trim()
            .strip_prefix(';')
            .map(str::trim)
            .and_then(|c| c.strip_prefix("INPUTS:"))
    });
    let label = mode_code(cfg.mode).to_string();
    let mut native = NativeExec::default();
    let mut entries = Vec::new();
    for f in functions {
        let args = match inputs {
            Some(spec) => {
                parse_inputs_line(spec).map_err(|e| format!("hot: bad INPUTS line: {e}"))?
            }
            None if f.params().is_empty() => Vec::new(),
            None => {
                return Err(format!(
                    "hot: @{} takes {} parameters but the module has no `; INPUTS:` line",
                    f.name(),
                    f.params().len()
                ))
            }
        };
        let decisions = reports
            .iter()
            .find(|r| r.function == f.name())
            .map(snslp_bench::hot::decision_map)
            .unwrap_or_default();
        // A jit fallback or trap is a legitimate gap in coverage, not
        // an error: the function simply has no row.
        if let Some((profile, dyn_insts)) = snslp_bench::hot::measure_hot(f, &args, decisions)? {
            native.runs += 1;
            native.ops += dyn_insts;
            entries.push(snslp_bench::hot::HotEntry {
                kernel: f.name().to_string(),
                label: label.clone(),
                dyn_insts,
                profile,
            });
        }
    }
    let doc = snslp_bench::hot::HotDoc {
        mode: snslp_jit::HotMode::Instrumented,
        entries,
    };
    Ok((doc.to_json(), native))
}

/// The `dynstats` artifact: every function interpreted on the module's
/// `; INPUTS:` line, rendered as one compact JSON object. Deterministic
/// (simulated cycles, no wall clock).
fn dynstats_artifact(
    source: &str,
    functions: &[Function],
    cfg: &SlpConfig,
) -> Result<String, String> {
    let inputs = source.lines().find_map(|l| {
        l.trim()
            .strip_prefix(';')
            .map(str::trim)
            .and_then(|c| c.strip_prefix("INPUTS:"))
    });
    let mut rows = Vec::new();
    for f in functions {
        let args = match inputs {
            Some(spec) => {
                parse_inputs_line(spec).map_err(|e| format!("dynstats: bad INPUTS line: {e}"))?
            }
            None if f.params().is_empty() => Vec::new(),
            None => {
                return Err(format!(
                    "dynstats: @{} takes {} parameters but the module has no `; INPUTS:` line",
                    f.name(),
                    f.params().len()
                ))
            }
        };
        let out = run_with_args(f, &args, &cfg.model, &ExecOptions::default())
            .map_err(|e| format!("dynstats: @{}: execution failed: {e}", f.name()))?;
        rows.push((
            f.name().to_string(),
            Json::Obj(vec![
                ("cycles".to_string(), Json::Num(out.exec.cycles as f64)),
                (
                    "dyn_insts".to_string(),
                    Json::Num(out.exec.dyn_insts as f64),
                ),
                (
                    "vector_ops".to_string(),
                    Json::Num(out.exec.profile.vector_ops as f64),
                ),
                (
                    "scalar_ops".to_string(),
                    Json::Num(out.exec.profile.scalar_ops as f64),
                ),
            ]),
        ));
    }
    Ok(Json::Obj(rows).render_compact())
}

// ---------------------------------------------------------------------
// Connections and the server handle.
// ---------------------------------------------------------------------

/// Serves one connection: reads request lines, answers in request order.
///
/// The reply pipeline is the heart of ordered pipelining: every request
/// gets an `mpsc` channel whose receiver is pushed (in request order)
/// onto the writer's queue; the writer blocks on the *oldest* pending
/// reply, so out-of-order compile completions are reordered before
/// hitting the wire.
pub fn serve_connection(state: &Arc<ServerState>, reader: impl BufRead, writer: impl Write + Send) {
    let span = Span::enter(SPAN_CONNECTION);
    let writer = Mutex::new(writer);
    // Replies handed to the writer thread but not yet written. While this
    // is zero the writer is idle and its queue empty, so the reader may
    // write an already-available reply itself — the warm fast path, which
    // skips two thread handoffs per request (that is most of a memo hit's
    // latency on a loaded box).
    let pending_writes = AtomicUsize::new(0);
    let write_line = |line: &str| {
        let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
        writeln!(w, "{line}").and_then(|()| w.flush()).is_ok()
    };
    // Seals a reply: final `write` mark, reply-byte accounting, one
    // registry record plus the access-log line — all *before* the socket
    // write syscall, so a sequential client's next request (possibly a
    // `stats` probe) always observes this request's telemetry.
    let complete = |msg: ReplyMsg| -> String {
        let ReplyMsg { line, mut telem } = msg;
        telem.set_bytes_out(line.len() as u64 + 1);
        telem.mark(Stage::Write);
        state.telemetry().record(&telem);
        line
    };
    let (tx_order, rx_order) = mpsc::channel::<mpsc::Receiver<ReplyMsg>>();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut broken = false;
            for pending in rx_order {
                // On any failure keep draining so compile workers never
                // block on a dead connection's channels.
                if let Ok(msg) = pending.recv() {
                    let line = complete(msg);
                    if !broken && !write_line(&line) {
                        broken = true;
                    }
                }
                pending_writes.fetch_sub(1, Ordering::Release);
            }
        });
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let telem = ReqTelem::start(line.len() as u64 + 1);
            let (tx, rx) = mpsc::channel();
            state.handle_line(&line, telem, tx);
            // Already answered (stats, memo hit, busy, error) with
            // nothing queued ahead? Write it in-line; ordering is safe
            // because the writer has provably finished everything else.
            if pending_writes.load(Ordering::Acquire) == 0 {
                if let Ok(ready) = rx.try_recv() {
                    let ready = complete(ready);
                    if !write_line(&ready) {
                        break;
                    }
                    continue;
                }
            }
            pending_writes.fetch_add(1, Ordering::Release);
            if tx_order.send(rx).is_err() {
                break;
            }
        }
        drop(tx_order);
    });
    drop(span);
}

/// A running server: shard workers plus (optionally) a Unix-socket
/// accept loop. Dropping without [`Server::shutdown`] leaks the worker
/// threads until process exit — fine for a daemon, rude in tests.
#[derive(Debug)]
pub struct Server {
    state: Arc<ServerState>,
    workers: Vec<std::thread::JoinHandle<()>>,
    listener: Option<(std::thread::JoinHandle<()>, PathBuf)>,
}

impl Server {
    /// Starts the shard workers. No I/O yet: combine with
    /// [`Server::bind_unix`] or [`Server::serve_stdio`].
    pub fn start(cfg: ServeConfig) -> Server {
        let state = Arc::new(ServerState::new(cfg));
        let workers = (0..state.cfg.shards.max(1))
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("snslpd-shard-{i}"))
                    .spawn(move || state.worker(i))
                    .expect("spawn shard worker")
            })
            .collect();
        Server {
            state,
            workers,
            listener: None,
        }
    }

    /// Shared state (for stats and in-process request handling).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Binds a Unix socket and spawns the accept loop. A stale socket
    /// file at `path` is removed first.
    pub fn bind_unix(&mut self, path: &Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let state = self.state.clone();
        let handle = std::thread::Builder::new()
            .name("snslpd-accept".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let state = state.clone();
                        let _ = std::thread::Builder::new()
                            .name("snslpd-conn".to_string())
                            .spawn(move || {
                                stream.set_nonblocking(false).ok();
                                let reader = match stream.try_clone() {
                                    Ok(s) => BufReader::new(s),
                                    Err(_) => return,
                                };
                                serve_connection(&state, reader, stream);
                            });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if state.stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            })?;
        self.listener = Some((handle, path.to_path_buf()));
        Ok(())
    }

    /// Serves stdin/stdout as one connection; returns at EOF.
    pub fn serve_stdio(&self) {
        let stdin = std::io::stdin();
        serve_connection(&self.state, stdin.lock(), std::io::stdout());
    }

    /// Connects to this server in-process over a `UnixStream` pair —
    /// used by tests and the in-process load generator.
    pub fn connect_in_process(&self) -> std::io::Result<UnixStream> {
        let (client, server_side) = UnixStream::pair()?;
        let state = self.state.clone();
        std::thread::Builder::new()
            .name("snslpd-conn".to_string())
            .spawn(move || {
                let reader = match server_side.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(_) => return,
                };
                serve_connection(&state, reader, server_side);
            })?;
        Ok(client)
    }

    /// Stops workers and the accept loop, removes the socket file.
    pub fn shutdown(self) {
        self.state.stop.store(true, Ordering::Relaxed);
        for shard in &self.state.shards {
            shard.cv.notify_all();
        }
        for w in self.workers {
            let _ = w.join();
        }
        if let Some((handle, path)) = self.listener {
            let _ = handle.join();
            let _ = std::fs::remove_file(path);
        }
    }
}
