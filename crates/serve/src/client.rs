//! Minimal blocking client for the `snslpd` NDJSON protocol: one
//! connection, sequential request/reply, plus reply parsing helpers
//! shared by `snslp-client` and the load generator.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use snslp_bench::json::Json;

use crate::proto::Request;

/// One blocking connection to a server.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
    reader: BufReader<UnixStream>,
    next_id: u64,
}

/// A parsed reply: the envelope fields every response carries.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Echoed request id.
    pub id: u64,
    /// `ok`, `busy`, or `error`.
    pub status: String,
    /// Error message (non-`ok` replies).
    pub error: Option<String>,
    /// The full reply document, for callers that want reports/artifacts.
    pub json: Json,
    /// The raw reply line as received (byte-identity checks key off this).
    pub raw: String,
}

impl Reply {
    /// Parses one reply line.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a missing/ill-typed envelope field.
    pub fn parse(line: &str) -> Result<Reply, String> {
        let json = Json::parse(line).map_err(|e| format!("bad reply JSON: {e}"))?;
        let Json::Obj(fields) = &json else {
            return Err("reply is not a JSON object".to_string());
        };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let id = match get("id") {
            Some(Json::Num(n)) if *n >= 0.0 => *n as u64,
            _ => return Err("reply lacks a numeric `id`".to_string()),
        };
        let status = match get("status") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("reply lacks a string `status`".to_string()),
        };
        let error = match get("error") {
            Some(Json::Str(s)) => Some(s.clone()),
            _ => None,
        };
        Ok(Reply {
            id,
            status,
            error,
            json,
            raw: line.to_string(),
        })
    }
}

impl Client {
    /// Connects to a server's Unix socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        Ok(Client::from_stream(UnixStream::connect(socket)?))
    }

    /// Wraps an already-connected stream (in-process server pairs).
    #[must_use]
    pub fn from_stream(stream: UnixStream) -> Client {
        let reader = BufReader::new(stream.try_clone().expect("clone unix stream"));
        Client {
            stream,
            reader,
            next_id: 1,
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one raw request line and reads one reply line.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed reply.
    pub fn round_trip(&mut self, line: &str) -> Result<Reply, String> {
        writeln!(self.stream, "{line}").map_err(|e| format!("send failed: {e}"))?;
        self.stream
            .flush()
            .map_err(|e| format!("flush failed: {e}"))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| format!("receive failed: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        Reply::parse(reply.trim_end())
    }

    /// Compiles a module, retrying `busy` replies with a short backoff.
    /// Returns the final reply plus how many busy refusals preceded it.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed reply.
    pub fn compile(
        &mut self,
        module_text: &str,
        mode: &str,
        target: &str,
        artifacts: &[&str],
    ) -> Result<(Reply, u64), String> {
        let mut busy = 0u64;
        loop {
            let id = self.fresh_id();
            let line = Request::render_compile(id, module_text, mode, target, artifacts);
            let reply = self.round_trip(&line)?;
            if reply.status == crate::proto::STATUS_BUSY {
                busy += 1;
                std::thread::sleep(std::time::Duration::from_micros(200));
                continue;
            }
            return Ok((reply, busy));
        }
    }

    /// Fetches server cache statistics.
    ///
    /// # Errors
    ///
    /// I/O failure or a malformed reply.
    pub fn stats(&mut self) -> Result<Reply, String> {
        let id = self.fresh_id();
        self.round_trip(&Request::render_stats(id))
    }

    /// Fetches and strictly validates the server's `snslpd-telemetry/v1`
    /// snapshot (the `telemetry` member of a `stats` reply).
    ///
    /// # Errors
    ///
    /// I/O failure, a malformed reply, or a snapshot the strict reader
    /// rejects.
    pub fn telemetry(&mut self) -> Result<crate::telemetry::TelemetrySnapshot, String> {
        let reply = self.stats()?;
        let doc = reply
            .json
            .get("telemetry")
            .ok_or("stats reply lacks a `telemetry` member")?;
        crate::telemetry::TelemetrySnapshot::from_json(doc)
    }
}
