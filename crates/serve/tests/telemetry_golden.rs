//! Byte-stability golden for the `snslpd-telemetry/v1` wire document.
//!
//! Under the virtual trace clock every `clock::now_ns()` read advances
//! exactly [`snslp_trace::clock::VIRTUAL_TICK_NS`], so a fixed request
//! sequence against a one-shard server produces a fully deterministic
//! snapshot: every stage duration is a count of clock reads, not wall
//! time. The rendered JSON must match the checked-in golden byte for
//! byte — any drift means the wire format, the stage accounting, or the
//! number of clock reads on some request path changed. Regenerate after
//! an intentional change with:
//!
//! ```text
//! SNSLP_BLESS=1 cargo test -p snslp-serve --test telemetry_golden
//! ```
//!
//! This file must stay a single `#[test]`: the virtual clock is global,
//! so a sibling test in the same binary would interleave reads and
//! destroy determinism. Trace facets stay off for the same reason —
//! span records would add clock reads of their own.

use std::path::PathBuf;

use snslp_serve::{Client, ServeConfig, Server, STATUS_ERROR, STATUS_OK};
use snslp_trace::clock;

const MODE: &str = "snslp";
const TARGET: &str = "avx2";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/telemetry_snapshot.json")
}

/// A module of three fuzz functions at consecutive case indices.
fn module(first: u64) -> String {
    let mut text = String::new();
    for k in 0..3 {
        let case = snslp_fuzz::generate(0x601D, first + k);
        text.push_str(&case.function.to_string());
        text.push('\n');
    }
    text
}

#[test]
fn snapshot_is_byte_stable_under_the_virtual_clock() {
    clock::set_virtual(true);
    let server = Server::start(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    let mut client = Client::from_stream(server.connect_in_process().expect("connect"));

    // A fixed little script touching every counter class: two cold
    // compiles, one memo replay, one invalid line.
    for first in [0, 8] {
        let (reply, _) = client
            .compile(&module(first), MODE, TARGET, &[])
            .expect("compile");
        assert_eq!(reply.status, STATUS_OK);
    }
    let (reply, _) = client
        .compile(&module(0), MODE, TARGET, &[])
        .expect("replay");
    assert_eq!(reply.status, STATUS_OK);
    let reply = client.round_trip("not json at all").expect("error reply");
    assert_eq!(reply.status, STATUS_ERROR);

    let snapshot = client.telemetry().expect("validated snapshot");
    server.shutdown();
    clock::set_virtual(false);

    let actual = snapshot.to_json().render();
    let path = golden_path();
    if std::env::var_os("SNSLP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with SNSLP_BLESS=1"));
    assert_eq!(
        actual, expected,
        "telemetry snapshot diverged from {path:?}; \
         rerun with SNSLP_BLESS=1 if intentional"
    );
}
