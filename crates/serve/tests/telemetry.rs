//! End-to-end checks of `snslpd`'s runtime telemetry: the per-stage
//! accounting behind every `serve.access` record, the recording policy
//! (only successful compiles enter the latency histograms), and the
//! strict `snslpd-telemetry/v1` snapshot round trip — all observed
//! through a live in-process server driven with fuzz-generated traffic.

use std::io::{BufRead, BufReader, Write};

use snslp_bench::json::Json;
use snslp_bench::tracecheck::validate_access_log;
use snslp_serve::telemetry::TelemetrySnapshot;
use snslp_serve::{
    Client, Reply, Request, ServeConfig, Server, STATUS_BUSY, STATUS_ERROR, STATUS_OK,
};
use snslp_trace::Facet;

const MODE: &str = "snslp";
const TARGET: &str = "avx2";

/// One shard, one worker: every request takes the same code path, which
/// keeps the access-log assertions exact.
fn one_shard() -> ServeConfig {
    ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    }
}

/// A module of `n` fuzz functions at consecutive case indices.
fn module(seed: u64, first: u64, n: u64) -> String {
    let mut text = String::new();
    for k in 0..n {
        let case = snslp_fuzz::generate(seed, first + k);
        text.push_str(&case.function.to_string());
        text.push('\n');
    }
    text
}

/// Drives fuzz traffic through a live server while capturing the NDJSON
/// trace stream, then cross-checks three independent accountings of the
/// same run: the client's reply tally, the server's telemetry snapshot,
/// and the validated access log.
#[test]
fn access_log_agrees_with_snapshot_and_client() {
    const DISTINCT: u64 = 6;
    const REPLAYED: u64 = 4;

    let mut snap: Option<TelemetrySnapshot> = None;
    let lines = snslp_trace::capture_json(Facet::Events as u32, || {
        let server = Server::start(one_shard());
        let mut client = Client::from_stream(server.connect_in_process().expect("connect"));

        // Six distinct modules (cold compiles), then an exact replay of
        // the first four (whole-request memo hits).
        for i in 0..DISTINCT {
            let text = module(0xACCE55, i * 8, 3);
            let (reply, _) = client.compile(&text, MODE, TARGET, &[]).expect("compile");
            assert_eq!(reply.status, STATUS_OK);
        }
        for i in 0..REPLAYED {
            let text = module(0xACCE55, i * 8, 3);
            let (reply, _) = client.compile(&text, MODE, TARGET, &[]).expect("replay");
            assert_eq!(reply.status, STATUS_OK);
        }
        // One malformed request line: answered with an error reply, which
        // must show up in the log as `invalid`/`error` and stay out of
        // the latency histograms.
        let reply = client
            .round_trip("{\"op\":\"no-such-op\"}")
            .expect("error round trip");
        assert_eq!(reply.status, STATUS_ERROR);

        snap = Some(client.telemetry().expect("validated snapshot"));
        server.shutdown();
    });
    let snap = snap.expect("snapshot scraped inside the capture");

    // Server-side accounting: only the ten successful compiles are
    // histogram material; the memo replays split the compile stage.
    let c = &snap.counters;
    assert_eq!(c.requests_served, DISTINCT + REPLAYED);
    assert_eq!(c.memo_hits, REPLAYED);
    assert_eq!(c.invalid_requests, 1);
    // `error_replies` tracks *compile* failures only; the malformed line
    // is accounted once, under `invalid_requests`.
    assert_eq!(c.error_replies, 0);
    assert_eq!(c.busy_replies, 0);
    let count = |name: &str| snap.hist(name).expect(name).count;
    assert_eq!(count("request_total"), DISTINCT + REPLAYED);
    assert_eq!(count("compile_miss"), DISTINCT);
    assert_eq!(count("compile_hit"), REPLAYED);
    for stage in ["parse", "queue", "render", "write"] {
        assert_eq!(count(stage), DISTINCT + REPLAYED, "stage `{stage}`");
    }

    // The NDJSON stream must validate, and its tallies must match: one
    // access record per request (the stage-sum invariant — parse + queue
    // + compile + render + write == total — is checked per record by the
    // validator). The stats request that scraped the snapshot is
    // answered (and logged) before the reply reaches the client, so it
    // is part of the capture; the snapshot itself was rendered before
    // that record was sealed, hence `stats_requests == 0` above it.
    assert_eq!(c.stats_requests, 0);
    let log = lines.join("\n");
    let access = validate_access_log(&log).expect("access log validates");
    assert_eq!(access.requests as u64, DISTINCT + REPLAYED + 1 + 1);
    assert_eq!(access.by_cache["compiled"] as u64, DISTINCT);
    assert_eq!(access.by_cache["memo"] as u64, REPLAYED);
    assert_eq!(access.by_cache["none"], 2, "stats + invalid");
    assert_eq!(access.by_status["ok"] as u64, DISTINCT + REPLAYED + 1);
    assert_eq!(access.by_status["error"], 1);
}

/// Floods a `max_inflight = 1` server and checks the recording policy:
/// busy refusals land in their own counter and never contaminate the
/// latency histograms, whose populations must equal the accepted count
/// exactly.
#[test]
fn busy_refusals_stay_out_of_the_histograms() {
    const FLOOD: usize = 24;
    let server = Server::start(ServeConfig {
        shards: 1,
        queue_depth: 1,
        max_inflight: 1,
        batch_max: 1,
        ..ServeConfig::default()
    });
    let stream = server.connect_in_process().expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let reader = BufReader::new(stream);

    // Pipeline the flood without waiting for replies so admission
    // control actually trips.
    let replies: Vec<Reply> = std::thread::scope(|s| {
        let collector = s.spawn(move || {
            reader
                .lines()
                .take(FLOOD)
                .map(|l| Reply::parse(&l.expect("reply line")).expect("parse reply"))
                .collect::<Vec<_>>()
        });
        for i in 0..FLOOD {
            let text = module(0xB057, i as u64 * 4, 2);
            let line = Request::render_compile(i as u64, &text, MODE, TARGET, &[]);
            writeln!(writer, "{line}").expect("pipelined send");
        }
        writer.flush().expect("flush flood");
        collector.join().expect("collector")
    });

    let busy = replies.iter().filter(|r| r.status == STATUS_BUSY).count() as u64;
    let ok = replies.iter().filter(|r| r.status == STATUS_OK).count() as u64;
    assert_eq!(busy + ok, FLOOD as u64);
    assert!(
        busy > 0,
        "a 24-deep pipeline against max_inflight=1 must refuse"
    );

    let snap = server.state().telemetry_snapshot();
    assert_eq!(snap.counters.busy_replies, busy);
    assert_eq!(snap.counters.requests_served, ok);
    let count = |name: &str| snap.hist(name).expect(name).count;
    assert_eq!(
        count("request_total"),
        ok,
        "busy refusals must not enter the latency histograms"
    );
    assert_eq!(count("compile_hit") + count("compile_miss"), ok);
    // Refused requests still have their bytes accounted.
    assert!(snap.counters.bytes_out > 0);
    assert_eq!(snap.gauges.peak_inflight, 1, "admission cap respected");
    server.shutdown();
}

/// The `stats` wire document round-trips byte-for-byte through the
/// strict reader, and tampered documents are rejected — checked against
/// a live server rather than a hand-built snapshot.
#[test]
fn live_snapshot_round_trips_and_rejects_tampering() {
    let server = Server::start(one_shard());
    let mut client = Client::from_stream(server.connect_in_process().expect("connect"));
    let text = module(0x57A75, 0, 3);
    let (reply, _) = client.compile(&text, MODE, TARGET, &[]).expect("compile");
    assert_eq!(reply.status, STATUS_OK);

    let reply = client.stats().expect("stats");
    let doc = reply.json.get("telemetry").expect("telemetry member");
    let snap = TelemetrySnapshot::from_json(doc).expect("strict read");
    assert_eq!(
        snap.to_json().render_compact(),
        doc.render_compact(),
        "snapshot must re-serialize to the exact wire document"
    );

    // Any single-field tamper must be caught by the re-validating
    // reader: cross-invariants tie the counters to the histograms.
    let wire = doc.render_compact();
    let tampered = wire.replace("\"requests_served\":1", "\"requests_served\":2");
    assert_ne!(wire, tampered, "tamper target must exist in the document");
    let parsed = Json::parse(&tampered).expect("still JSON");
    let err = TelemetrySnapshot::from_json(&parsed).expect_err("tamper detected");
    assert!(err.contains("requests_served"), "{err}");
    server.shutdown();
}
