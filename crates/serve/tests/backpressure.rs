//! Floods a deliberately tiny server far past its in-flight limit and
//! checks the backpressure contract:
//!
//! * overload produces `busy` replies — never dropped connections or
//!   silently swallowed requests (exactly one reply per request);
//! * per-connection replies come back in request order even though
//!   compiles finish asynchronously;
//! * every *accepted* request still gets the correct, deterministic
//!   reply (byte-identical to an unloaded server's answer).

use std::io::{BufRead, BufReader, Write};

use snslp_serve::proto::Request;
use snslp_serve::{Client, ServeConfig, Server, STATUS_BUSY, STATUS_OK};

const MODE: &str = "snslp";
const TARGET: &str = "avx2";
const FLOOD: usize = 60;

/// A tiny server: one shard, two-deep queue, four requests in flight.
fn tiny_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        queue_depth: 2,
        max_inflight: 4,
        batch_max: 2,
        ..ServeConfig::default()
    }
}

/// Distinct module texts (no two requests can share cache entries).
fn flood_modules() -> Vec<String> {
    (0..FLOOD as u64)
        .map(|i| {
            let mut text = String::new();
            for k in 0..4 {
                let case = snslp_fuzz::generate(0xF100D, i * 4 + k);
                text.push_str(&case.function.to_string());
                text.push('\n');
            }
            text
        })
        .collect()
}

#[test]
fn flood_past_inflight_limit_yields_busy_not_drops() {
    let modules = flood_modules();
    let server = Server::start(tiny_config());
    let stream = server.connect_in_process().expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let reader = BufReader::new(stream);

    // Pipeline the whole flood without waiting for replies, while a
    // sibling thread collects every reply line in arrival order.
    let replies: Vec<String> = std::thread::scope(|s| {
        let collector = s.spawn(move || {
            reader
                .lines()
                .take(FLOOD)
                .map(|l| l.expect("reply line"))
                .collect::<Vec<_>>()
        });
        for (i, text) in modules.iter().enumerate() {
            let line = Request::render_compile(i as u64, text, MODE, TARGET, &[]);
            writeln!(writer, "{line}").expect("pipelined send");
        }
        writer.flush().expect("flush flood");
        collector.join().expect("collector thread")
    });

    // One reply per request — nothing dropped, nothing duplicated.
    assert_eq!(replies.len(), FLOOD, "every request must be answered");

    // Replies in request order: ids must be exactly 0..FLOOD in order.
    let parsed: Vec<snslp_serve::Reply> = replies
        .iter()
        .map(|raw| snslp_serve::Reply::parse(raw).expect("parse reply"))
        .collect();
    let ids: Vec<u64> = parsed.iter().map(|r| r.id).collect();
    let expected: Vec<u64> = (0..FLOOD as u64).collect();
    assert_eq!(ids, expected, "replies must arrive in request order");

    // The flood must actually overload the tiny server.
    let busy = parsed.iter().filter(|r| r.status == STATUS_BUSY).count();
    let ok = parsed.iter().filter(|r| r.status == STATUS_OK).count();
    assert_eq!(busy + ok, FLOOD, "only ok/busy replies expected");
    assert!(
        busy > 0,
        "a 60-request pipeline against max_inflight=4 must refuse some"
    );
    assert!(
        ok > 0,
        "admission control must still accept work under flood"
    );
    assert_eq!(
        server.state().busy_replies(),
        busy as u64,
        "server-side busy counter disagrees with observed refusals"
    );

    // Every accepted request produced the same bytes an unloaded server
    // produces for that module (same id → full byte identity).
    let reference = Server::start(ServeConfig::default());
    let mut ref_client = Client::from_stream(reference.connect_in_process().expect("connect"));
    for reply in parsed.iter().filter(|r| r.status == STATUS_OK) {
        let text = &modules[reply.id as usize];
        let line = Request::render_compile(reply.id, text, MODE, TARGET, &[]);
        let expected = ref_client.round_trip(&line).expect("reference round trip");
        assert_eq!(expected.status, STATUS_OK);
        assert_eq!(
            expected.raw, reply.raw,
            "request {} answered under load differs from unloaded reference",
            reply.id
        );
    }

    reference.shutdown();
    server.shutdown();
}

#[test]
fn busy_clients_succeed_by_retrying() {
    // The Client helper retries busy refusals: even against the tiny
    // server, a closed-loop burst of distinct modules all completes.
    let server = Server::start(tiny_config());
    let results: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|c| {
                let server = &server;
                s.spawn(move || {
                    let mut client =
                        Client::from_stream(server.connect_in_process().expect("connect"));
                    let mut busy = 0;
                    for r in 0..6u64 {
                        let case = snslp_fuzz::generate(0xB0B, c * 100 + r);
                        let text = format!("{}\n", case.function);
                        let (reply, retries) = client
                            .compile(&text, MODE, TARGET, &[])
                            .expect("compile with retry");
                        assert_eq!(reply.status, STATUS_OK, "retry must end in success");
                        busy += retries;
                    }
                    busy
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });
    // Refusals are load-dependent; the invariant is completion, and the
    // counter lets a human eyeball that the tiny server did push back.
    let total_busy: u64 = results.iter().sum();
    println!("busy refusals retried: {total_busy}");
    server.shutdown();
}
