//! End-to-end coverage for the `hot` artifact: a compile that asks for
//! it gets back a strict-reader-valid `snslp-hot/v1` document whose
//! counts reconcile (the reader re-checks the partition and per-class
//! sums), the reply stays memo-identical on replay, and the telemetry
//! counters account the native executions. On hosts without the native
//! backend the artifact is the empty string and the counters stay zero.

use snslp_bench::hot::HotDoc;
use snslp_serve::proto::Request;
use snslp_serve::{Client, ServeConfig, Server, STATUS_OK};

const MODULE: &str = "\
; INPUTS: i64[10,20,30,40] i64[0,0,0,0]
func @pairs(%a: ptr noalias, %o: ptr noalias) -> void {
entry:
  %k8 = const i64 8
  %l0 = load i64, %a
  %a1p = ptradd %a, %k8
  %l1 = load i64, %a1p
  %r0 = add i64 %l0, %l0
  %r1 = add i64 %l1, %l1
  store %o, %r0
  %o1p = ptradd %o, %k8
  store %o1p, %r1
  ret
}
";

fn hot_text(raw: &str) -> String {
    let doc = snslp_bench::json::Json::parse(raw).expect("reply JSON");
    doc.get("artifacts")
        .and_then(|a| a.get("hot"))
        .and_then(snslp_bench::json::Json::as_str)
        .expect("reply carries a hot artifact")
        .to_string()
}

#[test]
fn hot_artifact_round_trips_and_is_counted() {
    let server = Server::start(ServeConfig::default());
    let mut client = Client::from_stream(server.connect_in_process().expect("connect"));

    let line = Request::render_compile(1, MODULE, "snslp", "avx2", &["hot"]);
    let reply = client.round_trip(&line).expect("round trip");
    assert_eq!(reply.status, STATUS_OK, "compile failed: {:?}", reply.error);
    let artifact = hot_text(&reply.raw);

    if !snslp_jit::native_supported() {
        assert!(
            artifact.is_empty(),
            "non-native hosts must answer with an empty hot artifact"
        );
        let telem = client.telemetry().expect("telemetry");
        assert_eq!(telem.counters.hot_requests, 0);
        server.shutdown();
        return;
    }

    // The strict reader re-validates the partition, the per-class sums,
    // and the dyn-inst totals — a parse here is the reconciliation.
    let doc = HotDoc::from_json(&artifact).expect("strict snslp-hot/v1 reader");
    assert_eq!(doc.entries.len(), 1, "one function, one row");
    assert_eq!(doc.entries[0].kernel, "pairs");
    assert_eq!(doc.entries[0].label, "snslp");
    assert!(doc.entries[0].dyn_insts > 0);

    // Replay hits the whole-request memo and answers byte-identically.
    let warm = client.round_trip(&line).expect("memo replay");
    assert_eq!(reply.raw, warm.raw, "memoized hot reply must be identical");

    // The cold compile ran natively once; the memo replay ran nothing.
    let telem = client.telemetry().expect("telemetry");
    assert_eq!(telem.counters.hot_requests, 1);
    assert_eq!(telem.counters.native_runs, 1);
    assert_eq!(telem.counters.native_ops, doc.entries[0].dyn_insts);

    server.shutdown();
}
