//! The service's core correctness property: a cached compile is
//! **byte-identical** to the cold compile that populated the cache — for
//! every checked-in `.snir` fixture and for 500 fuzz-generated cases,
//! through both cache levels, and under concurrent clients.
//!
//! Three replays per module, each exercising a different path:
//!
//! * exact resubmission → the whole-request memo (no parse at all);
//! * the same text with a prepended comment → memo miss (different text
//!   hash) but function-level cache hits for every function;
//! * concurrent clients resubmitting everything at once → cache reads
//!   and in-batch dedupe under contention.
//!
//! Replies carry no wall-clock fields by construction, so "identical"
//! here really is `assert_eq!` on the raw reply line.

use std::path::PathBuf;

use snslp_serve::proto::Request;
use snslp_serve::{Client, ServeConfig, Server, STATUS_OK};

const MODE: &str = "snslp";
const TARGET: &str = "avx2";
const FUZZ_CASES: u64 = 500;
const FUZZ_SEED: u64 = 0x5E12_5EED;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../core/tests/snir")
}

/// Every checked-in `.snir` module: the curated fixtures plus the frozen
/// fuzz regressions in `snir/fuzz/`.
fn fixture_modules() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for dir in [fixture_dir(), fixture_dir().join("fuzz")] {
        let entries = std::fs::read_dir(&dir)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()));
        for entry in entries {
            let path = entry.expect("fixture dir entry").path();
            if path.extension().is_some_and(|e| e == "snir") {
                let text = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
                out.push((path.display().to_string(), text));
            }
        }
    }
    assert!(
        out.len() >= 10,
        "fixture sweep found only {} modules — wrong directory?",
        out.len()
    );
    out.sort();
    out
}

/// 500 fuzz cases grouped into multi-function modules.
fn fuzz_modules() -> Vec<(String, String)> {
    const PER_MODULE: u64 = 5;
    (0..FUZZ_CASES / PER_MODULE)
        .map(|m| {
            let mut text = String::new();
            for k in 0..PER_MODULE {
                let case = snslp_fuzz::generate(FUZZ_SEED, m * PER_MODULE + k);
                text.push_str(&case.function.to_string());
                text.push('\n');
            }
            (format!("fuzz module {m}"), text)
        })
        .collect()
}

/// Sends `module` with a fixed id and asserts an `ok` reply.
fn compile_ok(
    client: &mut Client,
    id: u64,
    module: &str,
    artifacts: &[&str],
    what: &str,
) -> String {
    let line = Request::render_compile(id, module, MODE, TARGET, artifacts);
    let reply = client
        .round_trip(&line)
        .unwrap_or_else(|e| panic!("{what}: round trip failed: {e}"));
    assert_eq!(
        reply.status, STATUS_OK,
        "{what}: expected ok, got {} ({:?})",
        reply.status, reply.error
    );
    reply.raw
}

#[test]
fn cached_compiles_are_byte_identical_across_fixtures_and_fuzz_cases() {
    let mut modules = fixture_modules();
    modules.extend(fuzz_modules());

    let server = Server::start(ServeConfig::default());
    let mut client = Client::from_stream(server.connect_in_process().expect("connect"));

    // Requesting the codegen artifact makes the check cover the cached
    // *optimized function bodies*, not just the reports.
    let artifacts = &["codegen"];
    let mut cold = Vec::with_capacity(modules.len());
    for (i, (what, text)) in modules.iter().enumerate() {
        cold.push(compile_ok(&mut client, i as u64, text, artifacts, what));
    }

    // Path 1: exact replay → whole-request memo.
    for (i, (what, text)) in modules.iter().enumerate() {
        let warm = compile_ok(&mut client, i as u64, text, artifacts, what);
        assert_eq!(
            cold[i], warm,
            "{what}: memo replay differs from cold compile"
        );
    }
    assert!(
        server.state().memo_hits() >= modules.len() as u64,
        "exact replays should all hit the whole-request memo"
    );

    // Path 2: perturbed text (a comment changes the text hash but not
    // the parse) → function-level cache.
    for (i, (what, text)) in modules.iter().enumerate() {
        let perturbed = format!("; cache probe\n{text}");
        let warm = compile_ok(&mut client, i as u64, &perturbed, artifacts, what);
        assert_eq!(
            cold[i], warm,
            "{what}: function-cache replay differs from cold compile"
        );
    }

    // Path 3: four concurrent clients replaying everything.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let server = &server;
            let modules = &modules;
            let cold = &cold;
            s.spawn(move || {
                let mut client = Client::from_stream(server.connect_in_process().expect("connect"));
                for (i, (what, text)) in modules.iter().enumerate() {
                    let warm = compile_ok(&mut client, i as u64, text, artifacts, what);
                    assert_eq!(
                        cold[i], warm,
                        "{what}: concurrent replay differs from cold compile"
                    );
                }
            });
        }
    });

    let stats = server.state().cache_stats();
    assert!(
        stats.hits > 0,
        "replays never hit the function cache: {stats:?}"
    );
    server.shutdown();
}
