//! Kernel modeled on 482.sphinx3's acoustic front end: integer audio
//! samples are converted to float (`sitofp`) and combined with
//! mean-normalization and bias terms in per-lane-permuted add/sub chains.
//! Exercises vector cast bundles feeding a Super-Node.

use snslp_interp::ArgSpec;
use snslp_ir::{CastKind, Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f32_inputs, f32_zeros, load_at};

const ST: ScalarType = ScalarType::F32;

/// Returns the kernel descriptor.
pub fn sphinx_cep() -> Kernel {
    Kernel::new(
        "sphinx_cep",
        "482.sphinx3",
        "front-end sample conversion + mean normalization",
        "sitofp(sample) − mean + bias with per-lane term orders",
        "f32",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "sphinx_cep",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("s"), // i32 samples
            Param::noalias_ptr("m"), // f32 means
            Param::noalias_ptr("b"), // f32 biases
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let s = fb.func().param(1);
    let m = fb.func().param(2);
    let b = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let four = fb.const_i64(4);
        let base = fb.mul(i, four);
        let xs: Vec<_> = (0..4)
            .map(|l| {
                let v = load_at(fb, s, ScalarType::I32, base, l);
                fb.cast(CastKind::Sitofp, ST, v)
            })
            .collect();
        let ms: Vec<_> = (0..4).map(|l| load_at(fb, m, ST, base, l)).collect();
        let bs: Vec<_> = (0..4).map(|l| load_at(fb, b, ST, base, l)).collect();
        // Per-lane permuted chains over {x(+), m(−), b(+)}.
        let r0 = {
            let t = fb.sub(xs[0], ms[0]);
            fb.add(t, bs[0])
        };
        let r1 = {
            let t = fb.add(bs[1], xs[1]);
            fb.sub(t, ms[1])
        };
        let r2 = {
            let t = fb.sub(bs[2], ms[2]);
            fb.add(t, xs[2])
        };
        let r3 = {
            let t = fb.sub(xs[3], ms[3]);
            fb.add(bs[3], t)
        };
        for (l, r) in [r0, r1, r2, r3].into_iter().enumerate() {
            let p = elem_ptr(fb, out, ST, base, l as i64);
            fb.store(p, r);
        }
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 4 * iters + 4;
    let samples: Vec<i32> = {
        let mut rng = crate::util::SplitMix64::new(0xCE);
        (0..len).map(|_| rng.range_i32(-32768, 32768)).collect()
    };
    vec![
        f32_zeros(len),
        ArgSpec::I32Array(samples),
        f32_inputs(len, 0xCF, -100.0, 100.0),
        f32_inputs(len, 0xD0, -10.0, 10.0),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(out: &mut [f32], s: &[i32], m: &[f32], b: &[f32], n: usize) {
    for i in 0..n {
        for l in 0..4 {
            let j = 4 * i + l;
            let x = s[j] as f32;
            out[j] = match l {
                0 => (x - m[j]) + b[j],
                1 => (b[j] + x) - m[j],
                2 => (b[j] - m[j]) + x,
                _ => b[j] + (x - m[j]),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = sphinx_cep();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 5;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F32(got), ArrayData::I32(s), ArrayData::F32(m), ArrayData::F32(b)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0f32; got.len()];
        reference(&mut want, s, m, b, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-2, "{g} vs {w}");
        }
    }
}
