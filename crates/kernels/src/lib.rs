//! # snslp-kernels
//!
//! The evaluation workload suite of the SN-SLP reproduction: IR kernels
//! whose algebraic shapes match the SPEC CPU2006 code the paper's
//! Table I extracts (complex multiply-accumulate from 433.milc, force
//! combinations from 444.namd, FE assembly from 447.dealII, simplex
//! vector updates from 450.soplex, shading from 453.povray, feature
//! scaling from 482.sphinx3), plus the paper's two motivating examples
//! and whole-benchmark composites for the Figure 8–10 experiments.
//!
//! # Examples
//!
//! ```
//! use snslp_kernels::registry;
//!
//! for k in registry() {
//!     let f = k.build();
//!     snslp_ir::verify(&f).unwrap();
//!     println!("{}: {} ({})", k.name, k.shape, k.origin);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod composite;
pub mod dealii;
pub mod kernel;
pub mod milc;
pub mod motivating;
pub mod namd;
pub mod namd_sum;
pub mod povray;
pub mod povray_clamp;
pub mod registry;
pub mod soplex;
pub mod sphinx;
pub mod sphinx_cep;
pub mod sphinx_dist;
pub mod util;

pub use composite::{benchmarks, Benchmark};
pub use kernel::Kernel;
pub use registry::{kernel_by_name, registry};
