//! The kernel registry — the reproduction of the paper's **Table I**
//! ("kernels extracted from SPEC CPU2006 where Super-Node SLP was
//! activated", plus the two motivating examples of §III).

use crate::dealii::dealii_assembly;
use crate::kernel::Kernel;
use crate::milc::milc_su3;
use crate::motivating::{motiv_leaf, motiv_trunk};
use crate::namd::namd_force;
use crate::namd_sum::namd_energy_sum;
use crate::povray::povray_shade;
use crate::povray_clamp::povray_clamp;
use crate::soplex::soplex_update;
use crate::sphinx::sphinx_norm;
use crate::sphinx_cep::sphinx_cep;
use crate::sphinx_dist::sphinx_dist;

/// All kernels, in Table I order (motivating examples last, as in
/// Fig. 5's bar groups).
pub fn registry() -> Vec<Kernel> {
    vec![
        milc_su3(),
        namd_force(),
        namd_energy_sum(),
        dealii_assembly(),
        soplex_update(),
        povray_shade(),
        povray_clamp(),
        sphinx_norm(),
        sphinx_dist(),
        sphinx_cep(),
        motiv_leaf(),
        motiv_trunk(),
    ]
}

/// Looks a kernel up by name.
pub fn kernel_by_name(name: &str) -> Option<Kernel> {
    registry().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ks = registry();
        assert_eq!(ks.len(), 12);
        let mut names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12, "duplicate kernel names");
    }

    #[test]
    fn all_kernels_build_verified_ir() {
        for k in registry() {
            let f = k.build();
            snslp_ir::verify(&f).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(
                f.params().len(),
                k.args(2).len(),
                "{}: args/params mismatch",
                k.name
            );
            assert!(
                f.fast_math || k.elem == "i64",
                "{}: fp needs fast-math",
                k.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(kernel_by_name("milc_su3").is_some());
        assert!(kernel_by_name("nope").is_none());
    }
}
