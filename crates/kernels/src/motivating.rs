//! The paper's two motivating examples (§III), as loops over `long`
//! arrays — "We also included the motivating examples of Section III to
//! the list of kernels for completeness" (§V).

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{i64_inputs, i64_zeros, load_at, store_at};

const ST: ScalarType = ScalarType::I64;

/// Figure 2: leaf reordering only. Per iteration pair:
/// `A[2i] = B[2i] - C[2i] + D[2i+1];  A[2i+1] = D[2i+2] - C[2i+1] + B[2i+1]`.
pub fn motiv_leaf() -> Kernel {
    Kernel::new(
        "motiv_leaf",
        "motivating",
        "paper Fig. 2",
        "add/sub expression whose leaves are swapped across lanes",
        "i64",
        4096,
        build_leaf,
        args,
    )
}

/// Figure 3: leaf *and trunk* reordering. Per iteration pair:
/// `A[2i] = B[2i] - C[2i] + D[2i];  A[2i+1] = B[2i+1] + D[2i+1] - C[2i+1]`.
pub fn motiv_trunk() -> Kernel {
    Kernel::new(
        "motiv_trunk",
        "motivating",
        "paper Fig. 3",
        "add/sub expression needing trunk reordering for isomorphism",
        "i64",
        4096,
        build_trunk,
        args,
    )
}

fn params() -> Vec<Param> {
    vec![
        Param::noalias_ptr("a"),
        Param::noalias_ptr("b"),
        Param::noalias_ptr("c"),
        Param::noalias_ptr("d"),
        Param::new("n", Type::scalar(ScalarType::I64)),
    ]
}

fn build_leaf() -> Function {
    let mut fb = FunctionBuilder::new("motiv_leaf", params(), Type::Void);
    let a = fb.func().param(0);
    let b = fb.func().param(1);
    let c = fb.func().param(2);
    let d = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let base = fb.mul(i, two);
        // Lane 0: B[2i] - C[2i] + D[2i+1]
        let b0 = load_at(fb, b, ST, base, 0);
        let c0 = load_at(fb, c, ST, base, 0);
        let d1 = load_at(fb, d, ST, base, 1);
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d1);
        // Lane 1: D[2i+2] - C[2i+1] + B[2i+1]
        let d2 = load_at(fb, d, ST, base, 2);
        let c1 = load_at(fb, c, ST, base, 1);
        let b1 = load_at(fb, b, ST, base, 1);
        let t1 = fb.sub(d2, c1);
        let r1 = fb.add(t1, b1);
        store_at(fb, a, ST, base, 0, r0);
        store_at(fb, a, ST, base, 1, r1);
    });
    fb.ret(None);
    fb.finish()
}

fn build_trunk() -> Function {
    let mut fb = FunctionBuilder::new("motiv_trunk", params(), Type::Void);
    let a = fb.func().param(0);
    let b = fb.func().param(1);
    let c = fb.func().param(2);
    let d = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let base = fb.mul(i, two);
        // Lane 0: B[2i] - C[2i] + D[2i]
        let b0 = load_at(fb, b, ST, base, 0);
        let c0 = load_at(fb, c, ST, base, 0);
        let d0 = load_at(fb, d, ST, base, 0);
        let t0 = fb.sub(b0, c0);
        let r0 = fb.add(t0, d0);
        // Lane 1: B[2i+1] + D[2i+1] - C[2i+1]
        let b1 = load_at(fb, b, ST, base, 1);
        let d1 = load_at(fb, d, ST, base, 1);
        let c1 = load_at(fb, c, ST, base, 1);
        let t1 = fb.add(b1, d1);
        let r1 = fb.sub(t1, c1);
        store_at(fb, a, ST, base, 0, r0);
        store_at(fb, a, ST, base, 1, r1);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 2 * iters + 3;
    vec![
        i64_zeros(len),
        i64_inputs(len, 0xB0, -1_000_000, 1_000_000),
        i64_inputs(len, 0xC0, -1_000_000, 1_000_000),
        i64_inputs(len, 0xD0, -1_000_000, 1_000_000),
        ArgSpec::I64(iters as i64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_build_and_verify() {
        for k in [motiv_leaf(), motiv_trunk()] {
            let f = k.build();
            snslp_ir::verify(&f).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert_eq!(f.params().len(), k.args(4).len());
        }
    }

    #[test]
    fn reference_semantics_leaf() {
        use snslp_cost::CostModel;
        use snslp_interp::{run_with_args, ArrayData, ExecOptions};
        let k = motiv_leaf();
        let f = k.build();
        let n = 3;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::I64(a), ArrayData::I64(b), ArrayData::I64(c), ArrayData::I64(d)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        for i in 0..n {
            assert_eq!(a[2 * i], b[2 * i] - c[2 * i] + d[2 * i + 1]);
            assert_eq!(a[2 * i + 1], d[2 * i + 2] - c[2 * i + 1] + b[2 * i + 1]);
        }
    }

    #[test]
    fn reference_semantics_trunk() {
        use snslp_cost::CostModel;
        use snslp_interp::{run_with_args, ArrayData, ExecOptions};
        let k = motiv_trunk();
        let f = k.build();
        let n = 3;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::I64(a), ArrayData::I64(b), ArrayData::I64(c), ArrayData::I64(d)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        for i in 0..n {
            assert_eq!(a[2 * i], b[2 * i] - c[2 * i] + d[2 * i]);
            assert_eq!(a[2 * i + 1], b[2 * i + 1] + d[2 * i + 1] - c[2 * i + 1]);
        }
    }
}
