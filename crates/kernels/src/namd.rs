//! Kernel modeled on 444.namd's pairwise force computation: an energy
//! combination `(e1 − e2 + e3) · q` whose term order differs between the
//! unrolled lanes, with the chain feeding a multiplication (the
//! Super-Node sits *below* the root of the SLP graph).

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f64_inputs, f64_zeros, load_at};

const ST: ScalarType = ScalarType::F64;

/// Returns the kernel descriptor.
pub fn namd_force() -> Kernel {
    Kernel::new(
        "namd_force",
        "444.namd",
        "calc_pair_energy force combination",
        "scaled add/sub energy combination with per-lane term orders",
        "f64",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "namd_force",
        vec![
            Param::noalias_ptr("f"),
            Param::noalias_ptr("e1"),
            Param::noalias_ptr("e2"),
            Param::noalias_ptr("e3"),
            Param::noalias_ptr("q"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let f = fb.func().param(0);
    let e1 = fb.func().param(1);
    let e2 = fb.func().param(2);
    let e3 = fb.func().param(3);
    let q = fb.func().param(4);
    let n = fb.func().param(5);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let base = fb.mul(i, two);
        let qv = load_at(fb, q, ST, i, 0);
        // Lane 0: (e1 − e2 + e3) · q
        let a0 = load_at(fb, e1, ST, base, 0);
        let b0 = load_at(fb, e2, ST, base, 0);
        let c0 = load_at(fb, e3, ST, base, 0);
        let t0 = fb.sub(a0, b0);
        let u0 = fb.add(t0, c0);
        let r0 = fb.mul(u0, qv);
        // Lane 1: (e3 + e1 − e2) · q
        let c1 = load_at(fb, e3, ST, base, 1);
        let a1 = load_at(fb, e1, ST, base, 1);
        let b1 = load_at(fb, e2, ST, base, 1);
        let t1 = fb.add(c1, a1);
        let u1 = fb.sub(t1, b1);
        let r1 = fb.mul(u1, qv);
        let p0 = elem_ptr(fb, f, ST, base, 0);
        let p1 = elem_ptr(fb, f, ST, base, 1);
        fb.store(p0, r0);
        fb.store(p1, r1);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 2 * iters + 2;
    vec![
        f64_zeros(len),
        f64_inputs(len, 0xE1, -10.0, 10.0),
        f64_inputs(len, 0xE2, -10.0, 10.0),
        f64_inputs(len, 0xE3, -10.0, 10.0),
        f64_inputs(iters + 1, 0x09, 0.5, 1.5),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(f: &mut [f64], e1: &[f64], e2: &[f64], e3: &[f64], q: &[f64], n: usize) {
    for i in 0..n {
        let qv = q[i];
        f[2 * i] = (e1[2 * i] - e2[2 * i] + e3[2 * i]) * qv;
        f[2 * i + 1] = (e3[2 * i + 1] + e1[2 * i + 1] - e2[2 * i + 1]) * qv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = namd_force();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 7;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (
            ArrayData::F64(got),
            ArrayData::F64(e1),
            ArrayData::F64(e2),
            ArrayData::F64(e3),
            ArrayData::F64(q),
        ) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
            &out.arrays[4],
        )
        else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0; got.len()];
        reference(&mut want, e1, e2, e3, q, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }
}
