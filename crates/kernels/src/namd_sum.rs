//! Kernel modeled on 444.namd's energy accumulation: a *pure-add* chain
//! whose leaf order is scrambled across lanes. This is the case LSLP's
//! Multi-Node already handles (no inverse operators), included so the
//! evaluation shows the Multi-Node baseline forming nodes at all
//! (paper Fig. 6's non-zero LSLP bars) and LSLP matching SN-SLP when no
//! inverse element is involved.

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f64_inputs, f64_zeros, load_at};

const ST: ScalarType = ScalarType::F64;

/// Returns the kernel descriptor.
pub fn namd_energy_sum() -> Kernel {
    Kernel::new(
        "namd_energy_sum",
        "444.namd",
        "pairlist energy accumulation (pure adds)",
        "commutative-only chain with scrambled leaves (Multi-Node case)",
        "f64",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "namd_energy_sum",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("ev"), // van der Waals
            Param::noalias_ptr("ee"), // electrostatic
            Param::noalias_ptr("es"), // slow/long-range
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let ev = fb.func().param(1);
    let ee = fb.func().param(2);
    let es = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let base = fb.mul(i, two);
        // Lane 0: (ev + ee) + es
        let v0 = load_at(fb, ev, ST, base, 0);
        let e0 = load_at(fb, ee, ST, base, 0);
        let s0 = load_at(fb, es, ST, base, 0);
        let t0 = fb.add(v0, e0);
        let r0 = fb.add(t0, s0);
        // Lane 1: (ev + es) + ee — leaf order scrambled across the chain.
        let v1 = load_at(fb, ev, ST, base, 1);
        let s1 = load_at(fb, es, ST, base, 1);
        let e1 = load_at(fb, ee, ST, base, 1);
        let t1 = fb.add(v1, s1);
        let r1 = fb.add(t1, e1);
        let p0 = elem_ptr(fb, out, ST, base, 0);
        let p1 = elem_ptr(fb, out, ST, base, 1);
        fb.store(p0, r0);
        fb.store(p1, r1);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 2 * iters + 2;
    vec![
        f64_zeros(len),
        f64_inputs(len, 0x61, -10.0, 10.0),
        f64_inputs(len, 0x62, -10.0, 10.0),
        f64_inputs(len, 0x63, -10.0, 10.0),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(out: &mut [f64], ev: &[f64], ee: &[f64], es: &[f64], n: usize) {
    for i in 0..n {
        out[2 * i] = (ev[2 * i] + ee[2 * i]) + es[2 * i];
        out[2 * i + 1] = (ev[2 * i + 1] + es[2 * i + 1]) + ee[2 * i + 1];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = namd_energy_sum();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 6;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F64(got), ArrayData::F64(ev), ArrayData::F64(ee), ArrayData::F64(es)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0; got.len()];
        reference(&mut want, ev, ee, es, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }
}
