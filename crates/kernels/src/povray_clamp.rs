//! Kernel modeled on 453.povray's colour clamping: the shading chain
//! `amb + dif − att` (per-lane permuted, a Super-Node case) fed through
//! a saturate-to-one `clamp` written as compare + select. Exercises the
//! composition of vector `cmp`/`select` bundles with the Super-Node.

use snslp_interp::ArgSpec;
use snslp_ir::{CmpPred, Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f32_inputs, f32_zeros, load_at};

const ST: ScalarType = ScalarType::F32;

/// Returns the kernel descriptor.
pub fn povray_clamp() -> Kernel {
    Kernel::new(
        "povray_clamp",
        "453.povray",
        "Clip_Colour saturation of shaded components",
        "clamped add/sub shading chain: cmp+select over a Super-Node",
        "f32",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "povray_clamp",
        vec![
            Param::noalias_ptr("c"),
            Param::noalias_ptr("amb"),
            Param::noalias_ptr("dif"),
            Param::noalias_ptr("att"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let c = fb.func().param(0);
    let amb = fb.func().param(1);
    let dif = fb.func().param(2);
    let att = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let four = fb.const_i64(4);
        let base = fb.mul(i, four);
        let a: Vec<_> = (0..4).map(|l| load_at(fb, amb, ST, base, l)).collect();
        let d: Vec<_> = (0..4).map(|l| load_at(fb, dif, ST, base, l)).collect();
        let t: Vec<_> = (0..4).map(|l| load_at(fb, att, ST, base, l)).collect();
        // Per-lane permuted shading chains (the Super-Node part).
        let x0 = {
            let u = fb.add(a[0], d[0]);
            fb.sub(u, t[0])
        };
        let x1 = {
            let u = fb.sub(d[1], t[1]);
            fb.add(u, a[1])
        };
        let x2 = {
            let u = fb.sub(a[2], t[2]);
            fb.add(u, d[2])
        };
        let x3 = {
            let u = fb.sub(d[3], t[3]);
            fb.add(a[3], u)
        };
        // Saturate each component at 1.0 (the cmp+select part).
        for (l, x) in [x0, x1, x2, x3].into_iter().enumerate() {
            let one = fb.const_f32(1.0);
            let over = fb.cmp(CmpPred::Gt, x, one);
            let clamped = fb.select(over, one, x);
            let p = elem_ptr(fb, c, ST, base, l as i64);
            fb.store(p, clamped);
        }
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 4 * iters + 4;
    vec![
        f32_zeros(len),
        f32_inputs(len, 0x81, 0.0, 1.0),
        f32_inputs(len, 0x82, 0.0, 1.0),
        f32_inputs(len, 0x83, 0.0, 0.5),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(c: &mut [f32], amb: &[f32], dif: &[f32], att: &[f32], n: usize) {
    for i in 0..n {
        for l in 0..4 {
            let j = 4 * i + l;
            let x = match l {
                0 => (amb[j] + dif[j]) - att[j],
                1 => (dif[j] - att[j]) + amb[j],
                2 => (amb[j] - att[j]) + dif[j],
                _ => amb[j] + (dif[j] - att[j]),
            };
            c[j] = if x > 1.0 { 1.0 } else { x };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = povray_clamp();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 6;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F32(got), ArrayData::F32(amb), ArrayData::F32(dif), ArrayData::F32(att)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0f32; got.len()];
        reference(&mut want, amb, dif, att, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }
}
