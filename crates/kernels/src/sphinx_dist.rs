//! Kernel modeled on 482.sphinx3's Gaussian distance evaluation:
//! `out[i] = Σ_k (x[k] − m[k])²` over an unrolled 8-term block — a
//! horizontal reduction (the paper enables `-slp-vectorize-hor` for all
//! configurations, §V). Every vectorizer mode handles this one; it
//! exercises the reduction-seed path rather than the Super-Node.

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, InstId, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f32_inputs, f32_zeros, load_at};

const ST: ScalarType = ScalarType::F32;
const TERMS: usize = 8;

/// Returns the kernel descriptor.
pub fn sphinx_dist() -> Kernel {
    Kernel::new(
        "sphinx_dist",
        "482.sphinx3",
        "vector_dist squared-distance accumulation",
        "horizontal reduction of 8 squared differences (f32)",
        "f32",
        2048,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "sphinx_dist",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("x"),
            Param::noalias_ptr("m"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let x = fb.func().param(1);
    let m = fb.func().param(2);
    let n = fb.func().param(3);
    fb.counted_loop(n, |fb, i| {
        let eight = fb.const_i64(TERMS as i64);
        let base = fb.mul(i, eight);
        let mut terms: Vec<InstId> = Vec::with_capacity(TERMS);
        for k in 0..TERMS {
            let xv = load_at(fb, x, ST, base, k as i64);
            let mv = load_at(fb, m, ST, base, k as i64);
            let d = fb.sub(xv, mv);
            terms.push(fb.mul(d, d));
        }
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = fb.add(acc, t);
        }
        let p = elem_ptr(fb, out, ST, i, 0);
        fb.store(p, acc);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = TERMS * iters + TERMS;
    vec![
        f32_zeros(iters + 1),
        f32_inputs(len, 0xD1, -2.0, 2.0),
        f32_inputs(len, 0xD2, -2.0, 2.0),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(out: &mut [f32], x: &[f32], m: &[f32], n: usize) {
    for i in 0..n {
        out[i] = (0..TERMS)
            .map(|k| {
                let d = x[TERMS * i + k] - m[TERMS * i + k];
                d * d
            })
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = sphinx_dist();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 5;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F32(got), ArrayData::F32(x), ArrayData::F32(m)) =
            (&out.arrays[0], &out.arrays[1], &out.arrays[2])
        else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0f32; got.len()];
        reference(&mut want, x, m, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "{g} vs {w}");
        }
    }
}
