//! Kernel modeled on 450.soplex's dense vector updates inside the
//! simplex solver: `x ← x − α·p + β·q` with the term order differing
//! between the unrolled lanes. The update is in-place (`x` is both read
//! and written), exercising the vectorizer's memory-dependence checks.

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f64_inputs, load_at};

const ST: ScalarType = ScalarType::F64;

/// Returns the kernel descriptor.
pub fn soplex_update() -> Kernel {
    Kernel::new(
        "soplex_update",
        "450.soplex",
        "SSVector update x ← x − α·p + β·q",
        "in-place scaled vector update with per-lane term orders",
        "f64",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "soplex_update",
        vec![
            Param::noalias_ptr("x"),
            Param::noalias_ptr("p"),
            Param::noalias_ptr("q"),
            Param::new("alpha", Type::scalar(ST)),
            Param::new("beta", Type::scalar(ST)),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let x = fb.func().param(0);
    let p = fb.func().param(1);
    let q = fb.func().param(2);
    let alpha = fb.func().param(3);
    let beta = fb.func().param(4);
    let n = fb.func().param(5);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let base = fb.mul(i, two);
        let x0 = load_at(fb, x, ST, base, 0);
        let x1 = load_at(fb, x, ST, base, 1);
        let p0 = load_at(fb, p, ST, base, 0);
        let p1 = load_at(fb, p, ST, base, 1);
        let q0 = load_at(fb, q, ST, base, 0);
        let q1 = load_at(fb, q, ST, base, 1);
        // Lane 0: x0 − α·p0 + β·q0
        let ap0 = fb.mul(alpha, p0);
        let bq0 = fb.mul(beta, q0);
        let t0 = fb.sub(x0, ap0);
        let r0 = fb.add(t0, bq0);
        // Lane 1: β·q1 + x1 − α·p1
        let bq1 = fb.mul(beta, q1);
        let ap1 = fb.mul(alpha, p1);
        let t1 = fb.add(bq1, x1);
        let r1 = fb.sub(t1, ap1);
        let w0 = elem_ptr(fb, x, ST, base, 0);
        let w1 = elem_ptr(fb, x, ST, base, 1);
        fb.store(w0, r0);
        fb.store(w1, r1);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 2 * iters + 2;
    vec![
        f64_inputs(len, 0x50, -5.0, 5.0),
        f64_inputs(len, 0x51, -5.0, 5.0),
        f64_inputs(len, 0x52, -5.0, 5.0),
        ArgSpec::F64(0.75),
        ArgSpec::F64(1.25),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(x: &mut [f64], p: &[f64], q: &[f64], alpha: f64, beta: f64, n: usize) {
    for i in 0..n {
        let r0 = x[2 * i] - alpha * p[2 * i] + beta * q[2 * i];
        let r1 = beta * q[2 * i + 1] + x[2 * i + 1] - alpha * p[2 * i + 1];
        x[2 * i] = r0;
        x[2 * i + 1] = r1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = soplex_update();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 9;
        let spec = k.args(n);
        let ArgSpec::F64Array(x0) = spec[0].clone() else {
            panic!()
        };
        let out = run_with_args(&f, &spec, &CostModel::default(), &ExecOptions::default()).unwrap();
        let (ArrayData::F64(got), ArrayData::F64(p), ArrayData::F64(q)) =
            (&out.arrays[0], &out.arrays[1], &out.arrays[2])
        else {
            panic!("wrong array types")
        };
        let mut want = x0;
        reference(&mut want, p, q, 0.75, 1.25, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }
}
