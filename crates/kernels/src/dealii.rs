//! Kernel modeled on 447.dealII's local finite-element assembly: a 2×2
//! local matrix (column-major) applied to a 2-vector with a source-term
//! correction, with the term order scrambled between the two output
//! lanes.

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f64_inputs, f64_zeros, load_at};

const ST: ScalarType = ScalarType::F64;

/// Returns the kernel descriptor.
pub fn dealii_assembly() -> Kernel {
    Kernel::new(
        "dealii_assembly",
        "447.dealII",
        "local FE matrix apply (2×2, column-major)",
        "matrix·vector with source correction, per-lane term orders",
        "f64",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "dealii_assembly",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("m"), // column-major 2×2 per iteration
            Param::noalias_ptr("v"),
            Param::noalias_ptr("s"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let m = fb.func().param(1);
    let v = fb.func().param(2);
    let s = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let four = fb.const_i64(4);
        let base2 = fb.mul(i, two);
        let base4 = fb.mul(i, four);
        // Column-major: column 0 = m[4i], m[4i+1]; column 1 = m[4i+2], m[4i+3].
        let m00 = load_at(fb, m, ST, base4, 0);
        let m10 = load_at(fb, m, ST, base4, 1);
        let m01 = load_at(fb, m, ST, base4, 2);
        let m11 = load_at(fb, m, ST, base4, 3);
        let v0 = load_at(fb, v, ST, base2, 0);
        let v1 = load_at(fb, v, ST, base2, 1);
        let s0 = load_at(fb, s, ST, base2, 0);
        let s1 = load_at(fb, s, ST, base2, 1);
        // Lane 0: m00·v0 − m01·v1 + s0
        let p00 = fb.mul(m00, v0);
        let p01 = fb.mul(m01, v1);
        let t0 = fb.sub(p00, p01);
        let r0 = fb.add(t0, s0);
        // Lane 1: s1 + m10·v0 − m11·v1
        let p10 = fb.mul(m10, v0);
        let p11 = fb.mul(m11, v1);
        let t1 = fb.add(s1, p10);
        let r1 = fb.sub(t1, p11);
        let q0 = elem_ptr(fb, out, ST, base2, 0);
        let q1 = elem_ptr(fb, out, ST, base2, 1);
        fb.store(q0, r0);
        fb.store(q1, r1);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    vec![
        f64_zeros(2 * iters + 2),
        f64_inputs(4 * iters + 4, 0x44, -2.0, 2.0),
        f64_inputs(2 * iters + 2, 0x45, -2.0, 2.0),
        f64_inputs(2 * iters + 2, 0x46, -2.0, 2.0),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(out: &mut [f64], m: &[f64], v: &[f64], s: &[f64], n: usize) {
    for i in 0..n {
        let (m00, m10, m01, m11) = (m[4 * i], m[4 * i + 1], m[4 * i + 2], m[4 * i + 3]);
        let (v0, v1) = (v[2 * i], v[2 * i + 1]);
        out[2 * i] = m00 * v0 - m01 * v1 + s[2 * i];
        out[2 * i + 1] = s[2 * i + 1] + m10 * v0 - m11 * v1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = dealii_assembly();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 6;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F64(got), ArrayData::F64(m), ArrayData::F64(v), ArrayData::F64(s)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0; got.len()];
        reference(&mut want, m, v, s, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }
}
