//! The [`Kernel`] descriptor: a named, reproducible workload consisting
//! of an IR builder and an input generator.

use snslp_interp::ArgSpec;
use snslp_ir::Function;

/// One kernel of the evaluation suite (one bar group of the paper's
/// Fig. 5–7, one row of Table I).
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short identifier, e.g. `milc_su3`.
    pub name: &'static str,
    /// The SPEC CPU2006 benchmark the kernel's algebraic shape is taken
    /// from, e.g. `433.milc` (or `motivating` for the paper's §III
    /// examples).
    pub origin: &'static str,
    /// The source construct the kernel models.
    pub shape: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Element type as a display string (`i64`, `f64`, `f32`).
    pub elem: &'static str,
    /// Default iteration count for benchmarks.
    pub default_iters: usize,
    build: fn() -> Function,
    args: fn(usize) -> Vec<ArgSpec>,
}

impl Kernel {
    /// Creates a kernel descriptor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &'static str,
        origin: &'static str,
        shape: &'static str,
        description: &'static str,
        elem: &'static str,
        default_iters: usize,
        build: fn() -> Function,
        args: fn(usize) -> Vec<ArgSpec>,
    ) -> Self {
        Kernel {
            name,
            origin,
            shape,
            description,
            elem,
            default_iters,
            build,
            args,
        }
    }

    /// Builds the scalar IR of the kernel.
    pub fn build(&self) -> Function {
        (self.build)()
    }

    /// Generates deterministic inputs for `iters` iterations, in the
    /// order of the function's parameters (the trailing parameter is the
    /// iteration count).
    pub fn args(&self, iters: usize) -> Vec<ArgSpec> {
        (self.args)(iters)
    }

    /// Inputs for the default iteration count.
    pub fn default_args(&self) -> Vec<ArgSpec> {
        self.args(self.default_iters)
    }
}
