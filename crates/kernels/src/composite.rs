//! Whole-benchmark composites for the paper's Figures 8–10.
//!
//! "Since Super-Node SLP is a generic optimization, not one that targets
//! specific hot loops, the performance improvements across whole
//! benchmarks were not expected to be significant" (§V-B). We reproduce
//! the dilution effect by embedding each kernel in a program that spends
//! most of its cycles in *neutral* code the vectorizer cannot touch
//! (single-store streams, reductions, strided accesses). 433.milc gets
//! the largest kernel share, matching its ≈2% whole-benchmark speedup.

use snslp_interp::ArgSpec;
use snslp_ir::{CmpPred, Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::registry::kernel_by_name;
use crate::util::{elem_ptr, f64_inputs, f64_zeros, load_at};

/// A whole-benchmark composite: one SN-SLP-relevant kernel plus neutral
/// filler functions, with iteration counts that set the kernel's share of
/// total cycles.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// SPEC benchmark name, e.g. `433.milc`.
    pub name: &'static str,
    /// The kernel embedded in the benchmark.
    pub kernel: Kernel,
    /// Iterations for the kernel function.
    pub kernel_iters: usize,
    /// Iterations for each neutral function.
    pub neutral_iters: usize,
}

impl Benchmark {
    /// All functions of the composite with their inputs, kernel first.
    pub fn functions(&self) -> Vec<(Function, Vec<ArgSpec>)> {
        let mut fns = vec![(self.kernel.build(), self.kernel.args(self.kernel_iters))];
        let n = self.neutral_iters;
        fns.push((stream_copy(), stream_copy_args(n)));
        fns.push((reduce_sum(), reduce_sum_args(n)));
        fns.push((stride_scale(), stride_scale_args(n)));
        fns
    }
}

/// The six C/C++ SPEC CPU2006 benchmarks where SN-SLP activates (§V-B).
pub fn benchmarks() -> Vec<Benchmark> {
    let b = |name, kernel: &str, kernel_iters, neutral_iters| Benchmark {
        name,
        kernel: kernel_by_name(kernel).expect("registered kernel"),
        kernel_iters,
        neutral_iters,
    };
    vec![
        // milc: the kernel is a meaningful fraction of runtime (≈2%
        // whole-benchmark effect in the paper).
        b("433.milc", "milc_su3", 600, 12000),
        b("444.namd", "namd_force", 100, 12000),
        b("447.dealII", "dealii_assembly", 100, 12000),
        b("450.soplex", "soplex_update", 150, 14000),
        b("453.povray", "povray_shade", 100, 25000),
        b("482.sphinx3", "sphinx_norm", 100, 25000),
    ]
}

/// Neutral: `dst[i] = src[i]` — a single store per iteration never forms
/// a seed group.
fn stream_copy() -> Function {
    let mut fb = FunctionBuilder::new(
        "stream_copy",
        vec![
            Param::noalias_ptr("dst"),
            Param::noalias_ptr("src"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    let dst = fb.func().param(0);
    let src = fb.func().param(1);
    let n = fb.func().param(2);
    fb.counted_loop(n, |fb, i| {
        let v = load_at(fb, src, ScalarType::F64, i, 0);
        let p = elem_ptr(fb, dst, ScalarType::F64, i, 0);
        fb.store(p, v);
    });
    fb.ret(None);
    fb.finish()
}

fn stream_copy_args(n: usize) -> Vec<ArgSpec> {
    vec![
        f64_zeros(n + 1),
        f64_inputs(n + 1, 0x1111, -1.0, 1.0),
        ArgSpec::I64(n as i64),
    ]
}

/// Neutral: a scalar reduction with a loop-carried phi — no stores, so no
/// seeds.
fn reduce_sum() -> Function {
    let mut fb = FunctionBuilder::new(
        "reduce_sum",
        vec![
            Param::noalias_ptr("src"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::scalar(ScalarType::F64),
    );
    let src = fb.func().param(0);
    let n = fb.func().param(1);
    let preheader = fb.current_block();
    let header = fb.create_block("loop");
    let exit = fb.create_block("exit");
    let zero_i = fb.const_i64(0);
    let zero_f = fb.const_f64(0.0);
    fb.jump(header);
    fb.switch_to(header);
    let i = fb.phi(Type::scalar(ScalarType::I64));
    let acc = fb.phi(Type::scalar(ScalarType::F64));
    fb.add_phi_incoming(i, preheader, zero_i);
    fb.add_phi_incoming(acc, preheader, zero_f);
    let v = load_at(&mut fb, src, ScalarType::F64, i, 0);
    let acc2 = fb.add(acc, v);
    let one = fb.const_i64(1);
    let i2 = fb.add(i, one);
    fb.add_phi_incoming(i, header, i2);
    fb.add_phi_incoming(acc, header, acc2);
    let c = fb.cmp(CmpPred::Lt, i2, n);
    fb.branch(c, header, exit);
    fb.switch_to(exit);
    fb.ret(Some(acc2));
    fb.finish()
}

fn reduce_sum_args(n: usize) -> Vec<ArgSpec> {
    vec![
        f64_inputs(n + 1, 0x2222, -1.0, 1.0),
        ArgSpec::I64(n.max(1) as i64),
    ]
}

/// Neutral: `dst[2i] = src[3i] * 1.0001` — strided, non-adjacent stores.
fn stride_scale() -> Function {
    let mut fb = FunctionBuilder::new(
        "stride_scale",
        vec![
            Param::noalias_ptr("dst"),
            Param::noalias_ptr("src"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    let dst = fb.func().param(0);
    let src = fb.func().param(1);
    let n = fb.func().param(2);
    fb.counted_loop(n, |fb, i| {
        let three = fb.const_i64(3);
        let two = fb.const_i64(2);
        let i3 = fb.mul(i, three);
        let i2 = fb.mul(i, two);
        let v = load_at(fb, src, ScalarType::F64, i3, 0);
        let k = fb.const_f64(1.0001);
        let s = fb.mul(v, k);
        let p = elem_ptr(fb, dst, ScalarType::F64, i2, 0);
        fb.store(p, s);
    });
    fb.ret(None);
    fb.finish()
}

fn stride_scale_args(n: usize) -> Vec<ArgSpec> {
    vec![
        f64_zeros(2 * n + 2),
        f64_inputs(3 * n + 3, 0x3333, -1.0, 1.0),
        ArgSpec::I64(n as i64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ExecOptions};

    #[test]
    fn six_benchmarks_registered() {
        let bs = benchmarks();
        assert_eq!(bs.len(), 6);
        let names: Vec<&str> = bs.iter().map(|b| b.name).collect();
        assert!(names.contains(&"433.milc"));
    }

    #[test]
    fn composite_functions_build_and_run() {
        let bench = Benchmark {
            name: "test",
            kernel: kernel_by_name("milc_su3").unwrap(),
            kernel_iters: 4,
            neutral_iters: 8,
        };
        let model = CostModel::default();
        for (f, args) in bench.functions() {
            snslp_ir::verify(&f).unwrap_or_else(|e| panic!("{}: {e}", f.name()));
            run_with_args(&f, &args, &model, &ExecOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", f.name()));
        }
    }

    #[test]
    fn neutral_functions_have_no_seed_pairs() {
        // The neutral fillers must be invisible to the vectorizer.
        for f in [stream_copy(), stride_scale(), reduce_sum()] {
            for b in f.block_ids() {
                let ctx = snslp_core::BlockCtx::compute(&f, b);
                let seeds = snslp_core::collect_store_seeds(
                    &f,
                    &ctx,
                    |_| 4,
                    &snslp_ir::FxHashSet::default(),
                );
                assert!(seeds.is_empty(), "{} has seeds in {b}", f.name());
            }
        }
    }
}
