//! Kernel modeled on 453.povray's shading accumulation: four unrolled
//! `f32` lanes (VF = 4 on a 128-bit target) computing
//! `ambient + diffuse·kd − attenuation` with a different association and
//! term order in every lane — including one lane whose chain is a *tree*
//! rather than a left-leaning spine.

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f32_inputs, f32_zeros, load_at};

const ST: ScalarType = ScalarType::F32;

/// Returns the kernel descriptor.
pub fn povray_shade() -> Kernel {
    Kernel::new(
        "povray_shade",
        "453.povray",
        "Diffuse_Colour shading accumulation",
        "amb + dif·kd − att over 4 f32 lanes with permuted chains",
        "f32",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "povray_shade",
        vec![
            Param::noalias_ptr("c"),
            Param::noalias_ptr("amb"),
            Param::noalias_ptr("dif"),
            Param::noalias_ptr("att"),
            Param::new("kd", Type::scalar(ST)),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let c = fb.func().param(0);
    let amb = fb.func().param(1);
    let dif = fb.func().param(2);
    let att = fb.func().param(3);
    let kd = fb.func().param(4);
    let n = fb.func().param(5);
    fb.counted_loop(n, |fb, i| {
        let four = fb.const_i64(4);
        let base = fb.mul(i, four);
        let a: Vec<_> = (0..4).map(|l| load_at(fb, amb, ST, base, l)).collect();
        let d: Vec<_> = (0..4).map(|l| load_at(fb, dif, ST, base, l)).collect();
        let t: Vec<_> = (0..4).map(|l| load_at(fb, att, ST, base, l)).collect();
        let m: Vec<_> = d.iter().map(|&dl| fb.mul(dl, kd)).collect();
        // Lane 0: (amb + m) − att
        let r0 = {
            let u = fb.add(a[0], m[0]);
            fb.sub(u, t[0])
        };
        // Lane 1: (m − att) + amb
        let r1 = {
            let u = fb.sub(m[1], t[1]);
            fb.add(u, a[1])
        };
        // Lane 2: (amb − att) + m
        let r2 = {
            let u = fb.sub(a[2], t[2]);
            fb.add(u, m[2])
        };
        // Lane 3: amb + (m − att)   — a tree, not a left chain.
        let r3 = {
            let u = fb.sub(m[3], t[3]);
            fb.add(a[3], u)
        };
        for (l, r) in [r0, r1, r2, r3].into_iter().enumerate() {
            let p = elem_ptr(fb, c, ST, base, l as i64);
            fb.store(p, r);
        }
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 4 * iters + 4;
    vec![
        f32_zeros(len),
        f32_inputs(len, 0x71, 0.0, 1.0),
        f32_inputs(len, 0x72, 0.0, 1.0),
        f32_inputs(len, 0x73, 0.0, 0.5),
        ArgSpec::F32(0.8),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(c: &mut [f32], amb: &[f32], dif: &[f32], att: &[f32], kd: f32, n: usize) {
    for i in 0..n {
        for l in 0..4 {
            let j = 4 * i + l;
            c[j] = match l {
                0 => (amb[j] + dif[j] * kd) - att[j],
                1 => (dif[j] * kd - att[j]) + amb[j],
                2 => (amb[j] - att[j]) + dif[j] * kd,
                _ => amb[j] + (dif[j] * kd - att[j]),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = povray_shade();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 5;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F32(got), ArrayData::F32(amb), ArrayData::F32(dif), ArrayData::F32(att)) = (
            &out.arrays[0],
            &out.arrays[1],
            &out.arrays[2],
            &out.arrays[3],
        ) else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0f32; got.len()];
        reference(&mut want, amb, dif, att, 0.8, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }
}
