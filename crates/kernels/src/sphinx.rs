//! Kernel modeled on 482.sphinx3's feature normalization: `x·g / v`
//! over four unrolled `f32` lanes with permuted association — the
//! *multiplicative* operator family (`mul`/`div`), exercising the
//! reciprocal inverse element of the Super-Node (paper §III-A:
//! `A * B / C` ≡ `A * B * (1/C)`).

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{elem_ptr, f32_inputs, f32_zeros, load_at};

const ST: ScalarType = ScalarType::F32;

/// Returns the kernel descriptor.
pub fn sphinx_norm() -> Kernel {
    Kernel::new(
        "sphinx_norm",
        "482.sphinx3",
        "feature scaling x·g / v",
        "mul/div chains with permuted association over 4 f32 lanes",
        "f32",
        4096,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "sphinx_norm",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("x"),
            Param::noalias_ptr("v"),
            Param::new("g", Type::scalar(ST)),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let x = fb.func().param(1);
    let v = fb.func().param(2);
    let g = fb.func().param(3);
    let n = fb.func().param(4);
    fb.counted_loop(n, |fb, i| {
        let four = fb.const_i64(4);
        let base = fb.mul(i, four);
        let xs: Vec<_> = (0..4).map(|l| load_at(fb, x, ST, base, l)).collect();
        let vs: Vec<_> = (0..4).map(|l| load_at(fb, v, ST, base, l)).collect();
        // Lane 0: (x·g) / v
        let r0 = {
            let m = fb.mul(xs[0], g);
            fb.div(m, vs[0])
        };
        // Lane 1: x / (v / g)  — a nested right-hand-side division
        // (≡ x·g/v by the reciprocal inverse-element rule).
        let r1 = {
            let d = fb.div(vs[1], g);
            fb.div(xs[1], d)
        };
        // Lane 2: (g·x) / v
        let r2 = {
            let m = fb.mul(g, xs[2]);
            fb.div(m, vs[2])
        };
        // Lane 3: g · (x / v)  — a tree, not a left chain.
        let r3 = {
            let d = fb.div(xs[3], vs[3]);
            fb.mul(g, d)
        };
        for (l, r) in [r0, r1, r2, r3].into_iter().enumerate() {
            let p = elem_ptr(fb, out, ST, base, l as i64);
            fb.store(p, r);
        }
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    let len = 4 * iters + 4;
    vec![
        f32_zeros(len),
        f32_inputs(len, 0x91, 0.5, 2.0),
        f32_inputs(len, 0x92, 0.5, 2.0), // bounded away from zero
        ArgSpec::F32(1.5),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(out: &mut [f32], x: &[f32], v: &[f32], g: f32, n: usize) {
    for i in 0..n {
        for l in 0..4 {
            let j = 4 * i + l;
            out[j] = match l {
                0 => (x[j] * g) / v[j],
                1 => x[j] / (v[j] / g),
                2 => (g * x[j]) / v[j],
                _ => g * (x[j] / v[j]),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = sphinx_norm();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 5;
        let out = run_with_args(
            &f,
            &k.args(n),
            &CostModel::default(),
            &ExecOptions::default(),
        )
        .unwrap();
        let (ArrayData::F32(got), ArrayData::F32(x), ArrayData::F32(v)) =
            (&out.arrays[0], &out.arrays[1], &out.arrays[2])
        else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0f32; got.len()];
        reference(&mut want, x, v, 1.5, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }
}
