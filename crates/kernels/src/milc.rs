//! Kernel modeled on 433.milc's `su3` complex arithmetic (the paper's
//! best whole-benchmark result, §V-B: ≈2% over LSLP).
//!
//! Per iteration, one complex dot product of a 3-element SU(3) matrix row
//! with a 3-vector, over interleaved re/im `f64` arrays:
//!
//! ```text
//! out[2i]   = Σ_k a_re[k]·b_re[k] − a_im[k]·b_im[k]   (real part)
//! out[2i+1] = Σ_k a_re[k]·b_im[k] + a_im[k]·b_re[k]   (imaginary part)
//! ```
//!
//! The real-part lane mixes `+`/`−` with the all-`+` imaginary lane: the
//! exact shape that needs a Super-Node (and the x86 `addsub` family) to
//! vectorize.

use snslp_interp::ArgSpec;
use snslp_ir::{Function, FunctionBuilder, Param, ScalarType, Type};

use crate::kernel::Kernel;
use crate::util::{f64_inputs, f64_zeros, load_at};

const ST: ScalarType = ScalarType::F64;

/// Returns the kernel descriptor.
pub fn milc_su3() -> Kernel {
    Kernel::new(
        "milc_su3",
        "433.milc",
        "mult_su3_mat_vec (complex dot product row)",
        "interleaved complex multiply-accumulate, 3 terms per lane",
        "f64",
        2048,
        build,
        args,
    )
}

fn build() -> Function {
    let mut fb = FunctionBuilder::new(
        "milc_su3",
        vec![
            Param::noalias_ptr("out"),
            Param::noalias_ptr("a"),
            Param::noalias_ptr("b"),
            Param::new("n", Type::scalar(ScalarType::I64)),
        ],
        Type::Void,
    );
    fb.set_fast_math(true);
    let out = fb.func().param(0);
    let a = fb.func().param(1);
    let b = fb.func().param(2);
    let n = fb.func().param(3);
    fb.counted_loop(n, |fb, i| {
        let two = fb.const_i64(2);
        let six = fb.const_i64(6);
        let base2 = fb.mul(i, two);
        let base6 = fb.mul(i, six);
        // Three complex terms.
        let mut re_terms = Vec::new();
        let mut im_terms = Vec::new();
        for k in 0..3 {
            let ar = load_at(fb, a, ST, base6, 2 * k);
            let ai = load_at(fb, a, ST, base6, 2 * k + 1);
            let br = load_at(fb, b, ST, base6, 2 * k);
            let bi = load_at(fb, b, ST, base6, 2 * k + 1);
            re_terms.push(fb.mul(ar, br)); // +
            re_terms.push(fb.mul(ai, bi)); // −
            im_terms.push(fb.mul(ar, bi)); // +
            im_terms.push(fb.mul(ai, br)); // +
        }
        // re = ((((m0 − m1) + m2) − m3) + m4) − m5
        let mut re = fb.sub(re_terms[0], re_terms[1]);
        re = fb.add(re, re_terms[2]);
        re = fb.sub(re, re_terms[3]);
        re = fb.add(re, re_terms[4]);
        re = fb.sub(re, re_terms[5]);
        // im = ((p0 + p1) + (p2 + p3)) + (p4 + p5) — the imaginary part is
        // written as a balanced tree (pairwise-grouped complex terms),
        // so its shape differs from the real part's left-leaning chain.
        let s01 = fb.add(im_terms[0], im_terms[1]);
        let s23 = fb.add(im_terms[2], im_terms[3]);
        let s45 = fb.add(im_terms[4], im_terms[5]);
        let s = fb.add(s01, s23);
        let im = fb.add(s, s45);
        let pre = crate::util::elem_ptr(fb, out, ST, base2, 0);
        let pim = crate::util::elem_ptr(fb, out, ST, base2, 1);
        fb.store(pre, re);
        fb.store(pim, im);
    });
    fb.ret(None);
    fb.finish()
}

fn args(iters: usize) -> Vec<ArgSpec> {
    vec![
        f64_zeros(2 * iters + 2),
        f64_inputs(6 * iters + 6, 0xA1, -1.0, 1.0),
        f64_inputs(6 * iters + 6, 0xB1, -1.0, 1.0),
        ArgSpec::I64(iters as i64),
    ]
}

/// Reference implementation in plain Rust (used by tests).
pub fn reference(out: &mut [f64], a: &[f64], b: &[f64], n: usize) {
    for i in 0..n {
        let (mut re, mut im) = (0.0, 0.0);
        for k in 0..3 {
            let (ar, ai) = (a[6 * i + 2 * k], a[6 * i + 2 * k + 1]);
            let (br, bi) = (b[6 * i + 2 * k], b[6 * i + 2 * k + 1]);
            re += ar * br - ai * bi;
            im += ar * bi + ai * br;
        }
        out[2 * i] = re;
        out[2 * i + 1] = im;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ArrayData, ExecOptions};

    #[test]
    fn matches_reference() {
        let k = milc_su3();
        let f = k.build();
        snslp_ir::verify(&f).unwrap();
        let n = 5;
        let spec = k.args(n);
        let out = run_with_args(&f, &spec, &CostModel::default(), &ExecOptions::default()).unwrap();
        let (ArrayData::F64(got), ArrayData::F64(a), ArrayData::F64(b)) =
            (&out.arrays[0], &out.arrays[1], &out.arrays[2])
        else {
            panic!("wrong array types")
        };
        let mut want = vec![0.0; got.len()];
        reference(&mut want, a, b, n);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }
}
