//! Shared helpers for kernel construction and input generation.

use snslp_interp::ArgSpec;
use snslp_ir::{FunctionBuilder, InstId, ScalarType};

/// A tiny deterministic PRNG (Steele et al.'s SplitMix64), used for kernel
/// input generation so the crate needs no external `rand` dependency and
/// builds offline. Statistical quality is far beyond what test inputs
/// need, and every stream is fully determined by its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        self.range_f64(f64::from(lo), f64::from(hi)) as f32
    }

    /// Uniform `i64` in `[lo, hi)`. The small modulo bias is irrelevant
    /// for test-input generation.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// Uniform `i32` in `[lo, hi)`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(i64::from(lo), i64::from(hi)) as i32
    }
}

/// Loads `base[elem_index]` of scalar type `st` (element-indexed, not
/// byte-indexed).
pub fn load_elem(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    elem_index: i64,
) -> InstId {
    let p = fb.ptradd_const(base, elem_index * i64::from(st.size_bytes()));
    fb.load(st, p)
}

/// Stores `value` to `base[elem_index]`.
pub fn store_elem(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    elem_index: i64,
    value: InstId,
) -> InstId {
    let p = fb.ptradd_const(base, elem_index * i64::from(st.size_bytes()));
    fb.store(p, value)
}

/// Loads `base[dyn_base + elem_index]` where `dyn_base` is an `i64` value
/// counted in elements.
pub fn load_at(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    dyn_elem: InstId,
    elem_index: i64,
) -> InstId {
    let p = elem_ptr(fb, base, st, dyn_elem, elem_index);
    fb.load(st, p)
}

/// Stores to `base[dyn_base + elem_index]`.
pub fn store_at(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    dyn_elem: InstId,
    elem_index: i64,
    value: InstId,
) -> InstId {
    let p = elem_ptr(fb, base, st, dyn_elem, elem_index);
    fb.store(p, value)
}

/// `base + size*(dyn_elem) + size*elem_index` as a pointer value.
pub fn elem_ptr(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    dyn_elem: InstId,
    elem_index: i64,
) -> InstId {
    let size = fb.const_i64(i64::from(st.size_bytes()));
    let byte_off = fb.mul(dyn_elem, size);
    let p = fb.ptradd(base, byte_off);
    if elem_index == 0 {
        p
    } else {
        fb.ptradd_const(p, elem_index * i64::from(st.size_bytes()))
    }
}

/// Deterministic `f64` inputs in `[lo, hi)`.
pub fn f64_inputs(len: usize, seed: u64, lo: f64, hi: f64) -> ArgSpec {
    let mut rng = SplitMix64::new(seed);
    ArgSpec::F64Array((0..len).map(|_| rng.range_f64(lo, hi)).collect())
}

/// Deterministic `f32` inputs in `[lo, hi)`.
pub fn f32_inputs(len: usize, seed: u64, lo: f32, hi: f32) -> ArgSpec {
    let mut rng = SplitMix64::new(seed);
    ArgSpec::F32Array((0..len).map(|_| rng.range_f32(lo, hi)).collect())
}

/// Deterministic `i64` inputs in `[lo, hi)`.
pub fn i64_inputs(len: usize, seed: u64, lo: i64, hi: i64) -> ArgSpec {
    let mut rng = SplitMix64::new(seed);
    ArgSpec::I64Array((0..len).map(|_| rng.range_i64(lo, hi)).collect())
}

/// A zeroed `f64` output array.
pub fn f64_zeros(len: usize) -> ArgSpec {
    ArgSpec::F64Array(vec![0.0; len])
}

/// A zeroed `f32` output array.
pub fn f32_zeros(len: usize) -> ArgSpec {
    ArgSpec::F32Array(vec![0.0; len])
}

/// A zeroed `i64` output array.
pub fn i64_zeros(len: usize) -> ArgSpec {
    ArgSpec::I64Array(vec![0; len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic() {
        assert_eq!(f64_inputs(8, 1, 0.0, 1.0), f64_inputs(8, 1, 0.0, 1.0));
        assert_ne!(f64_inputs(8, 1, 0.0, 1.0), f64_inputs(8, 2, 0.0, 1.0));
        assert_eq!(i64_inputs(4, 9, -5, 5), i64_inputs(4, 9, -5, 5));
    }

    #[test]
    fn ranges_respected() {
        if let ArgSpec::F64Array(v) = f64_inputs(100, 3, 1.0, 2.0) {
            assert!(v.iter().all(|&x| (1.0..2.0).contains(&x)));
        } else {
            panic!("wrong variant");
        }
    }
}
