//! Shared helpers for kernel construction and input generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snslp_interp::ArgSpec;
use snslp_ir::{FunctionBuilder, InstId, ScalarType};

/// Loads `base[elem_index]` of scalar type `st` (element-indexed, not
/// byte-indexed).
pub fn load_elem(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    elem_index: i64,
) -> InstId {
    let p = fb.ptradd_const(base, elem_index * i64::from(st.size_bytes()));
    fb.load(st, p)
}

/// Stores `value` to `base[elem_index]`.
pub fn store_elem(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    elem_index: i64,
    value: InstId,
) -> InstId {
    let p = fb.ptradd_const(base, elem_index * i64::from(st.size_bytes()));
    fb.store(p, value)
}

/// Loads `base[dyn_base + elem_index]` where `dyn_base` is an `i64` value
/// counted in elements.
pub fn load_at(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    dyn_elem: InstId,
    elem_index: i64,
) -> InstId {
    let p = elem_ptr(fb, base, st, dyn_elem, elem_index);
    fb.load(st, p)
}

/// Stores to `base[dyn_base + elem_index]`.
pub fn store_at(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    dyn_elem: InstId,
    elem_index: i64,
    value: InstId,
) -> InstId {
    let p = elem_ptr(fb, base, st, dyn_elem, elem_index);
    fb.store(p, value)
}

/// `base + size*(dyn_elem) + size*elem_index` as a pointer value.
pub fn elem_ptr(
    fb: &mut FunctionBuilder,
    base: InstId,
    st: ScalarType,
    dyn_elem: InstId,
    elem_index: i64,
) -> InstId {
    let size = fb.const_i64(i64::from(st.size_bytes()));
    let byte_off = fb.mul(dyn_elem, size);
    let p = fb.ptradd(base, byte_off);
    if elem_index == 0 {
        p
    } else {
        fb.ptradd_const(p, elem_index * i64::from(st.size_bytes()))
    }
}

/// Deterministic `f64` inputs in `[lo, hi)`.
pub fn f64_inputs(len: usize, seed: u64, lo: f64, hi: f64) -> ArgSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    ArgSpec::F64Array((0..len).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Deterministic `f32` inputs in `[lo, hi)`.
pub fn f32_inputs(len: usize, seed: u64, lo: f32, hi: f32) -> ArgSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    ArgSpec::F32Array((0..len).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Deterministic `i64` inputs in `[lo, hi)`.
pub fn i64_inputs(len: usize, seed: u64, lo: i64, hi: i64) -> ArgSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    ArgSpec::I64Array((0..len).map(|_| rng.gen_range(lo..hi)).collect())
}

/// A zeroed `f64` output array.
pub fn f64_zeros(len: usize) -> ArgSpec {
    ArgSpec::F64Array(vec![0.0; len])
}

/// A zeroed `f32` output array.
pub fn f32_zeros(len: usize) -> ArgSpec {
    ArgSpec::F32Array(vec![0.0; len])
}

/// A zeroed `i64` output array.
pub fn i64_zeros(len: usize) -> ArgSpec {
    ArgSpec::I64Array(vec![0; len])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_deterministic() {
        assert_eq!(f64_inputs(8, 1, 0.0, 1.0), f64_inputs(8, 1, 0.0, 1.0));
        assert_ne!(f64_inputs(8, 1, 0.0, 1.0), f64_inputs(8, 2, 0.0, 1.0));
        assert_eq!(i64_inputs(4, 9, -5, 5), i64_inputs(4, 9, -5, 5));
    }

    #[test]
    fn ranges_respected() {
        if let ArgSpec::F64Array(v) = f64_inputs(100, 3, 1.0, 2.0) {
            assert!(v.iter().all(|&x| (1.0..2.0).contains(&x)));
        } else {
            panic!("wrong variant");
        }
    }
}
