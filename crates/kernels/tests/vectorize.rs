//! Every kernel of the suite, through every vectorizer mode, checked for
//! (a) semantic preservation against the scalar original and (b) the
//! activation pattern the paper reports (SN-SLP fires on all kernels;
//! LSLP/SLP cannot vectorize the inverse-operator chains).

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::check_equivalent;
use snslp_kernels::registry;

const TEST_ITERS: usize = 16;

#[test]
fn snslp_vectorizes_every_kernel() {
    for k in registry() {
        let mut f = k.build();
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
        assert!(
            report.vectorized_graphs() > 0,
            "{}: SN-SLP should activate (Table I)\n{f}",
            k.name
        );
        if k.name != "sphinx_dist" {
            assert!(
                report.aggregate_super_node_size() >= 2,
                "{}: a Super-Node of size ≥ 2 should form",
                k.name
            );
        }
    }
}

#[test]
fn snslp_preserves_semantics_on_every_kernel() {
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp).with_verification());
        check_equivalent(&orig, &f, &k.args(TEST_ITERS), &model)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn lslp_preserves_semantics_on_every_kernel() {
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        run_slp(&mut f, &SlpConfig::new(SlpMode::Lslp).with_verification());
        check_equivalent(&orig, &f, &k.args(TEST_ITERS), &model)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn slp_preserves_semantics_on_every_kernel() {
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        run_slp(&mut f, &SlpConfig::new(SlpMode::Slp).with_verification());
        check_equivalent(&orig, &f, &k.args(TEST_ITERS), &model)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn lslp_forms_chains_only_on_pure_commutative_kernels() {
    // Multi-Nodes cannot include subtractions/divisions: on every kernel
    // whose chains mix in an inverse op LSLP's aggregate size stays 0
    // (the Fig. 6 contrast). The one pure-add kernel is the exception —
    // there the Multi-Node fires.
    for k in registry() {
        let mut f = k.build();
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::Lslp).with_verification());
        if k.name == "namd_energy_sum" {
            assert!(
                report.aggregate_super_node_size() >= 2,
                "{}: LSLP should form a Multi-Node on pure adds",
                k.name
            );
        } else {
            assert_eq!(
                report.aggregate_super_node_size(),
                0,
                "{}: LSLP should not flatten inverse-op chains",
                k.name
            );
        }
    }
}

#[test]
fn snslp_wins_simulated_cycles_on_every_kernel() {
    let model = CostModel::default();
    for k in registry() {
        let orig = k.build();
        let mut f = k.build();
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        assert!(report.vectorized_graphs() > 0, "{}", k.name);
        let (scalar, vectorized) =
            check_equivalent(&orig, &f, &k.args(64), &model).unwrap_or_else(|e| {
                panic!("{}: {e}", k.name);
            });
        assert!(
            vectorized.exec.cycles < scalar.exec.cycles,
            "{}: vectorized {} !< scalar {}",
            k.name,
            vectorized.exec.cycles,
            scalar.exec.cycles
        );
    }
}
