//! Golden-file tests for the dynamic execution profiles.
//!
//! The simulated-cycle pipeline is fully deterministic, so the rendered
//! per-mode dynamic profile of a kernel is a stable artifact: any change
//! to the interpreter's accounting, the cost model's execution view, or
//! the vectorizer's output shape must show up as a byte-for-byte diff
//! here. Regenerate after an intentional change with:
//!
//! ```text
//! SNSLP_BLESS=1 cargo test -p snslp-bench --test dynstats_golden
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use snslp_bench::dynstats::DYN_LABELS;
use snslp_bench::{measure_kernel_modes, DYN_MODES};
use snslp_core::SlpMode;
use snslp_kernels::kernel_by_name;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.dynstats"))
}

/// Compares `actual` against the golden file (or rewrites it under
/// `SNSLP_BLESS=1`).
fn compare_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("SNSLP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with SNSLP_BLESS=1"));
    assert_eq!(
        actual, expected,
        "dynamic profile for `{name}` diverged from {path:?}; \
         rerun with SNSLP_BLESS=1 if intentional"
    );
}

/// Renders one kernel's per-mode dynamic profiles, few iterations so the
/// golden stays readable but the loop structure still dominates.
fn render_kernel(name: &str, iters: usize) -> String {
    let kernel = kernel_by_name(name).expect("registered kernel");
    let row = measure_kernel_modes(&kernel, iters, &DYN_MODES);
    let mut out = String::new();
    let _ = writeln!(out, "kernel {name} ({iters} iterations)");
    for (&mode, label) in DYN_MODES.iter().zip(DYN_LABELS) {
        let r = row.result(mode);
        let _ = writeln!(
            out,
            "-- {label}: {} cycles, {} vectorized graphs --",
            r.cycles,
            r.report
                .as_ref()
                .map(|rep| rep.vectorized_graphs())
                .unwrap_or(0)
        );
        out.push_str(&r.profile.render());
    }
    out
}

#[test]
fn motivating_kernel_profiles_are_stable() {
    // Fig. 1 kernel: only SN-SLP commits a rewrite. The golden shows SLP
    // and LSLP executing the exact scalar profile of O3 while SN-SLP runs
    // full-lane vectors with zero runtime gathers.
    compare_golden("motiv_leaf", &render_kernel("motiv_leaf", 4));
}

#[test]
fn povray_kernel_profiles_are_stable() {
    compare_golden("povray_shade", &render_kernel("povray_shade", 4));
}

#[test]
fn snslp_packs_full_lanes_where_slp_gathers() {
    let kernel = kernel_by_name("motiv_leaf").unwrap();
    let row = measure_kernel_modes(&kernel, 4, &DYN_MODES);

    // Vanilla SLP builds a graph for the seed but the operands only pack
    // as gather nodes, leaving the cost at threshold — so it keeps scalar
    // code and its *dynamic* profile shows no vector work at all.
    let slp = row.result(Some(SlpMode::Slp));
    let slp_report = slp.report.as_ref().unwrap();
    assert_eq!(slp_report.vectorized_graphs(), 0);
    assert!(
        slp_report.graphs.iter().any(|g| g.num_gather_nodes > 0),
        "vanilla SLP should have fallen back to gather nodes: {:?}",
        slp_report.graphs
    );
    assert_eq!(slp.profile.vector_ops, 0);
    assert_eq!(slp.profile.gathers, 0);
    assert_eq!(slp.profile, row.result(None).profile, "SLP == scalar O3");

    // SN-SLP commutes through the super-node instead: every vector op it
    // executes runs at the full native width and no runtime gathers or
    // element inserts remain.
    let sn = &row.result(Some(SlpMode::SnSlp)).profile;
    assert!(sn.vector_ops > 0);
    assert_eq!(sn.gathers, 0);
    assert_eq!(sn.inserts, 0);
    assert_eq!(kernel.elem, "i64", "64-bit elements -> 2 native lanes");
    let width = snslp_cost::TargetDesc::default().register_bits() / 64;
    assert_eq!(sn.mean_lanes(), Some(width as f64), "full-lane packing");
}
