//! Golden `snslp-hot/v1` artifacts for the two Table I flagship
//! kernels. Instrumented hotness is exact — per-block counters under a
//! deterministic activation count — so the full JSON document is a
//! byte-stable artifact: any change to lowering (PC ranges), the
//! counter placement, or the artifact schema must show up as a
//! byte-for-byte diff here. Regenerate after an intentional change
//! with:
//!
//! ```text
//! SNSLP_BLESS=1 cargo test -p snslp-bench --test hot_golden
//! ```
//!
//! Measuring requires executing native code, so on hosts without the
//! native backend the tests skip (the goldens are blessed on x86-64
//! Linux, where CI's `hot-smoke` job runs them).

use std::path::PathBuf;

use snslp_bench::dynstats::DYN_LABELS;
use snslp_bench::hot::{decision_map, measure_hot, HotDoc, HotEntry};
use snslp_bench::{compile, DYN_MODES};
use snslp_jit::HotMode;
use snslp_kernels::kernel_by_name;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.hot.json"))
}

/// Builds the kernel's instrumented hot document across all four
/// pipelines at a small pinned iteration count.
fn render_kernel(name: &str, iters: usize) -> String {
    let kernel = kernel_by_name(name).expect("registered kernel");
    let args = kernel.args(iters);
    let mut entries = Vec::new();
    for (&mode, label) in DYN_MODES.iter().zip(DYN_LABELS) {
        let mut f = kernel.build();
        let (report, _) = compile(&mut f, mode);
        let decisions = report.as_ref().map(decision_map).unwrap_or_default();
        match measure_hot(&f, &args, decisions) {
            Ok(Some((profile, dyn_insts))) => entries.push(HotEntry {
                kernel: kernel.name.to_string(),
                label: label.to_string(),
                dyn_insts,
                profile,
            }),
            Ok(None) => panic!("{name}/{label}: jit declined a flagship kernel"),
            Err(e) => panic!("{name}/{label}: hotness reconciliation failed: {e}"),
        }
    }
    HotDoc {
        mode: HotMode::Instrumented,
        entries,
    }
    .to_json()
}

fn compare_golden(name: &str, iters: usize) {
    if !snslp_jit::native_supported() {
        eprintln!("skipping {name} hot golden: native backend unavailable");
        return;
    }
    let actual = render_kernel(name, iters);
    // The golden must stay a valid, strictly-readable artifact.
    let doc = HotDoc::from_json(&actual)
        .unwrap_or_else(|e| panic!("{name}: rendered artifact fails its own reader: {e}"));
    assert_eq!(doc.entries.len(), DYN_MODES.len());

    let path = golden_path(name);
    if std::env::var_os("SNSLP_BLESS").is_some() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with SNSLP_BLESS=1"));
    assert_eq!(
        actual, expected,
        "hot artifact for `{name}` diverged from {path:?}; \
         rerun with SNSLP_BLESS=1 if intentional"
    );
}

#[test]
fn motivating_kernel_hot_artifact_is_stable() {
    compare_golden("motiv_leaf", 4);
}

#[test]
fn povray_kernel_hot_artifact_is_stable() {
    compare_golden("povray_shade", 4);
}
