//! Integration tests over the kernel corpus: the profiler's Chrome-trace
//! export must validate, show one track per parallel worker and cover the
//! pipeline with distinct span names; the stats pipeline must round-trip
//! and surface an injected regression.
//!
//! The Prof facet, track store and thread buffers are process-global, so
//! the profiling tests serialize on one lock and restore the facet mask.

use std::sync::Mutex;

use snslp_bench::stats::{collect_kernel_stats, diff, kernel_corpus_module, DiffGates};
use snslp_bench::tracecheck::validate_chrome_trace;
use snslp_core::{run_slp_module_with_threads, SlpConfig, SlpMode};
use snslp_trace::{prof, Facet};

static LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with profiling enabled on clean profiler state; restores the
/// facet mask and clears the store afterwards.
fn with_profiling<T>(f: impl FnOnce() -> T) -> T {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    prof::clear();
    let prev = snslp_trace::set_facets(snslp_trace::facets() | Facet::Prof as u32);
    let out = f();
    snslp_trace::set_facets(prev);
    prof::clear();
    out
}

#[test]
fn corpus_profile_validates_and_covers_the_pipeline() {
    let (json, names) = with_profiling(|| {
        let mut module = kernel_corpus_module();
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        run_slp_module_with_threads(&mut module, &cfg, 1);
        let profile = prof::take_profile();
        (profile.to_chrome_json(), profile.span_names().len())
    });

    let summary = validate_chrome_trace(&json).expect("corpus trace is well-formed");
    assert!(
        names >= 8,
        "expected >= 8 distinct span names across the corpus, got {names}: {:?}",
        summary.span_names
    );
    // Seeds through codegen all appear.
    for expected in [
        "pass.run_slp",
        "stage.cleanup",
        "seeds.collect_stores",
        "graph.build",
        "cost.evaluate",
        "codegen.emit",
    ] {
        assert!(
            summary.span_names.iter().any(|n| n == expected),
            "span `{expected}` missing from {:?}",
            summary.span_names
        );
    }
    assert!(
        summary
            .counter_names
            .iter()
            .any(|n| n == "lookahead_cache_hit_rate"),
        "counter track missing: {:?}",
        summary.counter_names
    );
}

#[test]
fn parallel_profile_has_one_track_per_worker() {
    const WORKERS: usize = 4;
    let json = with_profiling(|| {
        let mut module = kernel_corpus_module();
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        run_slp_module_with_threads(&mut module, &cfg, WORKERS);
        prof::take_profile().to_chrome_json()
    });

    let summary = validate_chrome_trace(&json).expect("parallel trace is well-formed");
    let mut labels: Vec<&str> = summary.tracks.values().map(String::as_str).collect();
    labels.sort_unstable();
    let expected: Vec<String> = std::iter::once("main".to_string())
        .chain((0..WORKERS).map(|w| format!("worker-{w}")))
        .collect();
    assert_eq!(labels, expected, "one named track per worker plus main");
}

#[test]
fn corpus_stats_round_trip_and_self_diff_is_clean() {
    let base = collect_kernel_stats(SlpMode::SnSlp);
    assert!(!base.functions.is_empty());

    let parsed = snslp_bench::stats::StatsReport::from_json(&base.to_json())
        .expect("stats JSON round-trips");
    assert_eq!(parsed.mode, base.mode);
    assert_eq!(parsed.functions.len(), base.functions.len());

    // A second run of the same corpus must diff clean: all deterministic
    // values identical, stage-time jitter below the gates.
    let again = collect_kernel_stats(SlpMode::SnSlp);
    let d = diff(&base, &again, DiffGates::default());
    assert!(
        !d.has_regressions(),
        "self-diff regressed:\n{}",
        d.render(10)
    );
}

#[test]
fn injected_regression_is_surfaced_and_ranked_first() {
    let base = collect_kernel_stats(SlpMode::SnSlp);
    let mut broken = base.clone();

    // Simulate disabling the look-ahead cache in one function: every hit
    // becomes a miss. Deterministic counters, so the diff must flag it.
    let victim = broken
        .functions
        .iter_mut()
        .find(|f| {
            f.counters
                .iter()
                .any(|(name, v)| name == "lookahead_cache_hits" && *v > 0)
        })
        .expect("some kernel exercises the look-ahead cache");
    let key = victim.key();
    let mut hits = 0;
    for (name, v) in &mut victim.counters {
        if name == "lookahead_cache_hits" {
            hits = *v;
            *v = 0;
        }
    }
    for (name, v) in &mut victim.counters {
        if name == "lookahead_cache_misses" {
            *v += hits;
        }
    }

    let d = diff(&base, &broken, DiffGates::default());
    assert!(d.has_regressions());
    let top = &d.counter_deltas[0];
    assert_eq!(top.key, key, "victim ranked first:\n{}", d.render(10));
    assert!(top.name.starts_with("lookahead_cache_"));
    let rendered = d.render(10);
    assert!(rendered.contains("lookahead_cache_hits"), "{rendered}");
}
