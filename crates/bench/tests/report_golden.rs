//! Golden-file and integration tests for the decision-attribution
//! report (`snslp-report/v1`) and its HTML explorer.
//!
//! Under the virtual clock every timestamp the report embeds (per-span
//! compile time, stage breakdowns) is a deterministic function of the
//! instrumentation sequence, so the rendered HTML is a byte-stable
//! artifact. Regenerate after an intentional change with:
//!
//! ```text
//! SNSLP_BLESS=1 cargo test -p snslp-bench --test report_golden
//! ```

use std::path::PathBuf;
use std::sync::Mutex;

use snslp_bench::attrib::{attrib_kernel, diff, render_html, AttribReport};
use snslp_bench::stats::mode_code;
use snslp_core::{SlpConfig, SlpMode};
use snslp_kernels::kernel_by_name;

/// The virtual clock, the trace facet mask, and the profiler store are
/// process-global; every test in this binary serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.report.html"))
}

fn compare_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("SNSLP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with SNSLP_BLESS=1"));
    assert_eq!(
        actual, expected,
        "HTML report for `{name}` diverged from {path:?}; \
         rerun with SNSLP_BLESS=1 if intentional"
    );
}

/// Collects one kernel's attribution report under the virtual clock.
/// Caller holds [`LOCK`]. The clock is reset on entry, so repeated calls
/// with the same inputs must produce byte-identical artifacts.
fn attrib_under_virtual_clock(names: &[&str], cfg: &SlpConfig) -> AttribReport {
    snslp_trace::clock::set_virtual(true);
    let report = AttribReport {
        mode: mode_code(cfg.mode).to_string(),
        functions: names
            .iter()
            .map(|name| attrib_kernel(&kernel_by_name(name).expect("registered kernel"), cfg))
            .collect(),
    };
    snslp_trace::clock::set_virtual(false);
    report
}

#[test]
fn motiv_leaf_html_is_stable() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SlpConfig::new(SlpMode::SnSlp);
    let report = attrib_under_virtual_clock(&["motiv_leaf"], &cfg);
    compare_golden("motiv_leaf", &render_html(&report));
}

#[test]
fn povray_shade_html_is_stable() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SlpConfig::new(SlpMode::SnSlp);
    let report = attrib_under_virtual_clock(&["povray_shade"], &cfg);
    compare_golden("povray_shade", &render_html(&report));
}

#[test]
fn html_is_byte_identical_across_repeated_runs() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = SlpConfig::new(SlpMode::SnSlp);
    let a = attrib_under_virtual_clock(&["motiv_leaf", "povray_shade"], &cfg);
    let b = attrib_under_virtual_clock(&["motiv_leaf", "povray_shade"], &cfg);
    assert_eq!(a, b, "attribution must be clock-deterministic");
    assert_eq!(
        render_html(&a),
        render_html(&b),
        "HTML explorer must be byte-stable under the virtual clock"
    );
    assert_eq!(a.to_json(), b.to_json());
    // And the JSON document round-trips through the strict reader.
    assert_eq!(AttribReport::from_json(&a.to_json()).unwrap(), a);
}

#[test]
fn injected_cost_nerf_is_root_caused_to_the_decision() {
    let _lock = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let kernels = ["povray_shade", "namd_force"];
    let base_cfg = SlpConfig::new(SlpMode::SnSlp);
    let base = attrib_under_virtual_clock(&kernels, &base_cfg);

    // A self-diff of identical runs must be clean — the tool's exit-0
    // contract in CI.
    assert!(diff(&base, &base).is_clean());

    // Inject a cost-model regression: demand savings of more than 10
    // units before committing. povray_shade's decision saves 20 and
    // survives; namd_force's saves only 7 and flips to a cost rejection.
    let mut nerfed_cfg = SlpConfig::new(SlpMode::SnSlp);
    nerfed_cfg.threshold = -10;
    let nerfed = attrib_under_virtual_clock(&kernels, &nerfed_cfg);

    let d = diff(&base, &nerfed);
    assert!(!d.is_clean());
    assert!(d.only_base.is_empty() && d.only_new.is_empty());
    // Root cause, ranked first: the exact kernel, function, and decision
    // the nerf flipped, with the achieved cycle regression attached.
    let top = &d.changed[0];
    assert_eq!(top.unit, "namd_force");
    assert_eq!(top.function, "namd_force");
    assert!(
        top.id.starts_with("@namd_force/"),
        "decision anchor names the function: {}",
        top.id
    );
    assert_eq!(top.base_action, "vectorized");
    assert_eq!(top.new_action, "missed");
    assert!(
        top.cycle_impact > 0,
        "losing the vectorization must cost cycles, got {}",
        top.cycle_impact
    );
    // povray_shade survived the nerf, so nothing else is reported.
    assert!(
        d.changed.iter().all(|c| c.unit == "namd_force"),
        "unaffected kernels must not appear: {:?}",
        d.changed
    );
    // The rendered root-cause names the decision on the first ranked line.
    let text = d.render(5);
    let first = text
        .lines()
        .find(|l| l.trim_start().starts_with("1."))
        .expect("ranked line");
    assert!(first.contains("namd_force/@namd_force"), "{text}");
    assert!(first.contains(&top.id), "{text}");
}
