//! Machine-readable bench reports: a tiny JSON value type (emitter *and*
//! parser, so the workspace stays free of external crates), plus the
//! schema for the compile-time benchmark trajectory file
//! `BENCH_compile_time.json` checked in at the repository root.
//!
//! The checked-in file is the baseline the CI `bench-smoke` job compares
//! fresh measurements against (see `src/bin/bench_check.rs`): a kernel
//! whose fresh SN-SLP mean exceeds `REGRESSION_FACTOR` times the
//! baseline mean fails the job.

use std::fmt::Write as _;

/// The schema tag every compile-time report carries; bump on breaking
/// format changes.
pub const COMPILE_TIME_SCHEMA: &str = "snslp-bench-compile-time/v1";

/// A fresh per-kernel mean may exceed the checked-in baseline by up to
/// this factor before `bench_check` fails. Generous on purpose: CI
/// machines are noisy, and the job exists to catch algorithmic
/// regressions (quadratic blowups), not jitter.
pub const REGRESSION_FACTOR: f64 = 2.0;

// ---------------------------------------------------------------------
// Minimal JSON value: just enough for the bench reports.
// ---------------------------------------------------------------------

/// A JSON value. Numbers are `f64` (the reports only carry timings and
/// rates); object keys keep insertion order so emitted files are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (so the checked-in file diffs cleanly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values print without a fraction; everything
                // else gets enough digits to round-trip timings.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry the byte offset they were
    /// detected at.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-sync to char boundary for multi-byte UTF-8.
                let s = &bytes[*pos - 1..];
                let ch_len = utf8_len(b);
                let chunk =
                    std::str::from_utf8(&s[..ch_len.min(s.len())]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
                *pos += ch_len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------
// Compile-time report schema.
// ---------------------------------------------------------------------

/// Statistics of a timing series, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Mean over the timed runs.
    pub mean_us: f64,
    /// Sample standard deviation.
    pub sd_us: f64,
    /// Fastest run. The regression gate compares minima: the minimum is
    /// a stable lower bound on the true cost (scheduler blips only ever
    /// inflate samples), so it stays meaningful on noisy CI hosts where
    /// the mean of a 40µs kernel can swing well past 2x.
    pub min_us: f64,
}

/// One kernel's row of the compile-time report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Kernel name (registry name).
    pub name: String,
    /// One timing per pipeline: `("o3" | "slp" | "lslp" | "snslp", t)`.
    pub modes: Vec<(String, Timing)>,
    /// Look-ahead score cache hit rate under SN-SLP
    /// (`hits / (hits + misses)`), `None` when no scores were requested.
    pub cache_hit_rate: Option<f64>,
}

impl KernelTiming {
    /// Timing for a pipeline label.
    pub fn mode(&self, label: &str) -> Option<Timing> {
        self.modes.iter().find(|(l, _)| l == label).map(|&(_, t)| t)
    }
}

/// The whole compile-time report: the benchmark trajectory point that is
/// checked in and that CI re-measures against.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileTimeReport {
    /// Number of timed runs behind every mean.
    pub timed_runs: usize,
    /// One row per kernel, registry order.
    pub kernels: Vec<KernelTiming>,
}

impl CompileTimeReport {
    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let modes = k
                    .modes
                    .iter()
                    .map(|(label, t)| {
                        (
                            label.clone(),
                            Json::Obj(vec![
                                ("mean_us".to_string(), Json::Num(round3(t.mean_us))),
                                ("sd_us".to_string(), Json::Num(round3(t.sd_us))),
                                ("min_us".to_string(), Json::Num(round3(t.min_us))),
                            ]),
                        )
                    })
                    .collect();
                let mut row = vec![
                    ("name".to_string(), Json::Str(k.name.clone())),
                    ("modes".to_string(), Json::Obj(modes)),
                ];
                row.push((
                    "cache_hit_rate".to_string(),
                    match k.cache_hit_rate {
                        Some(r) => Json::Num(round3(r)),
                        None => Json::Null,
                    },
                ));
                Json::Obj(row)
            })
            .collect();
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(COMPILE_TIME_SCHEMA.to_string()),
            ),
            ("timed_runs".to_string(), Json::Num(self.timed_runs as f64)),
            ("kernels".to_string(), Json::Arr(kernels)),
        ])
        .render()
    }

    /// Parses and validates a report document.
    pub fn from_json(text: &str) -> Result<CompileTimeReport, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing schema tag")?;
        if schema != COMPILE_TIME_SCHEMA {
            return Err(format!(
                "schema mismatch: {schema:?} != {COMPILE_TIME_SCHEMA:?}"
            ));
        }
        let timed_runs = doc
            .get("timed_runs")
            .and_then(Json::as_num)
            .ok_or("missing timed_runs")? as usize;
        let mut kernels = Vec::new();
        for row in doc
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing kernels")?
        {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or("kernel row missing name")?
                .to_string();
            let Some(Json::Obj(mode_members)) = row.get("modes") else {
                return Err(format!("kernel {name}: missing modes object"));
            };
            let mut modes = Vec::new();
            for (label, t) in mode_members {
                let mean_us = t
                    .get("mean_us")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("kernel {name}/{label}: missing mean_us"))?;
                let sd_us = t
                    .get("sd_us")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("kernel {name}/{label}: missing sd_us"))?;
                let min_us = t
                    .get("min_us")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("kernel {name}/{label}: missing min_us"))?;
                if !(mean_us.is_finite() && mean_us > 0.0 && sd_us.is_finite() && sd_us >= 0.0) {
                    return Err(format!("kernel {name}/{label}: implausible timing"));
                }
                if !(min_us.is_finite() && min_us > 0.0 && min_us <= mean_us + 1e-9) {
                    return Err(format!("kernel {name}/{label}: implausible min_us"));
                }
                modes.push((
                    label.clone(),
                    Timing {
                        mean_us,
                        sd_us,
                        min_us,
                    },
                ));
            }
            let cache_hit_rate = match row.get("cache_hit_rate") {
                Some(Json::Null) | None => None,
                Some(v) => {
                    let r = v
                        .as_num()
                        .ok_or_else(|| format!("kernel {name}: bad cache_hit_rate"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("kernel {name}: cache_hit_rate {r} out of range"));
                    }
                    Some(r)
                }
            };
            kernels.push(KernelTiming {
                name,
                modes,
                cache_hit_rate,
            });
        }
        if kernels.is_empty() {
            return Err("report has no kernels".to_string());
        }
        Ok(CompileTimeReport {
            timed_runs,
            kernels,
        })
    }
}

pub(crate) fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileTimeReport {
        CompileTimeReport {
            timed_runs: 20,
            kernels: vec![KernelTiming {
                name: "milc_su3".to_string(),
                modes: vec![
                    (
                        "o3".to_string(),
                        Timing {
                            mean_us: 91.25,
                            sd_us: 2.0,
                            min_us: 88.5,
                        },
                    ),
                    (
                        "snslp".to_string(),
                        Timing {
                            mean_us: 120.5,
                            sd_us: 4.125,
                            min_us: 112.0,
                        },
                    ),
                ],
                cache_hit_rate: Some(0.75),
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let r = sample();
        let text = r.to_json();
        let back = CompileTimeReport::from_json(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(CompileTimeReport::from_json("{").is_err());
        assert!(CompileTimeReport::from_json("{}").is_err());
        assert!(CompileTimeReport::from_json(r#"{"schema": "other/v9"}"#).is_err());
        // Negative timing is implausible.
        let bad = sample().to_json().replace("91.25", "-1.0");
        assert!(CompileTimeReport::from_json(&bad).is_err());
    }

    #[test]
    fn json_values_round_trip() {
        let text =
            r#"{"a": [1, 2.5, -3e2], "b": "x\"\né", "c": null, "d": [true, false], "e": {}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\"\né"));
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1,]").is_err());
    }
}
