//! Machine-readable bench reports: the schema for the compile-time
//! benchmark trajectory file `BENCH_compile_time.json` checked in at the
//! repository root. The JSON value type lives in [`crate::json`] and is
//! re-exported here for compatibility.
//!
//! The checked-in file is the baseline the CI `bench-smoke` job compares
//! fresh measurements against (see `src/bin/bench_check.rs`): a kernel
//! whose fresh SN-SLP mean exceeds `REGRESSION_FACTOR` times the
//! baseline mean fails the job.

pub use crate::json::Json;
use crate::json::{check_schema, round3};

/// The schema tag every compile-time report carries; bump on breaking
/// format changes.
pub const COMPILE_TIME_SCHEMA: &str = "snslp-bench-compile-time/v1";

/// A fresh per-kernel mean may exceed the checked-in baseline by up to
/// this factor before `bench_check` fails. Generous on purpose: CI
/// machines are noisy, and the job exists to catch algorithmic
/// regressions (quadratic blowups), not jitter.
pub const REGRESSION_FACTOR: f64 = 2.0;

// ---------------------------------------------------------------------
// Compile-time report schema.
// ---------------------------------------------------------------------

/// Statistics of a timing series, microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Mean over the timed runs.
    pub mean_us: f64,
    /// Sample standard deviation.
    pub sd_us: f64,
    /// Fastest run. The regression gate compares minima: the minimum is
    /// a stable lower bound on the true cost (scheduler blips only ever
    /// inflate samples), so it stays meaningful on noisy CI hosts where
    /// the mean of a 40µs kernel can swing well past 2x.
    pub min_us: f64,
}

/// One kernel's row of the compile-time report.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Kernel name (registry name).
    pub name: String,
    /// One timing per pipeline: `("o3" | "slp" | "lslp" | "snslp", t)`.
    pub modes: Vec<(String, Timing)>,
    /// Look-ahead score cache hit rate under SN-SLP
    /// (`hits / (hits + misses)`), `None` when no scores were requested.
    pub cache_hit_rate: Option<f64>,
}

impl KernelTiming {
    /// Timing for a pipeline label.
    pub fn mode(&self, label: &str) -> Option<Timing> {
        self.modes.iter().find(|(l, _)| l == label).map(|&(_, t)| t)
    }
}

/// The whole compile-time report: the benchmark trajectory point that is
/// checked in and that CI re-measures against.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileTimeReport {
    /// Number of timed runs behind every mean.
    pub timed_runs: usize,
    /// One row per kernel, registry order.
    pub kernels: Vec<KernelTiming>,
}

impl CompileTimeReport {
    /// Renders the report as pretty JSON.
    pub fn to_json(&self) -> String {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let modes = k
                    .modes
                    .iter()
                    .map(|(label, t)| {
                        (
                            label.clone(),
                            Json::Obj(vec![
                                ("mean_us".to_string(), Json::Num(round3(t.mean_us))),
                                ("sd_us".to_string(), Json::Num(round3(t.sd_us))),
                                ("min_us".to_string(), Json::Num(round3(t.min_us))),
                            ]),
                        )
                    })
                    .collect();
                let mut row = vec![
                    ("name".to_string(), Json::Str(k.name.clone())),
                    ("modes".to_string(), Json::Obj(modes)),
                ];
                row.push((
                    "cache_hit_rate".to_string(),
                    match k.cache_hit_rate {
                        Some(r) => Json::Num(round3(r)),
                        None => Json::Null,
                    },
                ));
                Json::Obj(row)
            })
            .collect();
        Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str(COMPILE_TIME_SCHEMA.to_string()),
            ),
            ("timed_runs".to_string(), Json::Num(self.timed_runs as f64)),
            ("kernels".to_string(), Json::Arr(kernels)),
        ])
        .render()
    }

    /// Parses and validates a report document.
    pub fn from_json(text: &str) -> Result<CompileTimeReport, String> {
        let doc = Json::parse(text)?;
        check_schema(&doc, COMPILE_TIME_SCHEMA)?;
        let timed_runs = doc
            .get("timed_runs")
            .and_then(Json::as_num)
            .ok_or("missing timed_runs")? as usize;
        let mut kernels = Vec::new();
        for row in doc
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing kernels")?
        {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or("kernel row missing name")?
                .to_string();
            let Some(Json::Obj(mode_members)) = row.get("modes") else {
                return Err(format!("kernel {name}: missing modes object"));
            };
            let mut modes = Vec::new();
            for (label, t) in mode_members {
                let mean_us = t
                    .get("mean_us")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("kernel {name}/{label}: missing mean_us"))?;
                let sd_us = t
                    .get("sd_us")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("kernel {name}/{label}: missing sd_us"))?;
                let min_us = t
                    .get("min_us")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("kernel {name}/{label}: missing min_us"))?;
                if !(mean_us.is_finite() && mean_us > 0.0 && sd_us.is_finite() && sd_us >= 0.0) {
                    return Err(format!("kernel {name}/{label}: implausible timing"));
                }
                if !(min_us.is_finite() && min_us > 0.0 && min_us <= mean_us + 1e-9) {
                    return Err(format!("kernel {name}/{label}: implausible min_us"));
                }
                modes.push((
                    label.clone(),
                    Timing {
                        mean_us,
                        sd_us,
                        min_us,
                    },
                ));
            }
            let cache_hit_rate = match row.get("cache_hit_rate") {
                Some(Json::Null) | None => None,
                Some(v) => {
                    let r = v
                        .as_num()
                        .ok_or_else(|| format!("kernel {name}: bad cache_hit_rate"))?;
                    if !(0.0..=1.0).contains(&r) {
                        return Err(format!("kernel {name}: cache_hit_rate {r} out of range"));
                    }
                    Some(r)
                }
            };
            kernels.push(KernelTiming {
                name,
                modes,
                cache_hit_rate,
            });
        }
        if kernels.is_empty() {
            return Err("report has no kernels".to_string());
        }
        Ok(CompileTimeReport {
            timed_runs,
            kernels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CompileTimeReport {
        CompileTimeReport {
            timed_runs: 20,
            kernels: vec![KernelTiming {
                name: "milc_su3".to_string(),
                modes: vec![
                    (
                        "o3".to_string(),
                        Timing {
                            mean_us: 91.25,
                            sd_us: 2.0,
                            min_us: 88.5,
                        },
                    ),
                    (
                        "snslp".to_string(),
                        Timing {
                            mean_us: 120.5,
                            sd_us: 4.125,
                            min_us: 112.0,
                        },
                    ),
                ],
                cache_hit_rate: Some(0.75),
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let r = sample();
        let text = r.to_json();
        let back = CompileTimeReport::from_json(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(CompileTimeReport::from_json("{").is_err());
        assert!(CompileTimeReport::from_json("{}").is_err());
        assert!(CompileTimeReport::from_json(r#"{"schema": "other/v9"}"#).is_err());
        // Negative timing is implausible.
        let bad = sample().to_json().replace("91.25", "-1.0");
        assert!(CompileTimeReport::from_json(&bad).is_err());
    }
}
