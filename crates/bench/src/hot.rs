//! The `snslp-hot/v1` native hotness artifact: exact (instrumented) or
//! sampled per-instruction execution data, serialized with the same
//! hand-rolled JSON as every other bench artifact and re-validated by a
//! strict reader.
//!
//! [`collect_hot`] drives every registry kernel through all four
//! pipelines, compiles each variant with instrumented-hotness lowering,
//! runs it natively, and cross-checks the exact reconciliation invariant
//! (native per-class execution counts == interpreter [`DynProfile`]
//! totals) before a row may enter the artifact. [`HotDoc::from_json`]
//! re-verifies everything a reader can check without re-running:
//! PC-range partition, per-class sums, count/block-counter consistency,
//! and the sample/wall cross-invariants.

use std::collections::BTreeMap;

use snslp_core::FunctionReport;
use snslp_cost::CostModel;
use snslp_interp::{run_with_args, ArgSpec, ExecOptions, OpClass};
use snslp_ir::Function;
use snslp_jit::{HotMode, HotProfile, InstHot, JitError, LowerOptions, StubHot};
use snslp_trace::DecisionId;

use crate::json::{check_schema, Json};
use crate::{compile, DYN_MODES};

/// The schema tag every hot artifact carries; bump on breaking changes.
pub const HOT_SCHEMA: &str = "snslp-hot/v1";

/// Joins a pass report back to the instruction arena: for every graph the
/// pass committed, each emitted instruction id maps to the decision that
/// created it. This is the table the lowering consumes to stamp
/// [`DecisionId`]s onto native PC ranges.
pub fn decision_map(report: &FunctionReport) -> BTreeMap<u32, DecisionId> {
    let mut map = BTreeMap::new();
    for g in &report.graphs {
        if !g.vectorized {
            continue;
        }
        for &inst in &g.emitted {
            map.insert(inst, g.decision.clone());
        }
    }
    map
}

/// Compiles `f` with instrumented-hotness lowering, runs it natively
/// once on `args`, and builds the exact [`HotProfile`] — no interpreter
/// involved. Returns `None` when the JIT declines the function, the
/// host has no native backend, or the run traps (instrumented counts
/// only reconcile on status-OK activations).
pub fn native_hot(
    f: &Function,
    args: &[ArgSpec],
    decisions: BTreeMap<u32, DecisionId>,
) -> Option<HotProfile> {
    native_hot_timed(f, args, decisions).map(|(prof, _)| prof)
}

/// [`native_hot`] plus a wall-clock measurement of the instrumented
/// invocation, taken with the trace clock so the number is deterministic
/// under the virtual clock (one tick) and a genuine measurement
/// otherwise. The report explorer uses the pair to attribute measured
/// nanoseconds onto individual vectorization decisions.
pub fn native_hot_timed(
    f: &Function,
    args: &[ArgSpec],
    decisions: BTreeMap<u32, DecisionId>,
) -> Option<(HotProfile, u64)> {
    let opts = LowerOptions {
        instrument: true,
        decisions,
    };
    let compiled = match snslp_jit::compile_with(f, &opts) {
        Ok(c) => c,
        Err(JitError::Unsupported { .. }) | Err(JitError::Platform(_)) => return None,
    };
    let native = compiled.finalize().ok()?;
    let (mut mem, values) = snslp_jit::materialize_args(args);
    let start = snslp_trace::clock::now_ns();
    let run = native
        .invoke(&values, &mut mem, &ExecOptions::default())
        .ok()?;
    let wall_ns = snslp_trace::clock::now_ns().saturating_sub(start);
    let counts = run.block_counts.as_deref()?;
    Some((
        HotProfile::from_counts(f.name(), native.pc_map(), counts),
        wall_ns,
    ))
}

/// [`native_hot`] plus the exact reconciliation check: runs the
/// interpreter on the same inputs and enforces that per-class native
/// execution counts equal the [`DynProfile`](snslp_interp::DynProfile)
/// totals. Returns the profile together with the interpreter's
/// `dyn_insts`.
///
/// Returns `Ok(None)` when the row is legitimately unmeasurable (JIT
/// fallback, no native backend, trap).
///
/// # Errors
///
/// A reconciliation failure (native and interpreted per-class counts
/// disagree) is a lowering bug, never a skip.
pub fn measure_hot(
    f: &Function,
    args: &[ArgSpec],
    decisions: BTreeMap<u32, DecisionId>,
) -> Result<Option<(HotProfile, u64)>, String> {
    let Some(prof) = native_hot(f, args, decisions) else {
        return Ok(None);
    };
    let model = CostModel::default();
    let interp = run_with_args(f, args, &model, &ExecOptions::default())
        .map_err(|e| format!("interpreter failed where the instrumented jit ran: {e}"))?;
    prof.reconcile(&interp.exec.profile).map_err(|e| {
        format!(
            "@{}: native hotness does not reconcile with DynProfile: {e}",
            f.name()
        )
    })?;
    Ok(Some((prof, interp.exec.dyn_insts)))
}

/// Compiles `f` plainly (no instrumentation), arms the SIGPROF
/// wall-clock sampler, and invokes the native code in a loop for at
/// least `duration_ms`, resolving every sampled RIP through the PC→IR
/// map into a sampled [`HotProfile`]. Returns `None` on hosts without
/// the sampler or the native backend, when the JIT declines `f`, when
/// another sampler is already armed, or when a run traps.
pub fn sampled_hot(
    f: &Function,
    args: &[ArgSpec],
    decisions: BTreeMap<u32, DecisionId>,
    period_us: u64,
    duration_ms: u64,
) -> Option<HotProfile> {
    if !snslp_jit::sampler::supported() {
        return None;
    }
    let opts = LowerOptions {
        instrument: false,
        decisions,
    };
    let compiled = match snslp_jit::compile_with(f, &opts) {
        Ok(c) => c,
        Err(JitError::Unsupported { .. }) | Err(JitError::Platform(_)) => return None,
    };
    let native = compiled.finalize().ok()?;
    let sampler = snslp_jit::sampler::Sampler::start(period_us).ok()?;
    let exec = ExecOptions::default();
    let start = std::time::Instant::now();
    loop {
        let (mut mem, values) = snslp_jit::materialize_args(args);
        if native.invoke(&values, &mut mem, &exec).is_err() {
            sampler.stop();
            return None;
        }
        if start.elapsed().as_millis() as u64 >= duration_ms {
            break;
        }
    }
    let wall_ns = start.elapsed().as_nanos() as u64;
    let rips = sampler.stop();
    let base = native.code_base();
    let len = native.code_len() as u64;
    let offsets: Vec<u32> = rips
        .iter()
        .filter(|&&rip| rip >= base && rip < base + len)
        .map(|&rip| (rip - base) as u32)
        .collect();
    Some(HotProfile::from_samples(
        f.name(),
        native.pc_map(),
        &offsets,
        wall_ns,
        period_us * 1_000,
    ))
}

/// Native bytes *executed* per opcode class: each instruction's range
/// size weighted by its execution count. Unlike the per-class op counts
/// (which reconcile with the interpreter exactly), this is information
/// only the native backend has — the footprint each class actually
/// occupies in the instruction stream — and is what apportions measured
/// wall time onto classes for the dynstats `class_ns` axis.
pub fn executed_bytes_per_class(prof: &HotProfile) -> [u64; OpClass::ALL.len()] {
    let mut bytes = [0u64; OpClass::ALL.len()];
    for i in &prof.insts {
        bytes[i.class.index()] += u64::from(i.pc_end - i.pc_start) * i.count;
    }
    bytes
}

/// Splits a measured wall time over opcode classes proportionally to
/// [`executed_bytes_per_class`]. Zero everywhere when the profile
/// executed nothing.
pub fn class_ns_split(prof: &HotProfile, wall_ns: u64) -> [u64; OpClass::ALL.len()] {
    let bytes = executed_bytes_per_class(prof);
    let total: u64 = bytes.iter().sum();
    let mut ns = [0u64; OpClass::ALL.len()];
    if total > 0 {
        for (slot, b) in ns.iter_mut().zip(bytes) {
            *slot = (wall_ns as u128 * b as u128 / total as u128) as u64;
        }
    }
    ns
}

/// Aggregates an instrumented profile per vectorization decision:
/// rendered [`DecisionId`] → (exact native execution count of the
/// instructions that decision emitted, measured nanoseconds attributed
/// to them). Nanoseconds are the function's wall time apportioned by
/// executed native bytes — the same rule as [`class_ns_split`], so a
/// decision's share never exceeds `wall_ns` and scalar code keeps the
/// remainder.
pub fn decision_hot(prof: &HotProfile, wall_ns: u64) -> BTreeMap<String, (u64, u64)> {
    let total: u64 = prof
        .insts
        .iter()
        .map(|i| u64::from(i.pc_end - i.pc_start) * i.count)
        .sum();
    let mut agg: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for i in &prof.insts {
        let Some(d) = &i.decision else { continue };
        let slot = agg.entry(d.render()).or_default();
        slot.0 += i.count;
        slot.1 += u64::from(i.pc_end - i.pc_start) * i.count;
    }
    for (_, slot) in agg.iter_mut() {
        slot.1 = if total > 0 {
            (wall_ns as u128 * slot.1 as u128 / total as u128) as u64
        } else {
            0
        };
    }
    agg
}

/// One measured function (one kernel under one pipeline) in the artifact.
#[derive(Debug, Clone)]
pub struct HotEntry {
    /// Kernel (or source) name the row came from.
    pub kernel: String,
    /// Pipeline label: `o3`, `slp`, `lslp`, or `snslp`.
    pub label: String,
    /// The interpreter's total dynamic instructions for the same run —
    /// the reconciliation partner of the profile's `class_ops`.
    pub dyn_insts: u64,
    /// The native hotness profile.
    pub profile: HotProfile,
}

/// A whole `snslp-hot/v1` document.
#[derive(Debug, Clone)]
pub struct HotDoc {
    /// Acquisition mode of every entry.
    pub mode: HotMode,
    /// One row per measured function.
    pub entries: Vec<HotEntry>,
}

/// Measures every registry kernel under all four pipelines in
/// instrumented mode. Rows the JIT declines are skipped (and reported in
/// the second return value); a reconciliation failure panics — it means
/// the lowering miscounted.
///
/// # Panics
///
/// Panics if the reconciliation invariant fails on any covered row.
pub fn collect_hot() -> (HotDoc, Vec<String>) {
    let mut entries = Vec::new();
    let mut skipped = Vec::new();
    for kernel in snslp_kernels::registry() {
        let iters = kernel.default_iters.min(32);
        let args = kernel.args(iters);
        for (&mode, label) in DYN_MODES.iter().zip(crate::dynstats::DYN_LABELS) {
            let label = label.to_string();
            let mut f = kernel.build();
            let (report, _) = compile(&mut f, mode);
            let decisions = report.as_ref().map(decision_map).unwrap_or_default();
            match measure_hot(&f, &args, decisions) {
                Ok(Some((profile, dyn_insts))) => entries.push(HotEntry {
                    kernel: kernel.name.to_string(),
                    label,
                    dyn_insts,
                    profile,
                }),
                Ok(None) => skipped.push(format!("{}/{label}", kernel.name)),
                Err(e) => panic!(
                    "hotness reconciliation failed on {}/{label}: {e}",
                    kernel.name
                ),
            }
        }
    }
    (
        HotDoc {
            mode: HotMode::Instrumented,
            entries,
        },
        skipped,
    )
}

fn class_obj(classes: &[u64; OpClass::ALL.len()]) -> Json {
    Json::Obj(
        OpClass::ALL
            .iter()
            .map(|&c| (c.name().to_string(), Json::Num(classes[c.index()] as f64)))
            .collect(),
    )
}

fn inst_to_json(i: &InstHot) -> Json {
    Json::Obj(vec![
        ("inst".to_string(), Json::Num(f64::from(i.inst))),
        ("block".to_string(), Json::Num(f64::from(i.block))),
        ("class".to_string(), Json::Str(i.class.name().to_string())),
        ("pc_start".to_string(), Json::Num(f64::from(i.pc_start))),
        ("pc_end".to_string(), Json::Num(f64::from(i.pc_end))),
        ("count".to_string(), Json::Num(i.count as f64)),
        ("samples".to_string(), Json::Num(i.samples as f64)),
        ("ns".to_string(), Json::Num(i.ns as f64)),
        (
            "decision".to_string(),
            match &i.decision {
                Some(d) => Json::Str(d.render()),
                None => Json::Null,
            },
        ),
    ])
}

fn stub_to_json(s: &StubHot) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(s.name.clone())),
        ("pc_start".to_string(), Json::Num(f64::from(s.pc_start))),
        ("pc_end".to_string(), Json::Num(f64::from(s.pc_end))),
        ("samples".to_string(), Json::Num(s.samples as f64)),
    ])
}

impl HotDoc {
    /// Renders the document as `snslp-hot/v1` JSON (deterministic for
    /// instrumented mode: counts only, no wall-clock values).
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let p = &e.profile;
                Json::Obj(vec![
                    ("kernel".to_string(), Json::Str(e.kernel.clone())),
                    ("label".to_string(), Json::Str(e.label.clone())),
                    ("function".to_string(), Json::Str(p.function.clone())),
                    ("code_bytes".to_string(), Json::Num(p.code_bytes as f64)),
                    ("dyn_insts".to_string(), Json::Num(e.dyn_insts as f64)),
                    (
                        "native_wall_ns".to_string(),
                        Json::Num(p.native_wall_ns as f64),
                    ),
                    (
                        "sample_period_ns".to_string(),
                        Json::Num(p.sample_period_ns as f64),
                    ),
                    (
                        "samples_total".to_string(),
                        Json::Num(p.samples_total as f64),
                    ),
                    (
                        "block_counts".to_string(),
                        Json::Arr(
                            p.block_counts
                                .iter()
                                .map(|&c| Json::Num(c as f64))
                                .collect(),
                        ),
                    ),
                    ("class_ops".to_string(), class_obj(&p.class_ops)),
                    (
                        "insts".to_string(),
                        Json::Arr(p.insts.iter().map(inst_to_json).collect()),
                    ),
                    (
                        "stubs".to_string(),
                        Json::Arr(p.stubs.iter().map(stub_to_json).collect()),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(HOT_SCHEMA.to_string())),
            ("mode".to_string(), Json::Str(self.mode.name().to_string())),
            ("entries".to_string(), Json::Arr(entries)),
        ])
        .render()
    }

    /// Parses and strictly re-validates a hot artifact. Beyond shape,
    /// the reader re-checks every invariant it can without re-running:
    ///
    /// * instruction and stub PC ranges partition `[0, code_bytes)`
    ///   exactly (no gap, no overlap, monotone);
    /// * instrumented entries: every instruction's `count` equals its
    ///   block's counter, the per-class op sums match `class_ops`, and
    ///   the class total equals the interpreter's `dyn_insts`;
    /// * sampled entries: `samples_total` equals the sum of all
    ///   instruction and stub samples, and attributed nanoseconds never
    ///   exceed `native_wall_ns` (which must be nonzero whenever any
    ///   sample landed);
    /// * decision labels parse as `@fn/block/sN#iM`.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn from_json(text: &str) -> Result<HotDoc, String> {
        let doc = Json::parse(text)?;
        check_schema(&doc, HOT_SCHEMA)?;
        let mode = match doc.get("mode").and_then(Json::as_str) {
            Some("instrumented") => HotMode::Instrumented,
            Some("sampled") => HotMode::Sampled,
            Some(other) => return Err(format!("unknown mode {other:?}")),
            None => return Err("missing mode".to_string()),
        };
        let mut entries = Vec::new();
        for e in doc
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing entries")?
        {
            entries.push(entry_from_json(e, mode)?);
        }
        Ok(HotDoc { mode, entries })
    }

    /// Short per-entry summary table (kernels × labels with op totals).
    pub fn summary_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:<6} {:>10} {:>12} {:>10} {:>10}",
            "kernel", "mode", "code B", "native ops", "samples", "wall ns"
        );
        for e in &self.entries {
            let _ = writeln!(
                s,
                "{:<18} {:<6} {:>10} {:>12} {:>10} {:>10}",
                e.kernel,
                e.label,
                e.profile.code_bytes,
                e.profile.total_ops(),
                e.profile.samples_total,
                e.profile.native_wall_ns,
            );
        }
        s
    }
}

fn u64_field(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing {key}"))?;
    if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
        return Err(format!("{ctx}: implausible {key} = {v}"));
    }
    Ok(v as u64)
}

fn class_from_name(name: &str) -> Option<OpClass> {
    OpClass::ALL.into_iter().find(|c| c.name() == name)
}

fn entry_from_json(e: &Json, mode: HotMode) -> Result<HotEntry, String> {
    let kernel = e
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or("entry missing kernel")?
        .to_string();
    let label = e
        .get("label")
        .and_then(Json::as_str)
        .ok_or("entry missing label")?
        .to_string();
    let ctx = format!("{kernel}/{label}");
    let function = e
        .get("function")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{ctx}: missing function"))?
        .to_string();
    let code_bytes = u64_field(e, "code_bytes", &ctx)?;
    let dyn_insts = u64_field(e, "dyn_insts", &ctx)?;
    let native_wall_ns = u64_field(e, "native_wall_ns", &ctx)?;
    let sample_period_ns = u64_field(e, "sample_period_ns", &ctx)?;
    let samples_total = u64_field(e, "samples_total", &ctx)?;
    let block_counts: Vec<u64> = e
        .get("block_counts")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing block_counts"))?
        .iter()
        .map(|v| {
            v.as_num()
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("{ctx}: bad block counter"))
        })
        .collect::<Result<_, _>>()?;
    let class_obj = e
        .get("class_ops")
        .ok_or_else(|| format!("{ctx}: missing class_ops"))?;
    let mut class_ops = [0u64; OpClass::ALL.len()];
    for c in OpClass::ALL {
        class_ops[c.index()] = u64_field(class_obj, c.name(), &ctx)?;
    }

    let mut insts = Vec::new();
    for i in e
        .get("insts")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing insts"))?
    {
        let class_name = i
            .get("class")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{ctx}: inst missing class"))?;
        let class = class_from_name(class_name)
            .ok_or_else(|| format!("{ctx}: unknown opcode class {class_name:?}"))?;
        let decision = match i.get("decision") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(
                DecisionId::parse(s).map_err(|err| format!("{ctx}: bad decision label: {err}"))?,
            ),
            Some(other) => return Err(format!("{ctx}: bad decision value {other:?}")),
        };
        insts.push(InstHot {
            inst: u64_field(i, "inst", &ctx)? as u32,
            block: u64_field(i, "block", &ctx)? as u32,
            class,
            pc_start: u64_field(i, "pc_start", &ctx)? as u32,
            pc_end: u64_field(i, "pc_end", &ctx)? as u32,
            count: u64_field(i, "count", &ctx)?,
            samples: u64_field(i, "samples", &ctx)?,
            ns: u64_field(i, "ns", &ctx)?,
            decision,
        });
    }
    let mut stubs = Vec::new();
    for s in e
        .get("stubs")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{ctx}: missing stubs"))?
    {
        stubs.push(StubHot {
            name: s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{ctx}: stub missing name"))?
                .to_string(),
            pc_start: u64_field(s, "pc_start", &ctx)? as u32,
            pc_end: u64_field(s, "pc_end", &ctx)? as u32,
            samples: u64_field(s, "samples", &ctx)?,
        });
    }

    // --- Cross-invariants -------------------------------------------
    // Partition: the union of inst and stub ranges covers
    // [0, code_bytes) exactly once.
    let mut ranges: Vec<(u32, u32, &str)> = insts
        .iter()
        .map(|i| (i.pc_start, i.pc_end, "inst"))
        .chain(stubs.iter().map(|s| (s.pc_start, s.pc_end, "stub")))
        .collect();
    ranges.sort_by_key(|&(start, ..)| start);
    let mut expect = 0u32;
    for (start, end, what) in &ranges {
        if *end <= *start {
            return Err(format!("{ctx}: empty or inverted {what} range"));
        }
        match start.cmp(&expect) {
            std::cmp::Ordering::Less => {
                return Err(format!(
                    "{ctx}: {what} range at {start:#x} overlaps the previous one"
                ));
            }
            std::cmp::Ordering::Greater => {
                return Err(format!(
                    "{ctx}: gap before {what} range at {start:#x} (previous ended at {expect:#x})"
                ));
            }
            std::cmp::Ordering::Equal => {}
        }
        expect = *end;
    }
    if u64::from(expect) != code_bytes {
        return Err(format!(
            "{ctx}: ranges cover {expect} bytes but code_bytes is {code_bytes}"
        ));
    }

    match mode {
        HotMode::Instrumented => {
            let mut sums = [0u64; OpClass::ALL.len()];
            for i in &insts {
                let counter = block_counts.get(i.block as usize).copied().ok_or_else(|| {
                    format!("{ctx}: inst %{} in unknown block {}", i.inst, i.block)
                })?;
                if i.count != counter {
                    return Err(format!(
                        "{ctx}: inst %{} count {} != block {} counter {counter}",
                        i.inst, i.count, i.block
                    ));
                }
                sums[i.class.index()] += i.count;
            }
            if sums != class_ops {
                return Err(format!(
                    "{ctx}: per-inst counts sum to {sums:?} but class_ops says {class_ops:?}"
                ));
            }
            let total: u64 = class_ops.iter().sum();
            if total != dyn_insts {
                return Err(format!(
                    "{ctx}: native class total {total} != interpreter dyn_insts {dyn_insts}"
                ));
            }
        }
        HotMode::Sampled => {
            let sampled: u64 = insts.iter().map(|i| i.samples).sum::<u64>()
                + stubs.iter().map(|s| s.samples).sum::<u64>();
            if sampled != samples_total {
                return Err(format!(
                    "{ctx}: per-range samples sum to {sampled} but samples_total is {samples_total}"
                ));
            }
            let attributed: u64 = insts.iter().map(|i| i.ns).sum();
            if attributed > native_wall_ns {
                return Err(format!(
                    "{ctx}: attributed {attributed} ns exceeds measured wall {native_wall_ns} ns"
                ));
            }
            if samples_total > 0 && native_wall_ns == 0 {
                return Err(format!(
                    "{ctx}: {samples_total} samples landed but native_wall_ns is zero"
                ));
            }
        }
    }

    Ok(HotEntry {
        kernel,
        label,
        dyn_insts,
        profile: HotProfile {
            function,
            mode,
            code_bytes,
            block_counts,
            insts,
            stubs,
            class_ops,
            samples_total,
            sample_period_ns,
            native_wall_ns,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_core::{run_slp, SlpConfig, SlpMode};
    use snslp_kernels::kernel_by_name;

    #[test]
    fn decision_map_joins_emitted_insts() {
        let kernel = kernel_by_name("motiv_leaf").unwrap();
        let mut f = kernel.build();
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        let map = decision_map(&report);
        assert!(!map.is_empty(), "SN-SLP vectorizes motiv_leaf");
        // Every mapped decision came from a committed graph of this
        // function.
        for d in map.values() {
            assert_eq!(d.function, f.name());
        }
    }

    #[test]
    fn instrumented_artifact_round_trips_strictly() {
        if !snslp_jit::native_supported() {
            return;
        }
        let kernel = kernel_by_name("motiv_leaf").unwrap();
        let args = kernel.args(8);
        let mut f = kernel.build();
        let report = run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        let decisions = decision_map(&report);
        let (profile, dyn_insts) = measure_hot(&f, &args, decisions)
            .expect("reconciles")
            .expect("covered");
        assert!(profile.total_ops() > 0);
        assert_eq!(profile.total_ops(), dyn_insts);
        // At least one native range is decision-labeled.
        assert!(profile.insts.iter().any(|i| i.decision.is_some()));

        let doc = HotDoc {
            mode: HotMode::Instrumented,
            entries: vec![HotEntry {
                kernel: kernel.name.to_string(),
                label: "snslp".to_string(),
                dyn_insts,
                profile,
            }],
        };
        let text = doc.to_json();
        let back = HotDoc::from_json(&text).expect("strict reader accepts its own writer");
        assert_eq!(back.entries.len(), 1);
        assert_eq!(back.entries[0].profile.total_ops(), dyn_insts);
        assert!(doc.summary_table().contains("motiv_leaf"));

        // The reader rejects a tampered count (breaks both the
        // block-counter join and the class sums).
        let tampered = text.replacen("\"count\": ", "\"count\": 1", 1);
        assert!(HotDoc::from_json(&tampered).is_err());
        assert!(HotDoc::from_json("{}").is_err());
    }

    #[test]
    fn reader_rejects_partition_violations() {
        let text = r#"{
  "schema": "snslp-hot/v1",
  "mode": "instrumented",
  "entries": [
    {
      "kernel": "k",
      "label": "o3",
      "function": "k",
      "code_bytes": 10,
      "dyn_insts": 0,
      "native_wall_ns": 0,
      "sample_period_ns": 0,
      "samples_total": 0,
      "block_counts": [0],
      "class_ops": {"alu": 0, "div_rem": 0, "memory": 0, "packing": 0, "control": 0},
      "insts": [
        {"inst": 0, "block": 0, "class": "alu", "pc_start": 0, "pc_end": 4,
         "count": 0, "samples": 0, "ns": 0, "decision": null}
      ],
      "stubs": [
        {"name": "exits", "pc_start": 6, "pc_end": 10, "samples": 0}
      ]
    }
  ]
}"#;
        let err = HotDoc::from_json(text).unwrap_err();
        assert!(err.contains("gap"), "{err}");
    }

    #[test]
    fn reader_enforces_sample_cross_invariants() {
        let text = r#"{
  "schema": "snslp-hot/v1",
  "mode": "sampled",
  "entries": [
    {
      "kernel": "k",
      "label": "o3",
      "function": "k",
      "code_bytes": 4,
      "dyn_insts": 0,
      "native_wall_ns": 0,
      "sample_period_ns": 1000,
      "samples_total": 3,
      "block_counts": [],
      "class_ops": {"alu": 0, "div_rem": 0, "memory": 0, "packing": 0, "control": 0},
      "insts": [
        {"inst": 0, "block": 0, "class": "alu", "pc_start": 0, "pc_end": 4,
         "count": 0, "samples": 3, "ns": 0, "decision": null}
      ],
      "stubs": []
    }
  ]
}"#;
        let err = HotDoc::from_json(text).unwrap_err();
        assert!(err.contains("native_wall_ns is zero"), "{err}");
    }

    #[test]
    fn class_ns_split_is_proportional_and_bounded() {
        if !snslp_jit::native_supported() {
            return;
        }
        let kernel = kernel_by_name("motiv_leaf").unwrap();
        let f = {
            let mut f = kernel.build();
            run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
            f
        };
        let (profile, _) = measure_hot(&f, &kernel.args(8), BTreeMap::new())
            .unwrap()
            .unwrap();
        let ns = class_ns_split(&profile, 1_000_000);
        assert!(ns.iter().sum::<u64>() <= 1_000_000);
        // Every class the kernel executes gets a share.
        for c in OpClass::ALL {
            if profile.class_ops[c.index()] > 0 {
                assert!(ns[c.index()] > 0, "class {} got no time", c.name());
            }
        }
    }
}
