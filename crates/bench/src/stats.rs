//! Corpus-wide pass statistics: aggregation, a versioned JSON schema
//! (`snslp-stats/v1`), and run-to-run diffing.
//!
//! In the spirit of LLVM's `-stats` plus its `compare_stats` utility: one
//! [`FunctionStats`] row per compiled function — pass counters, per-stage
//! wall time, and remark-reason histogram straight off the
//! [`FunctionReport`] — aggregated into a [`StatsReport`] for a whole
//! corpus, serialized with the same hand-rolled [`Json`] the bench
//! reports use, and diffed by [`diff`] into counter deltas, remark-reason
//! churn, and gated stage-time regressions.
//!
//! Everything except stage times is deterministic for a fixed corpus and
//! mode, so `diff` between two honest runs of the same build reports
//! nothing: counters compare exactly, and stage-time rows only fire past
//! both a ratio gate and an absolute floor (see [`DiffGates`]).

use std::collections::BTreeMap;

use snslp_core::pass::FunctionReport;
use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_ir::Module;
use snslp_trace::{Counter, Stage};

use crate::json::{check_schema, round3, Json};

/// Schema identifier embedded in every stats file.
pub const STATS_SCHEMA: &str = "snslp-stats/v1";

/// Aggregated statistics for one function of a corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionStats {
    /// Corpus unit the function came from (kernel name or file stem).
    pub unit: String,
    /// Function name.
    pub function: String,
    /// Seed-bundle graphs attempted.
    pub graphs: u64,
    /// Graphs actually vectorized.
    pub vectorized: u64,
    /// Every [`Counter`] of the metrics registry, in `Counter::ALL` order.
    pub counters: Vec<(String, u64)>,
    /// Per-stage wall time in microseconds, in `Stage::ALL` order.
    pub stage_us: Vec<(String, f64)>,
    /// Remark-reason histogram (`reason code -> count`), sorted by code.
    pub reasons: Vec<(String, u64)>,
}

impl FunctionStats {
    /// Distills one [`FunctionReport`] into a stats row.
    pub fn from_report(unit: &str, report: &FunctionReport) -> FunctionStats {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), report.metrics.get(c)))
            .collect();
        let stage_us = Stage::ALL
            .iter()
            .map(|&s| {
                (
                    s.name().to_string(),
                    report.metrics.stage_nanos(s) as f64 / 1e3,
                )
            })
            .collect();
        let mut reasons: BTreeMap<String, u64> = BTreeMap::new();
        for remark in &report.remarks {
            *reasons.entry(remark.reason.code().to_string()).or_insert(0) += 1;
        }
        FunctionStats {
            unit: unit.to_string(),
            function: report.function.clone(),
            graphs: report.graphs.len() as u64,
            vectorized: report.vectorized_graphs() as u64,
            counters,
            stage_us,
            reasons: reasons.into_iter().collect(),
        }
    }

    /// `unit/@function`, the row key used by [`diff`].
    pub fn key(&self) -> String {
        format!("{}/@{}", self.unit, self.function)
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("unit".to_string(), Json::Str(self.unit.clone())),
            ("function".to_string(), Json::Str(self.function.clone())),
            ("graphs".to_string(), Json::Num(self.graphs as f64)),
            ("vectorized".to_string(), Json::Num(self.vectorized as f64)),
            (
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "stage_us".to_string(),
                Json::Obj(
                    self.stage_us
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(round3(*v))))
                        .collect(),
                ),
            ),
            (
                "reasons".to_string(),
                Json::Obj(
                    self.reasons
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<FunctionStats, String> {
        let str_field = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("function entry missing string `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("function entry missing number `{key}`"))
        };
        let num_map = |key: &str| -> Result<Vec<(String, f64)>, String> {
            match json.get(key) {
                Some(Json::Obj(members)) => members
                    .iter()
                    .map(|(k, v)| {
                        v.as_num()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("`{key}.{k}` is not a number"))
                    })
                    .collect(),
                _ => Err(format!("function entry missing object `{key}`")),
            }
        };
        Ok(FunctionStats {
            unit: str_field("unit")?,
            function: str_field("function")?,
            graphs: num_field("graphs")? as u64,
            vectorized: num_field("vectorized")? as u64,
            counters: num_map("counters")?
                .into_iter()
                .map(|(k, v)| (k, v as u64))
                .collect(),
            stage_us: num_map("stage_us")?,
            reasons: num_map("reasons")?
                .into_iter()
                .map(|(k, v)| (k, v as u64))
                .collect(),
        })
    }
}

/// A whole corpus run: mode plus one row per function, in corpus order.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Vectorizer mode label the corpus ran under (e.g. `snslp`).
    pub mode: String,
    /// One row per compiled function.
    pub functions: Vec<FunctionStats>,
}

impl StatsReport {
    /// Assembles a report from `(unit, report)` pairs.
    pub fn from_reports<'a, I>(mode: &str, reports: I) -> StatsReport
    where
        I: IntoIterator<Item = (&'a str, &'a FunctionReport)>,
    {
        StatsReport {
            mode: mode.to_string(),
            functions: reports
                .into_iter()
                .map(|(unit, r)| FunctionStats::from_report(unit, r))
                .collect(),
        }
    }

    /// Serializes to the `snslp-stats/v1` JSON document.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(STATS_SCHEMA.to_string())),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            (
                "functions".to_string(),
                Json::Arr(self.functions.iter().map(FunctionStats::to_json).collect()),
            ),
        ])
        .render()
    }

    /// Parses a `snslp-stats/v1` document.
    pub fn from_json(text: &str) -> Result<StatsReport, String> {
        let json = Json::parse(text)?;
        check_schema(&json, STATS_SCHEMA)?;
        let mode = json
            .get("mode")
            .and_then(Json::as_str)
            .ok_or("missing `mode` field")?
            .to_string();
        let functions = json
            .get("functions")
            .and_then(Json::as_arr)
            .ok_or("missing `functions` array")?
            .iter()
            .map(FunctionStats::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StatsReport { mode, functions })
    }

    /// Human summary: totals across the corpus, one line per counter.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        let mut order: Vec<&str> = Vec::new();
        let (mut graphs, mut vectorized) = (0u64, 0u64);
        for f in &self.functions {
            graphs += f.graphs;
            vectorized += f.vectorized;
            for (name, v) in &f.counters {
                if !totals.contains_key(name.as_str()) {
                    order.push(name);
                }
                *totals.entry(name).or_insert(0) += v;
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "snslp-stats [{}]: {} functions, {vectorized}/{graphs} graphs vectorized",
            self.mode,
            self.functions.len()
        );
        for name in order {
            let _ = writeln!(out, "  {:<24} {}", name, totals[name]);
        }
        out
    }
}

/// Stable lowercase mode code used in the stats schema (matches the
/// `pass=` field of remarks).
pub fn mode_code(mode: SlpMode) -> &'static str {
    match mode {
        SlpMode::Slp => "slp",
        SlpMode::Lslp => "lslp",
        SlpMode::SnSlp => "snslp",
    }
}

/// Runs every kernel of the evaluation registry under `mode` and returns
/// one stats row per kernel function. The default corpus of
/// `snslp-stats collect`.
pub fn collect_kernel_stats(mode: SlpMode) -> StatsReport {
    let cfg = SlpConfig::new(mode);
    let pairs: Vec<(String, FunctionReport)> = snslp_kernels::registry()
        .iter()
        .map(|kernel| {
            let mut f = kernel.build();
            (kernel.name.to_string(), run_slp(&mut f, &cfg))
        })
        .collect();
    StatsReport::from_reports(
        mode_code(mode),
        pairs.iter().map(|(unit, r)| (unit.as_str(), r)),
    )
}

/// One module holding the scalar IR of every registry kernel — the corpus
/// `snslp-stats emit-corpus` writes for `snslpc`-based smoke runs.
pub fn kernel_corpus_module() -> Module {
    let mut module = Module::new("kernel_corpus");
    for kernel in snslp_kernels::registry() {
        module.add_function(kernel.build());
    }
    module
}

// ---------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------

/// Thresholds separating noise from regressions in [`diff`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffGates {
    /// A stage time must grow by more than this factor...
    pub stage_ratio: f64,
    /// ...*and* by more than this many microseconds to count. The floor
    /// keeps two honest runs of a small corpus from flagging scheduler
    /// jitter on sub-millisecond stages.
    pub stage_floor_us: f64,
}

impl Default for DiffGates {
    fn default() -> Self {
        // Mirror the bench_check compile-time gate (2x) with a 500us
        // absolute floor.
        DiffGates {
            stage_ratio: 2.0,
            stage_floor_us: 500.0,
        }
    }
}

/// One changed value: a counter, reason count, or stage time of one
/// function.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// `unit/@function` the change is in.
    pub key: String,
    /// Which counter / reason / stage changed.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// New value.
    pub new: f64,
}

impl DeltaRow {
    /// Absolute change (sort key for the top-N table).
    pub fn magnitude(&self) -> f64 {
        (self.new - self.base).abs()
    }

    /// `new / base`, with 0/0 = 1 and x/0 = infinity.
    pub fn ratio(&self) -> f64 {
        if self.base == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.base
        }
    }
}

/// Result of diffing two stats reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsDiff {
    /// Function keys present in the baseline but not the new run.
    pub missing: Vec<String>,
    /// Function keys present in the new run but not the baseline.
    pub added: Vec<String>,
    /// Changed deterministic values (counters, graphs, vectorized),
    /// sorted by descending magnitude.
    pub counter_deltas: Vec<DeltaRow>,
    /// Changed remark-reason counts, sorted by descending magnitude.
    pub reason_churn: Vec<DeltaRow>,
    /// Stage times past both [`DiffGates`] thresholds, sorted by
    /// descending magnitude.
    pub stage_regressions: Vec<DeltaRow>,
}

impl StatsDiff {
    /// Anything to report?
    pub fn has_regressions(&self) -> bool {
        !self.missing.is_empty()
            || !self.added.is_empty()
            || !self.counter_deltas.is_empty()
            || !self.reason_churn.is_empty()
            || !self.stage_regressions.is_empty()
    }

    /// Renders the diff as a top-N table per section (all rows when
    /// `top_n` is 0). Empty string when nothing changed.
    pub fn render(&self, top_n: usize) -> String {
        use std::fmt::Write as _;
        if !self.has_regressions() {
            return String::new();
        }
        let mut out = String::new();
        for key in &self.missing {
            let _ = writeln!(out, "missing from new run: {key}");
        }
        for key in &self.added {
            let _ = writeln!(out, "added in new run: {key}");
        }
        let section = |out: &mut String, title: &str, rows: &[DeltaRow], unit: &str| {
            if rows.is_empty() {
                return;
            }
            let shown = if top_n == 0 {
                rows.len()
            } else {
                rows.len().min(top_n)
            };
            let _ = writeln!(out, "{title} (top {shown} of {}):", rows.len());
            let _ = writeln!(
                out,
                "  {:<44} {:>14} {:>14} {:>8}",
                "function / name", "base", "new", "ratio"
            );
            for row in &rows[..shown] {
                let ratio = row.ratio();
                let ratio = if ratio.is_finite() {
                    format!("{ratio:.2}x")
                } else {
                    "inf".to_string()
                };
                let _ = writeln!(
                    out,
                    "  {:<44} {:>14} {:>14} {:>8}",
                    format!("{} {}", row.key, row.name),
                    format!("{}{unit}", trim_num(row.base)),
                    format!("{}{unit}", trim_num(row.new)),
                    ratio,
                );
            }
        };
        section(&mut out, "counter deltas", &self.counter_deltas, "");
        section(&mut out, "remark-reason churn", &self.reason_churn, "");
        section(
            &mut out,
            "stage-time regressions",
            &self.stage_regressions,
            "us",
        );
        out
    }
}

fn trim_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Diffs two corpus runs. Deterministic values (counters, graph counts,
/// remark reasons) report every change; stage times only past `gates`.
pub fn diff(base: &StatsReport, new: &StatsReport, gates: DiffGates) -> StatsDiff {
    let base_by_key: BTreeMap<String, &FunctionStats> =
        base.functions.iter().map(|f| (f.key(), f)).collect();
    let new_by_key: BTreeMap<String, &FunctionStats> =
        new.functions.iter().map(|f| (f.key(), f)).collect();

    let mut out = StatsDiff::default();
    for key in base_by_key.keys() {
        if !new_by_key.contains_key(key) {
            out.missing.push(key.clone());
        }
    }
    for key in new_by_key.keys() {
        if !base_by_key.contains_key(key) {
            out.added.push(key.clone());
        }
    }

    for (key, b) in &base_by_key {
        let Some(n) = new_by_key.get(key) else {
            continue;
        };
        let mut push_exact = |name: &str, bv: f64, nv: f64| {
            if bv != nv {
                out.counter_deltas.push(DeltaRow {
                    key: key.clone(),
                    name: name.to_string(),
                    base: bv,
                    new: nv,
                });
            }
        };
        push_exact("graphs", b.graphs as f64, n.graphs as f64);
        push_exact("vectorized", b.vectorized as f64, n.vectorized as f64);
        let b_counters: BTreeMap<&str, u64> =
            b.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let n_counters: BTreeMap<&str, u64> =
            n.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for name in b_counters.keys().chain(n_counters.keys()) {
            let bv = b_counters.get(name).copied().unwrap_or(0) as f64;
            let nv = n_counters.get(name).copied().unwrap_or(0) as f64;
            push_exact(name, bv, nv);
        }

        let b_reasons: BTreeMap<&str, u64> =
            b.reasons.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let n_reasons: BTreeMap<&str, u64> =
            n.reasons.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for name in b_reasons.keys().chain(n_reasons.keys()) {
            let bv = b_reasons.get(name).copied().unwrap_or(0) as f64;
            let nv = n_reasons.get(name).copied().unwrap_or(0) as f64;
            if bv != nv {
                out.reason_churn.push(DeltaRow {
                    key: key.clone(),
                    name: name.to_string(),
                    base: bv,
                    new: nv,
                });
            }
        }

        let b_stages: BTreeMap<&str, f64> =
            b.stage_us.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        for (name, &nv) in n.stage_us.iter().map(|(k, v)| (k.as_str(), v)) {
            let bv = b_stages.get(name).copied().unwrap_or(0.0);
            let grew_past_ratio = nv > bv * gates.stage_ratio;
            let grew_past_floor = nv - bv > gates.stage_floor_us;
            if grew_past_ratio && grew_past_floor {
                out.stage_regressions.push(DeltaRow {
                    key: key.clone(),
                    name: name.to_string(),
                    base: bv,
                    new: nv,
                });
            }
        }
    }

    // Dedup rows produced twice by the chained key iteration above.
    for rows in [
        &mut out.counter_deltas,
        &mut out.reason_churn,
        &mut out.stage_regressions,
    ] {
        rows.sort_by(|a, b| (&a.key, &a.name).cmp(&(&b.key, &b.name)));
        rows.dedup();
        rows.sort_by(|a, b| {
            b.magnitude()
                .partial_cmp(&a.magnitude())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (&a.key, &a.name).cmp(&(&b.key, &b.name)))
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(unit: &str, func: &str, hits: u64, misses: u64) -> FunctionStats {
        FunctionStats {
            unit: unit.to_string(),
            function: func.to_string(),
            graphs: 2,
            vectorized: 1,
            counters: vec![
                ("lookahead_cache_hits".to_string(), hits),
                ("lookahead_cache_misses".to_string(), misses),
            ],
            stage_us: vec![("graph_build".to_string(), 120.0)],
            reasons: vec![("profitable".to_string(), 1)],
        }
    }

    fn report(funcs: Vec<FunctionStats>) -> StatsReport {
        StatsReport {
            mode: "snslp".to_string(),
            functions: funcs,
        }
    }

    #[test]
    fn json_round_trip() {
        let r = report(vec![stats("k1", "f1", 10, 4), stats("k2", "f2", 0, 9)]);
        let parsed = StatsReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = StatsReport::from_json("{\"schema\": \"nope/v9\"}").unwrap_err();
        assert!(err.contains("nope/v9"), "{err}");
    }

    #[test]
    fn identical_runs_diff_clean() {
        let a = report(vec![stats("k1", "f1", 10, 4)]);
        let mut b = a.clone();
        // Stage-time jitter below the gates must not fire.
        b.functions[0].stage_us[0].1 = 170.0;
        let d = diff(&a, &b, DiffGates::default());
        assert!(!d.has_regressions(), "{d:?}");
        assert!(d.render(10).is_empty());
    }

    #[test]
    fn counter_delta_is_surfaced_and_ranked() {
        let a = report(vec![stats("k1", "f1", 10, 4), stats("k2", "f2", 100, 5)]);
        // Injected regression: cache disabled in the new run — every hit
        // becomes a miss.
        let b = report(vec![stats("k1", "f1", 0, 14), stats("k2", "f2", 0, 105)]);
        let d = diff(&a, &b, DiffGates::default());
        assert!(d.has_regressions());
        assert_eq!(d.counter_deltas.len(), 4);
        // Largest magnitude first: f2's 100-hit swing.
        assert_eq!(d.counter_deltas[0].key, "k2/@f2");
        assert_eq!(d.counter_deltas[0].name, "lookahead_cache_hits");
        assert_eq!(d.counter_deltas[0].base, 100.0);
        assert_eq!(d.counter_deltas[0].new, 0.0);
        let table = d.render(3);
        assert!(table.contains("counter deltas"), "{table}");
        assert!(table.contains("k2/@f2 lookahead_cache_hits"), "{table}");
    }

    #[test]
    fn stage_regression_needs_both_gates() {
        let a = report(vec![stats("k1", "f1", 1, 1)]);
        // 10x growth but only +1.08ms-0.12ms... base 120us -> 1800us:
        // ratio 15x, delta 1680us — past both gates.
        let mut b = a.clone();
        b.functions[0].stage_us[0].1 = 1800.0;
        let d = diff(&a, &b, DiffGates::default());
        assert_eq!(d.stage_regressions.len(), 1);
        // Big ratio, small absolute delta: gated out.
        let mut c = a.clone();
        c.functions[0].stage_us[0].1 = 500.0;
        assert!(!diff(&a, &c, DiffGates::default()).has_regressions());
        // Big absolute delta, small ratio: gated out.
        let mut base_big = a.clone();
        base_big.functions[0].stage_us[0].1 = 10_000.0;
        let mut new_big = a.clone();
        new_big.functions[0].stage_us[0].1 = 11_000.0;
        assert!(!diff(&base_big, &new_big, DiffGates::default()).has_regressions());
    }

    #[test]
    fn missing_and_added_functions_are_reported() {
        let a = report(vec![stats("k1", "f1", 1, 1)]);
        let b = report(vec![stats("k2", "f2", 1, 1)]);
        let d = diff(&a, &b, DiffGates::default());
        assert_eq!(d.missing, vec!["k1/@f1".to_string()]);
        assert_eq!(d.added, vec!["k2/@f2".to_string()]);
        assert!(d.has_regressions());
    }
}
