//! Structural validator for the Chrome Trace Event / Perfetto JSON the
//! profiler emits ([`snslp_trace::Profile::to_chrome_json`]).
//!
//! Used by the `snslp-stats validate-trace` subcommand and the test
//! suite: a trace must parse with the hand-rolled JSON parser, every
//! event must carry the fields the format requires, and the complete
//! (`ph:"X"`) events of each track must be monotone in `ts` and properly
//! nested — a child span never extends past the span enclosing it.

use std::collections::BTreeMap;

use crate::report::Json;

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// `tid -> thread_name` metadata labels, e.g. `main`, `worker-0`.
    pub tracks: BTreeMap<i64, String>,
    /// Complete-span count per tid.
    pub spans_per_track: BTreeMap<i64, usize>,
    /// Distinct span names across the whole trace, sorted.
    pub span_names: Vec<String>,
    /// Distinct counter names across the whole trace, sorted.
    pub counter_names: Vec<String>,
}

/// Half a microsecond of slack for fractional-`ts` rounding.
const EPS: f64 = 0.5e-3;

/// Validates trace JSON end to end. Returns a summary on success and the
/// first structural violation otherwise.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let json = Json::parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;

    let mut summary = TraceSummary::default();
    // Per-tid complete events as (ts, dur, name).
    let mut spans: BTreeMap<i64, Vec<(f64, f64, String)>> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut counters: Vec<String> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| ev.get(key).ok_or(format!("event {i} missing `{key}`"));
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {i}: `name` is not a string"))?
            .to_string();
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {i}: `ph` is not a string"))?;
        field("pid")?
            .as_num()
            .ok_or(format!("event {i}: `pid` is not a number"))?;
        let tid = field("tid")?
            .as_num()
            .ok_or(format!("event {i}: `tid` is not a number"))? as i64;
        match ph {
            "M" => {
                if name == "thread_name" {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or(format!("event {i}: thread_name without args.name"))?;
                    summary.tracks.insert(tid, label.to_string());
                }
            }
            "X" => {
                let ts = field("ts")?
                    .as_num()
                    .ok_or(format!("event {i}: `ts` is not a number"))?;
                let dur = field("dur")?
                    .as_num()
                    .ok_or(format!("event {i}: `dur` is not a number"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} (`{name}`): negative ts/dur"));
                }
                spans.entry(tid).or_default().push((ts, dur, name.clone()));
                names.push(name);
            }
            "C" => {
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i} (`{name}`): counter without args.value"))?;
                counters.push(name);
            }
            other => return Err(format!("event {i} (`{name}`): unsupported ph `{other}`")),
        }
    }

    // Per-track: events must already be in monotone non-decreasing ts
    // order, and spans must nest (a span starting inside an enclosing
    // span must also end inside it).
    for (tid, track_spans) in &spans {
        let mut stack: Vec<(f64, String)> = Vec::new(); // (end, name)
        let mut prev_ts = f64::NEG_INFINITY;
        for (ts, dur, name) in track_spans {
            if *ts < prev_ts - EPS {
                return Err(format!(
                    "tid {tid}: span `{name}` at ts={ts} goes backwards (previous ts={prev_ts})"
                ));
            }
            prev_ts = *ts;
            while let Some((end, _)) = stack.last() {
                if *end <= *ts + EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some((enclosing_end, enclosing)) = stack.last() {
                if ts + dur > enclosing_end + EPS {
                    return Err(format!(
                        "tid {tid}: span `{name}` [{ts}, {}] overlaps the end of \
                         enclosing `{enclosing}` (ends at {enclosing_end})",
                        ts + dur
                    ));
                }
            }
            stack.push((ts + dur, name.clone()));
        }
        summary.spans_per_track.insert(*tid, track_spans.len());
    }

    names.sort();
    names.dedup();
    summary.span_names = names;
    counters.sort();
    counters.dedup();
    summary.counter_names = counters;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ph: &str, tid: i64, ts: f64, dur: f64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur}}}"
        )
    }

    fn trace(events: &[String]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn accepts_nested_spans() {
        let t = trace(&[
            event("parent", "X", 0, 0.0, 100.0),
            event("child", "X", 0, 10.0, 20.0),
            event("sibling", "X", 0, 40.0, 60.0),
        ]);
        let s = validate_chrome_trace(&t).unwrap();
        assert_eq!(s.spans_per_track[&0], 3);
        assert_eq!(s.span_names, vec!["child", "parent", "sibling"]);
    }

    #[test]
    fn rejects_backwards_ts() {
        let t = trace(&[
            event("a", "X", 0, 50.0, 10.0),
            event("b", "X", 0, 10.0, 10.0),
        ]);
        let err = validate_chrome_trace(&t).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn rejects_partial_overlap() {
        let t = trace(&[
            event("parent", "X", 0, 0.0, 50.0),
            event("straddler", "X", 0, 40.0, 30.0),
        ]);
        let err = validate_chrome_trace(&t).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn rejects_unknown_phase_and_malformed_counter() {
        let t = trace(&[event("weird", "B", 0, 0.0, 0.0)]);
        assert!(validate_chrome_trace(&t).unwrap_err().contains("ph `B`"));
        let t = trace(&["{\"name\":\"c\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1}".to_string()]);
        assert!(validate_chrome_trace(&t)
            .unwrap_err()
            .contains("counter without args.value"));
    }

    #[test]
    fn collects_track_labels() {
        let t = trace(&[
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\
             \"args\":{\"name\":\"worker-3\"}}"
                .to_string(),
            event("s", "X", 3, 0.0, 1.0),
        ]);
        let s = validate_chrome_trace(&t).unwrap();
        assert_eq!(s.tracks[&3], "worker-3");
    }
}
