//! Structural validators for the trace artifacts the toolchain emits:
//! the Chrome Trace Event / Perfetto JSON from the profiler
//! ([`snslp_trace::Profile::to_chrome_json`]) and the NDJSON access log
//! `snslpd` writes through the JSON trace sink
//! ([`validate_access_log`]).
//!
//! Used by the `snslp-stats validate-trace` subcommand and the test
//! suite: a trace must parse with the hand-rolled JSON parser, every
//! event must carry the fields the format requires, and the complete
//! (`ph:"X"`) events of each track must be monotone in `ts` and properly
//! nested — a child span never extends past the span enclosing it.

use std::collections::BTreeMap;

use crate::report::Json;

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// `tid -> thread_name` metadata labels, e.g. `main`, `worker-0`.
    pub tracks: BTreeMap<i64, String>,
    /// Complete-span count per tid.
    pub spans_per_track: BTreeMap<i64, usize>,
    /// Distinct span names across the whole trace, sorted.
    pub span_names: Vec<String>,
    /// Distinct counter names across the whole trace, sorted.
    pub counter_names: Vec<String>,
}

/// Half a microsecond of slack for fractional-`ts` rounding.
const EPS: f64 = 0.5e-3;

/// Validates trace JSON end to end. Returns a summary on success and the
/// first structural violation otherwise.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let json = Json::parse(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let events = json
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;

    let mut summary = TraceSummary::default();
    // Per-tid complete events as (ts, dur, name).
    let mut spans: BTreeMap<i64, Vec<(f64, f64, String)>> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut counters: Vec<String> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| ev.get(key).ok_or(format!("event {i} missing `{key}`"));
        let name = field("name")?
            .as_str()
            .ok_or(format!("event {i}: `name` is not a string"))?
            .to_string();
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {i}: `ph` is not a string"))?;
        field("pid")?
            .as_num()
            .ok_or(format!("event {i}: `pid` is not a number"))?;
        let tid = field("tid")?
            .as_num()
            .ok_or(format!("event {i}: `tid` is not a number"))? as i64;
        match ph {
            "M" => {
                if name == "thread_name" {
                    let label = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .ok_or(format!("event {i}: thread_name without args.name"))?;
                    summary.tracks.insert(tid, label.to_string());
                }
            }
            "X" => {
                let ts = field("ts")?
                    .as_num()
                    .ok_or(format!("event {i}: `ts` is not a number"))?;
                let dur = field("dur")?
                    .as_num()
                    .ok_or(format!("event {i}: `dur` is not a number"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i} (`{name}`): negative ts/dur"));
                }
                spans.entry(tid).or_default().push((ts, dur, name.clone()));
                names.push(name);
            }
            "C" => {
                ev.get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_num)
                    .ok_or(format!("event {i} (`{name}`): counter without args.value"))?;
                counters.push(name);
            }
            other => return Err(format!("event {i} (`{name}`): unsupported ph `{other}`")),
        }
    }

    // Per-track: events must already be in monotone non-decreasing ts
    // order, and spans must nest (a span starting inside an enclosing
    // span must also end inside it).
    for (tid, track_spans) in &spans {
        let mut stack: Vec<(f64, String)> = Vec::new(); // (end, name)
        let mut prev_ts = f64::NEG_INFINITY;
        for (ts, dur, name) in track_spans {
            if *ts < prev_ts - EPS {
                return Err(format!(
                    "tid {tid}: span `{name}` at ts={ts} goes backwards (previous ts={prev_ts})"
                ));
            }
            prev_ts = *ts;
            while let Some((end, _)) = stack.last() {
                if *end <= *ts + EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some((enclosing_end, enclosing)) = stack.last() {
                if ts + dur > enclosing_end + EPS {
                    return Err(format!(
                        "tid {tid}: span `{name}` [{ts}, {}] overlaps the end of \
                         enclosing `{enclosing}` (ends at {enclosing_end})",
                        ts + dur
                    ));
                }
            }
            stack.push((ts + dur, name.clone()));
        }
        summary.spans_per_track.insert(*tid, track_spans.len());
    }

    names.sort();
    names.dedup();
    summary.span_names = names;
    counters.sort();
    counters.dedup();
    summary.counter_names = counters;
    Ok(summary)
}

/// Name of the access-log event records (`snslp_trace::serve::EVENT_ACCESS`;
/// repeated here because `snslp-bench` sits below `snslp-trace`'s serve
/// vocabulary consumers and must not grow a dependency for one literal).
const ACCESS_EVENT: &str = "serve.access";

/// The non-negative integer fields every access record must carry, in
/// canonical emission order. The five `*_ns` stage fields must sum to
/// `total_ns` exactly — the server charges every nanosecond of a request
/// span to exactly one stage.
const ACCESS_NUM_FIELDS: [&str; 9] = [
    "parse_ns",
    "queue_ns",
    "compile_ns",
    "render_ns",
    "write_ns",
    "total_ns",
    "bytes_in",
    "bytes_out",
    "id",
];

/// What [`validate_access_log`] learned about a well-formed log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AccessLogSummary {
    /// Access records seen (non-access records are ignored).
    pub requests: usize,
    /// Record count per reply `status` (`ok`, `busy`, `error`).
    pub by_status: BTreeMap<String, usize>,
    /// Record count per `cache` outcome (`memo`, `compiled`, `none`).
    pub by_cache: BTreeMap<String, usize>,
    /// Sum of `total_ns` across all access records.
    pub total_ns: u64,
}

/// Reads a required field of `record` as a non-negative integer.
fn access_u64(record: &Json, line: usize, key: &str) -> Result<u64, String> {
    let n = record
        .get(key)
        .ok_or(format!("line {line}: access record missing `{key}`"))?
        .as_num()
        .ok_or(format!("line {line}: `{key}` is not a number"))?;
    if !n.is_finite() || n < 0.0 || n.fract() != 0.0 || n > (1u64 << 53) as f64 {
        return Err(format!("line {line}: `{key}` = {n} is not a u64"));
    }
    Ok(n as u64)
}

/// Reads a required field of `record` as one of `allowed`.
fn access_label<'a>(
    record: &'a Json,
    line: usize,
    key: &str,
    allowed: &[&str],
) -> Result<&'a str, String> {
    let v = record
        .get(key)
        .ok_or(format!("line {line}: access record missing `{key}`"))?
        .as_str()
        .ok_or(format!("line {line}: `{key}` is not a string"))?;
    if !allowed.contains(&v) {
        return Err(format!("line {line}: `{key}` = `{v}` not in {allowed:?}"));
    }
    Ok(v)
}

/// Validates an NDJSON trace stream's access-log records (the JSON trace
/// sink's output with the `serve.access` events enabled).
///
/// Every line must parse as a JSON object with a string `name`; lines
/// whose name is not `serve.access` are ignored (the stream may
/// interleave spans and other events). Each access record must:
///
/// - be an `event` record carrying exactly the documented fields,
/// - label `op` / `status` / `cache` from the closed vocabularies,
/// - pair `cache` correctly with the outcome (`memo`/`compiled` iff the
///   record is a successful compile, `none` otherwise), and
/// - satisfy the stage invariant: `parse_ns + queue_ns + compile_ns +
///   render_ns + write_ns == total_ns` exactly.
///
/// Returns per-status and per-cache tallies so callers can also assert
/// stream-level counts (e.g. `by_cache["memo"]` against the server's
/// `memo_hits` counter).
pub fn validate_access_log(text: &str) -> Result<AccessLogSummary, String> {
    let mut summary = AccessLogSummary::default();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let record = Json::parse(raw).map_err(|e| format!("line {line}: does not parse: {e}"))?;
        let Some(name) = record.get("name").and_then(Json::as_str) else {
            return Err(format!("line {line}: record without a string `name`"));
        };
        if name != ACCESS_EVENT {
            continue;
        }
        if record.get("kind").and_then(Json::as_str) != Some("event") {
            return Err(format!("line {line}: access record is not an event"));
        }
        let members = match &record {
            Json::Obj(members) => members,
            _ => return Err(format!("line {line}: access record is not an object")),
        };
        // kind + name + 3 labels + the numeric fields, nothing else.
        let expected = 5 + ACCESS_NUM_FIELDS.len();
        if members.len() != expected {
            return Err(format!(
                "line {line}: access record has {} members, expected {expected}",
                members.len()
            ));
        }

        let op = access_label(&record, line, "op", &["compile", "stats", "invalid"])?;
        let status = access_label(&record, line, "status", &["ok", "busy", "error"])?;
        let cache = access_label(&record, line, "cache", &["memo", "compiled", "none"])?;
        let ok_compile = op == "compile" && status == "ok";
        if ok_compile == (cache == "none") {
            return Err(format!(
                "line {line}: cache `{cache}` inconsistent with op `{op}` status `{status}`"
            ));
        }

        let mut nums = [0u64; ACCESS_NUM_FIELDS.len()];
        for (slot, key) in nums.iter_mut().zip(ACCESS_NUM_FIELDS) {
            *slot = access_u64(&record, line, key)?;
        }
        let [parse, queue, compile, render, write, total, _bytes_in, _bytes_out, _id] = nums;
        let stage_sum = parse + queue + compile + render + write;
        if stage_sum != total {
            return Err(format!(
                "line {line}: stage sum {stage_sum} != total_ns {total}"
            ));
        }

        summary.requests += 1;
        *summary.by_status.entry(status.to_string()).or_default() += 1;
        *summary.by_cache.entry(cache.to_string()).or_default() += 1;
        summary.total_ns += total;
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(name: &str, ph: &str, tid: i64, ts: f64, dur: f64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\
             \"ts\":{ts},\"dur\":{dur}}}"
        )
    }

    fn trace(events: &[String]) -> String {
        format!("{{\"traceEvents\":[{}]}}", events.join(","))
    }

    #[test]
    fn accepts_nested_spans() {
        let t = trace(&[
            event("parent", "X", 0, 0.0, 100.0),
            event("child", "X", 0, 10.0, 20.0),
            event("sibling", "X", 0, 40.0, 60.0),
        ]);
        let s = validate_chrome_trace(&t).unwrap();
        assert_eq!(s.spans_per_track[&0], 3);
        assert_eq!(s.span_names, vec!["child", "parent", "sibling"]);
    }

    #[test]
    fn rejects_backwards_ts() {
        let t = trace(&[
            event("a", "X", 0, 50.0, 10.0),
            event("b", "X", 0, 10.0, 10.0),
        ]);
        let err = validate_chrome_trace(&t).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn rejects_partial_overlap() {
        let t = trace(&[
            event("parent", "X", 0, 0.0, 50.0),
            event("straddler", "X", 0, 40.0, 30.0),
        ]);
        let err = validate_chrome_trace(&t).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn rejects_unknown_phase_and_malformed_counter() {
        let t = trace(&[event("weird", "B", 0, 0.0, 0.0)]);
        assert!(validate_chrome_trace(&t).unwrap_err().contains("ph `B`"));
        let t = trace(&["{\"name\":\"c\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":1}".to_string()]);
        assert!(validate_chrome_trace(&t)
            .unwrap_err()
            .contains("counter without args.value"));
    }

    /// One well-formed access line with the given overrides applied as
    /// `key:value` JSON fragments replacing the defaults.
    fn access_line(op: &str, status: &str, cache: &str, stages: [u64; 5]) -> String {
        let total: u64 = stages.iter().sum();
        format!(
            "{{\"kind\":\"event\",\"name\":\"serve.access\",\"id\":7,\"op\":\"{op}\",\
             \"status\":\"{status}\",\"cache\":\"{cache}\",\
             \"parse_ns\":{},\"queue_ns\":{},\"compile_ns\":{},\"render_ns\":{},\
             \"write_ns\":{},\"total_ns\":{total},\"bytes_in\":120,\"bytes_out\":240}}",
            stages[0], stages[1], stages[2], stages[3], stages[4]
        )
    }

    #[test]
    fn access_log_tallies_statuses_and_cache_outcomes() {
        let log = [
            access_line("compile", "ok", "compiled", [5, 4, 3, 2, 1]),
            access_line("compile", "ok", "memo", [2, 0, 1, 1, 1]),
            access_line("compile", "busy", "none", [1, 0, 0, 1, 1]),
            access_line("stats", "ok", "none", [1, 0, 0, 2, 1]),
            // Interleaved non-access records are skipped, blanks ignored.
            "{\"kind\":\"span-end\",\"name\":\"serve.request\",\"elapsed_us\":9}".to_string(),
            String::new(),
        ]
        .join("\n");
        let s = validate_access_log(&log).unwrap();
        assert_eq!(s.requests, 4);
        assert_eq!(s.by_status["ok"], 3);
        assert_eq!(s.by_status["busy"], 1);
        assert_eq!(s.by_cache["memo"], 1);
        assert_eq!(s.by_cache["none"], 2);
        assert_eq!(s.total_ns, 15 + 5 + 3 + 4);
    }

    #[test]
    fn access_log_rejects_broken_stage_sums() {
        let mut line = access_line("compile", "ok", "compiled", [5, 4, 3, 2, 1]);
        line = line.replace("\"total_ns\":15", "\"total_ns\":16");
        let err = validate_access_log(&line).unwrap_err();
        assert!(err.contains("stage sum 15 != total_ns 16"), "{err}");
    }

    #[test]
    fn access_log_rejects_vocabulary_and_shape_violations() {
        // cache outcome inconsistent with a successful compile.
        let line = access_line("compile", "ok", "none", [1, 0, 0, 1, 1]);
        assert!(validate_access_log(&line).unwrap_err().contains("cache"));
        // memo claimed on a busy refusal.
        let line = access_line("compile", "busy", "memo", [1, 0, 0, 1, 1]);
        assert!(validate_access_log(&line).unwrap_err().contains("cache"));
        // Unknown status label.
        let line = access_line("compile", "teapot", "compiled", [1, 0, 0, 1, 1]);
        assert!(validate_access_log(&line).unwrap_err().contains("teapot"));
        // A dropped field changes the member count.
        let line =
            access_line("compile", "ok", "memo", [1, 0, 0, 1, 1]).replace(",\"bytes_in\":120", "");
        assert!(validate_access_log(&line)
            .unwrap_err()
            .contains("13 members, expected 14"));
        // An extra field is just as fatal.
        let line = access_line("compile", "ok", "memo", [1, 0, 0, 1, 1])
            .replace("\"id\":7", "\"id\":7,\"extra\":1");
        assert!(validate_access_log(&line).unwrap_err().contains("members"));
        // Negative nanoseconds.
        let line = access_line("compile", "ok", "memo", [1, 0, 0, 1, 1])
            .replace("\"queue_ns\":0", "\"queue_ns\":-1");
        assert!(validate_access_log(&line).unwrap_err().contains("queue_ns"));
        // A record that is not an event.
        let line = access_line("compile", "ok", "memo", [1, 0, 0, 1, 1])
            .replace("\"kind\":\"event\"", "\"kind\":\"metric\"");
        assert!(validate_access_log(&line)
            .unwrap_err()
            .contains("not an event"));
    }

    #[test]
    fn collects_track_labels() {
        let t = trace(&[
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":3,\
             \"args\":{\"name\":\"worker-3\"}}"
                .to_string(),
            event("s", "X", 3, 0.0, 1.0),
        ]);
        let s = validate_chrome_trace(&t).unwrap();
        assert_eq!(s.tracks[&3], "worker-3");
    }
}
