//! Cross-layer decision attribution: the `snslp-report/v1` document.
//!
//! The five observability layers (remarks, profiler spans, DOT dumps,
//! stats, dynamic profiles) each carry the same [`DecisionId`] anchor
//! since it is minted in the pass; this module performs the join. Per
//! function it produces one row per decision: the remark outcome and
//! reason code, the predicted cost delta, the compile time spent inside
//! that decision's profiler span, and the decision-stamped graph
//! snapshot — alongside the function's achieved dynamic cycles and lane
//! utilization from the interpreter.
//!
//! Consumers:
//! - [`render_html`]: a zero-dependency single-file HTML explorer
//!   (`snslpc --report`, byte-stable under the virtual clock);
//! - [`diff`]: root-causes a benchmark regression down to the specific
//!   decisions whose outcomes changed, ranked by cycle impact
//!   (`snslp-report diff A B`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use snslp_core::{optimize_o3, run_slp, FunctionReport, SlpConfig};
use snslp_cost::CostModel;
use snslp_interp::{run_with_args, ExecOptions};
use snslp_trace::{DecisionId, Facet, Profile, Stage};

use crate::json::{check_schema, round3, Json};
use crate::stats::mode_code;

/// The schema tag every attribution report carries; bump on breaking
/// format changes.
pub const REPORT_SCHEMA: &str = "snslp-report/v1";

/// One vectorization decision, fully attributed across layers.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRow {
    /// Rendered [`DecisionId`] (`@fn/block/sN#iM`).
    pub id: String,
    /// Basic-block label of the seed.
    pub block: String,
    /// Printed name of the seed site (diagnostic only; `inst` is the
    /// stable coordinate).
    pub site: String,
    /// Stable instruction index of the seed root.
    pub inst: u64,
    /// `store` or `reduction`.
    pub seed_kind: String,
    /// Lanes in the seed bundle.
    pub width: u64,
    /// Whether the bundle was vectorized.
    pub vectorized: bool,
    /// Remark reason code.
    pub reason: String,
    /// Predicted cost delta (negative = saving); `None` when no costable
    /// graph was built.
    pub cost: Option<i64>,
    /// Free-form remark detail.
    pub detail: String,
    /// Nanoseconds spent inside this decision's profiler span (graph
    /// build through codegen). Deterministic under the virtual clock.
    pub compile_ns: u64,
    /// Exact native execution count of the instructions this decision
    /// emitted, from an instrumented JIT run; `None` when the decision
    /// emitted no code or no native measurement ran.
    pub native_count: Option<u64>,
    /// Measured native nanoseconds attributed to this decision's
    /// instructions (function wall time apportioned by executed code
    /// bytes); `None` alongside `native_count`.
    pub native_ns: Option<u64>,
    /// Decision-stamped DOT source of the final graph; empty when the
    /// decision produced no graph (e.g. too-narrow reductions).
    pub dot: String,
}

/// One function's attributed decisions plus its dynamic outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionAttrib {
    /// Compilation unit (kernel or module name) the function came from.
    pub unit: String,
    /// Function name, without the `@` sigil.
    pub function: String,
    /// One row per decision, pass consideration order.
    pub decisions: Vec<DecisionRow>,
    /// Sum of committed graph costs (negative = predicted saving).
    pub predicted_cost: i64,
    /// Achieved dynamic cycles of the vectorized build (0 = not run).
    pub cycles: u64,
    /// Dynamic cycles of the scalar `o3` baseline (0 = not run).
    pub o3_cycles: u64,
    /// Dynamic instructions of the vectorized build.
    pub dyn_insts: u64,
    /// Vector ops executed dynamically.
    pub vector_ops: u64,
    /// Scalar ops executed dynamically.
    pub scalar_ops: u64,
    /// Mean occupied lanes per vector op, when any vector op ran.
    pub mean_lanes: Option<f64>,
    /// Compile-time stage breakdown (microseconds), [`Stage::ALL`] order.
    pub stages_us: Vec<(String, f64)>,
}

impl FunctionAttrib {
    /// `unit/@function`, the join key used by [`diff`].
    pub fn key(&self) -> String {
        format!("{}/@{}", self.unit, self.function)
    }

    /// Achieved speedup over the scalar baseline, when both ran.
    pub fn speedup(&self) -> Option<f64> {
        if self.cycles > 0 && self.o3_cycles > 0 {
            Some(self.o3_cycles as f64 / self.cycles as f64)
        } else {
            None
        }
    }
}

/// The whole attribution report.
#[derive(Debug, Clone, PartialEq)]
pub struct AttribReport {
    /// Pass code the run used (`slp`, `lslp`, `snslp`).
    pub mode: String,
    /// One entry per function, unit order.
    pub functions: Vec<FunctionAttrib>,
}

/// Dynamic outcome of one function, keyed by the interpreter's
/// per-function result (`ExecResult::function`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DynSummary {
    /// Cycles of the vectorized build.
    pub cycles: u64,
    /// Cycles of the scalar `o3` baseline.
    pub o3_cycles: u64,
    /// Dynamic instructions of the vectorized build.
    pub dyn_insts: u64,
    /// Vector ops executed.
    pub vector_ops: u64,
    /// Scalar ops executed.
    pub scalar_ops: u64,
    /// Mean occupied lanes per vector op.
    pub mean_lanes: Option<f64>,
}

// ---------------------------------------------------------------------
// The join pass.
// ---------------------------------------------------------------------

/// Joins one function's pass report against the profiler spans and an
/// optional dynamic run. Every remark becomes one [`DecisionRow`]; the
/// graph snapshot comes from the [`GraphStats`](snslp_core::GraphStats)
/// entry carrying the same [`DecisionId`], the compile time from the
/// `decision` profiler span labelled with it, and the native columns
/// from an instrumented hotness run
/// ([`decision_hot`](crate::hot::decision_hot)), when one ran.
pub fn attrib_function(
    unit: &str,
    report: &FunctionReport,
    profile: &Profile,
    dyn_run: Option<&DynSummary>,
    native: Option<&BTreeMap<String, (u64, u64)>>,
) -> FunctionAttrib {
    // Per-decision compile time: sum over `decision` spans by label.
    let mut span_ns: BTreeMap<&str, u64> = BTreeMap::new();
    for track in &profile.tracks {
        for ev in &track.events {
            if ev.name == "decision" {
                if let Some(label) = &ev.label {
                    *span_ns.entry(label).or_default() += ev.dur_ns;
                }
            }
        }
    }
    // Per-decision graph snapshot.
    let dots: BTreeMap<String, &str> = report
        .graphs
        .iter()
        .map(|g| (g.decision.render(), g.dot.as_str()))
        .collect();
    let decisions = report
        .remarks
        .iter()
        .map(|r| {
            let id = r.decision.render();
            let hot = native.and_then(|m| m.get(&id));
            DecisionRow {
                block: r.block.clone(),
                site: r.site.clone(),
                inst: u64::from(r.inst),
                seed_kind: r.seed_kind.clone(),
                width: r.width as u64,
                vectorized: r.vectorized,
                reason: r.reason.code().to_string(),
                cost: r.cost,
                detail: r.detail.clone(),
                compile_ns: span_ns.get(id.as_str()).copied().unwrap_or(0),
                native_count: hot.map(|&(count, _)| count),
                native_ns: hot.map(|&(_, ns)| ns),
                dot: dots.get(&id).copied().unwrap_or("").to_string(),
                id,
            }
        })
        .collect();
    let stages_us = Stage::ALL
        .iter()
        .map(|&s| {
            (
                s.name().to_string(),
                round3(report.metrics.stage_nanos(s) as f64 / 1e3),
            )
        })
        .collect();
    let dyn_run = dyn_run.cloned().unwrap_or_default();
    FunctionAttrib {
        unit: unit.to_string(),
        function: report.function.clone(),
        decisions,
        predicted_cost: report.predicted_cost(),
        cycles: dyn_run.cycles,
        o3_cycles: dyn_run.o3_cycles,
        dyn_insts: dyn_run.dyn_insts,
        vector_ops: dyn_run.vector_ops,
        scalar_ops: dyn_run.scalar_ops,
        mean_lanes: dyn_run.mean_lanes,
        stages_us,
    }
}

/// Runs the full attribution pipeline for one kernel under `cfg`: a
/// profiled pass run with graph DOTs retained, plus interpreted dynamic
/// runs of the vectorized build and the scalar `o3` baseline.
///
/// Temporarily enables the `Prof` facet on a clean profiler store and
/// restores the previous mask; callers running concurrently with other
/// facet users must serialize externally (tests take a lock).
///
/// # Panics
///
/// Panics if the kernel fails to compile or interpret — both indicate a
/// bug in the reproduction, not in inputs.
pub fn attrib_kernel(kernel: &snslp_kernels::Kernel, cfg: &SlpConfig) -> FunctionAttrib {
    let prev = snslp_trace::set_facets(snslp_trace::facets() | Facet::Prof as u32);
    snslp_trace::prof::clear();
    let mut cfg = cfg.clone();
    cfg.keep_graph_dots = true;
    let mut f = kernel.build();
    let report = run_slp(&mut f, &cfg);
    let profile = snslp_trace::prof::take_profile();
    snslp_trace::set_facets(prev);

    let model = CostModel::default();
    let args = kernel.args(kernel.default_iters);
    // Native hotness join: an instrumented JIT run (when the host has
    // one) attributes exact execution counts and measured nanoseconds
    // to each decision's emitted instructions. The wall measurement
    // uses the trace clock, so report goldens stay byte-stable under
    // the virtual clock.
    let native = crate::hot::native_hot_timed(&f, &args, crate::hot::decision_map(&report))
        .map(|(prof, wall_ns)| crate::hot::decision_hot(&prof, wall_ns));
    let out = run_with_args(&f, &args, &model, &ExecOptions::default())
        .unwrap_or_else(|e| panic!("kernel {} failed to run: {e:?}", kernel.name));
    let mut o3f = kernel.build();
    optimize_o3(&mut o3f);
    let o3 = run_with_args(&o3f, &args, &model, &ExecOptions::default())
        .unwrap_or_else(|e| panic!("kernel {} (o3) failed to run: {e:?}", kernel.name));
    // The interpreter keys its result by function; the pass report must
    // describe the same function or the join is meaningless.
    assert_eq!(out.exec.function, report.function);
    let dyn_run = DynSummary {
        cycles: out.exec.cycles,
        o3_cycles: o3.exec.cycles,
        dyn_insts: out.exec.dyn_insts,
        vector_ops: out.exec.profile.vector_ops,
        scalar_ops: out.exec.profile.scalar_ops,
        mean_lanes: out.exec.profile.mean_lanes(),
    };
    attrib_function(
        kernel.name,
        &report,
        &profile,
        Some(&dyn_run),
        native.as_ref(),
    )
}

/// Builds the attribution report over the whole kernel registry under
/// `cfg` via [`attrib_kernel`].
pub fn collect_kernel_attrib(cfg: &SlpConfig) -> AttribReport {
    AttribReport {
        mode: mode_code(cfg.mode).to_string(),
        functions: snslp_kernels::registry()
            .iter()
            .map(|kernel| attrib_kernel(kernel, cfg))
            .collect(),
    }
}

// ---------------------------------------------------------------------
// JSON emission and the strict reader.
// ---------------------------------------------------------------------

impl AttribReport {
    /// Renders the report as pretty `snslp-report/v1` JSON.
    pub fn to_json(&self) -> String {
        let functions = self
            .functions
            .iter()
            .map(|f| {
                let decisions = f
                    .decisions
                    .iter()
                    .map(|d| {
                        Json::Obj(vec![
                            ("id".to_string(), Json::Str(d.id.clone())),
                            ("block".to_string(), Json::Str(d.block.clone())),
                            ("site".to_string(), Json::Str(d.site.clone())),
                            ("inst".to_string(), Json::Num(d.inst as f64)),
                            ("seed".to_string(), Json::Str(d.seed_kind.clone())),
                            ("width".to_string(), Json::Num(d.width as f64)),
                            (
                                "action".to_string(),
                                Json::Str(action_str(d.vectorized).to_string()),
                            ),
                            ("reason".to_string(), Json::Str(d.reason.clone())),
                            (
                                "cost".to_string(),
                                match d.cost {
                                    Some(c) => Json::Num(c as f64),
                                    None => Json::Null,
                                },
                            ),
                            ("detail".to_string(), Json::Str(d.detail.clone())),
                            ("compile_ns".to_string(), Json::Num(d.compile_ns as f64)),
                            (
                                "native_count".to_string(),
                                match d.native_count {
                                    Some(c) => Json::Num(c as f64),
                                    None => Json::Null,
                                },
                            ),
                            (
                                "native_ns".to_string(),
                                match d.native_ns {
                                    Some(ns) => Json::Num(ns as f64),
                                    None => Json::Null,
                                },
                            ),
                            ("dot".to_string(), Json::Str(d.dot.clone())),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("unit".to_string(), Json::Str(f.unit.clone())),
                    ("function".to_string(), Json::Str(f.function.clone())),
                    (
                        "predicted_cost".to_string(),
                        Json::Num(f.predicted_cost as f64),
                    ),
                    ("cycles".to_string(), Json::Num(f.cycles as f64)),
                    ("o3_cycles".to_string(), Json::Num(f.o3_cycles as f64)),
                    ("dyn_insts".to_string(), Json::Num(f.dyn_insts as f64)),
                    ("vector_ops".to_string(), Json::Num(f.vector_ops as f64)),
                    ("scalar_ops".to_string(), Json::Num(f.scalar_ops as f64)),
                    (
                        "mean_lanes".to_string(),
                        match f.mean_lanes {
                            Some(l) => Json::Num(round3(l)),
                            None => Json::Null,
                        },
                    ),
                    (
                        "stages_us".to_string(),
                        Json::Obj(
                            f.stages_us
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                    ("decisions".to_string(), Json::Arr(decisions)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(REPORT_SCHEMA.to_string())),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            ("functions".to_string(), Json::Arr(functions)),
        ])
        .render()
    }

    /// Parses and validates a report document: schema tag, required
    /// fields, parseable and unique decision ids per function, plausible
    /// numbers.
    pub fn from_json(text: &str) -> Result<AttribReport, String> {
        let doc = Json::parse(text)?;
        check_schema(&doc, REPORT_SCHEMA)?;
        let mode = str_field(&doc, "report", "mode")?;
        let mut functions = Vec::new();
        for row in doc
            .get("functions")
            .and_then(Json::as_arr)
            .ok_or("missing functions array")?
        {
            let unit = str_field(row, "function row", "unit")?;
            let function = str_field(row, "function row", "function")?;
            let ctx = format!("{unit}/@{function}");
            let predicted_cost = int_field(row, &ctx, "predicted_cost")?;
            let cycles = count_field(row, &ctx, "cycles")?;
            let o3_cycles = count_field(row, &ctx, "o3_cycles")?;
            let dyn_insts = count_field(row, &ctx, "dyn_insts")?;
            let vector_ops = count_field(row, &ctx, "vector_ops")?;
            let scalar_ops = count_field(row, &ctx, "scalar_ops")?;
            let mean_lanes = match row.get("mean_lanes") {
                Some(Json::Null) | None => None,
                Some(v) => {
                    let l = v
                        .as_num()
                        .filter(|l| l.is_finite() && *l >= 1.0)
                        .ok_or(format!("{ctx}: implausible mean_lanes"))?;
                    Some(l)
                }
            };
            let Some(Json::Obj(stage_members)) = row.get("stages_us") else {
                return Err(format!("{ctx}: missing stages_us object"));
            };
            let mut stages_us = Vec::new();
            for (name, v) in stage_members {
                let us = v
                    .as_num()
                    .filter(|us| us.is_finite() && *us >= 0.0)
                    .ok_or(format!("{ctx}: implausible stage time for `{name}`"))?;
                stages_us.push((name.clone(), us));
            }
            let mut decisions = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            for d in row
                .get("decisions")
                .and_then(Json::as_arr)
                .ok_or(format!("{ctx}: missing decisions array"))?
            {
                let id = str_field(d, &ctx, "id")?;
                let parsed = DecisionId::parse(&id).map_err(|e| format!("{ctx}: {e}"))?;
                if parsed.function != function {
                    return Err(format!(
                        "{ctx}: decision `{id}` belongs to another function"
                    ));
                }
                if !seen.insert(id.clone()) {
                    return Err(format!("{ctx}: duplicate decision id `{id}`"));
                }
                let action = str_field(d, &ctx, "action")?;
                let vectorized = match action.as_str() {
                    "vectorized" => true,
                    "missed" => false,
                    other => return Err(format!("{ctx}: unknown action `{other}`")),
                };
                let cost = match d.get("cost") {
                    Some(Json::Null) | None => None,
                    Some(v) => Some(
                        v.as_num()
                            .filter(|c| c.is_finite() && c.fract() == 0.0)
                            .ok_or(format!("{ctx}: implausible cost on `{id}`"))?
                            as i64,
                    ),
                };
                let native_count = opt_count_field(d, &ctx, "native_count", &id)?;
                let native_ns = opt_count_field(d, &ctx, "native_ns", &id)?;
                if native_count.is_some() != native_ns.is_some() {
                    return Err(format!(
                        "{ctx}: `{id}` has only one of native_count/native_ns"
                    ));
                }
                decisions.push(DecisionRow {
                    id,
                    block: str_field(d, &ctx, "block")?,
                    site: str_field(d, &ctx, "site")?,
                    inst: count_field(d, &ctx, "inst")?,
                    seed_kind: str_field(d, &ctx, "seed")?,
                    width: count_field(d, &ctx, "width")?,
                    vectorized,
                    reason: str_field(d, &ctx, "reason")?,
                    cost,
                    detail: str_field(d, &ctx, "detail")?,
                    compile_ns: count_field(d, &ctx, "compile_ns")?,
                    native_count,
                    native_ns,
                    dot: str_field(d, &ctx, "dot")?,
                });
            }
            functions.push(FunctionAttrib {
                unit,
                function,
                decisions,
                predicted_cost,
                cycles,
                o3_cycles,
                dyn_insts,
                vector_ops,
                scalar_ops,
                mean_lanes,
                stages_us,
            });
        }
        if functions.is_empty() {
            return Err("report has no functions".to_string());
        }
        Ok(AttribReport { mode, functions })
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let decisions: usize = self.functions.iter().map(|f| f.decisions.len()).sum();
        let vectorized: usize = self
            .functions
            .iter()
            .flat_map(|f| &f.decisions)
            .filter(|d| d.vectorized)
            .count();
        format!(
            "snslp-report/v1 [{}]: {} functions, {decisions} decisions ({vectorized} vectorized)",
            self.mode,
            self.functions.len(),
        )
    }
}

fn action_str(vectorized: bool) -> &'static str {
    if vectorized {
        "vectorized"
    } else {
        "missed"
    }
}

fn str_field(obj: &Json, ctx: &str, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or(format!("{ctx}: missing string field `{key}`"))
}

fn count_field(obj: &Json, ctx: &str, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as u64)
        .ok_or(format!("{ctx}: missing or implausible count `{key}`"))
}

fn opt_count_field(obj: &Json, ctx: &str, key: &str, id: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        Some(Json::Null) | None => Ok(None),
        Some(v) => v
            .as_num()
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .map(|n| Some(n as u64))
            .ok_or(format!("{ctx}: implausible {key} on `{id}`")),
    }
}

fn int_field(obj: &Json, ctx: &str, key: &str) -> Result<i64, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .filter(|n| n.is_finite() && n.fract() == 0.0)
        .map(|n| n as i64)
        .ok_or(format!("{ctx}: missing or implausible integer `{key}`"))
}

// ---------------------------------------------------------------------
// Regression root-causing.
// ---------------------------------------------------------------------

/// One decision whose outcome differs between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionDelta {
    /// Compilation unit (kernel) of the function.
    pub unit: String,
    /// Function name.
    pub function: String,
    /// The decision anchor, rendered.
    pub id: String,
    /// `vectorized` / `missed` in the base run (`absent` if new).
    pub base_action: String,
    /// `vectorized` / `missed` in the new run (`absent` if removed).
    pub new_action: String,
    /// Reason code in the base run.
    pub base_reason: String,
    /// Reason code in the new run.
    pub new_reason: String,
    /// Predicted cost in the base run.
    pub base_cost: Option<i64>,
    /// Predicted cost in the new run.
    pub new_cost: Option<i64>,
    /// Cycle delta of the enclosing function (`new - base`; positive =
    /// the function got slower). All changed decisions of one function
    /// share its delta — the interpreter cannot split cycles per
    /// decision, so the function is the attribution granularity and the
    /// cost delta breaks ties within it.
    pub cycle_impact: i64,
}

impl DecisionDelta {
    /// Magnitude of the predicted-cost change, the intra-function rank.
    fn cost_shift(&self) -> i64 {
        (self.new_cost.unwrap_or(0) - self.base_cost.unwrap_or(0)).abs()
    }
}

/// The root-cause report of [`diff`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttribDiff {
    /// Decisions whose outcome changed, ranked by cycle impact
    /// (regressions first), then by predicted-cost shift.
    pub changed: Vec<DecisionDelta>,
    /// Function keys present only in the base run.
    pub only_base: Vec<String>,
    /// Function keys present only in the new run.
    pub only_new: Vec<String>,
}

impl AttribDiff {
    /// No differences at all (a self-diff must be clean).
    pub fn is_clean(&self) -> bool {
        self.changed.is_empty() && self.only_base.is_empty() && self.only_new.is_empty()
    }

    /// Renders the ranked root causes, most impactful first.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        if self.is_clean() {
            out.push_str("no decision changes\n");
            return out;
        }
        for key in &self.only_base {
            let _ = writeln!(out, "function only in base run: {key}");
        }
        for key in &self.only_new {
            let _ = writeln!(out, "function only in new run: {key}");
        }
        let _ = writeln!(
            out,
            "{} changed decision(s), ranked by cycle impact:",
            self.changed.len()
        );
        for (i, d) in self.changed.iter().take(top_n).enumerate() {
            let _ = writeln!(
                out,
                "  {}. {}/@{} {}: {} -> {} ({} -> {}), cost {} -> {}, \
                 function cycles {:+}",
                i + 1,
                d.unit,
                d.function,
                d.id,
                d.base_action,
                d.new_action,
                d.base_reason,
                d.new_reason,
                fmt_cost(d.base_cost),
                fmt_cost(d.new_cost),
                d.cycle_impact,
            );
        }
        if self.changed.len() > top_n {
            let _ = writeln!(out, "  ... and {} more", self.changed.len() - top_n);
        }
        out
    }
}

fn fmt_cost(c: Option<i64>) -> String {
    match c {
        Some(c) => c.to_string(),
        None => "-".to_string(),
    }
}

fn fmt_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "-".to_string(),
    }
}

/// Root-causes the difference between two attribution runs: for every
/// function present in both, decisions whose `(action, reason, cost)`
/// outcome changed (or that appear/disappear) become [`DecisionDelta`]s
/// carrying the function's achieved cycle delta, ranked regressions
/// first.
pub fn diff(base: &AttribReport, new: &AttribReport) -> AttribDiff {
    let base_fns: BTreeMap<String, &FunctionAttrib> =
        base.functions.iter().map(|f| (f.key(), f)).collect();
    let new_fns: BTreeMap<String, &FunctionAttrib> =
        new.functions.iter().map(|f| (f.key(), f)).collect();
    let mut out = AttribDiff::default();
    for key in base_fns.keys() {
        if !new_fns.contains_key(key) {
            out.only_base.push(key.clone());
        }
    }
    for key in new_fns.keys() {
        if !base_fns.contains_key(key) {
            out.only_new.push(key.clone());
        }
    }
    for (key, bf) in &base_fns {
        let Some(nf) = new_fns.get(key) else { continue };
        let cycle_impact = nf.cycles as i64 - bf.cycles as i64;
        let bd: BTreeMap<&str, &DecisionRow> =
            bf.decisions.iter().map(|d| (d.id.as_str(), d)).collect();
        let nd: BTreeMap<&str, &DecisionRow> =
            nf.decisions.iter().map(|d| (d.id.as_str(), d)).collect();
        let mut ids: Vec<&str> = bd.keys().chain(nd.keys()).copied().collect();
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            let (b, n) = (bd.get(id), nd.get(id));
            let changed = match (b, n) {
                (Some(b), Some(n)) => {
                    b.vectorized != n.vectorized || b.reason != n.reason || b.cost != n.cost
                }
                _ => true,
            };
            if !changed {
                continue;
            }
            out.changed.push(DecisionDelta {
                unit: bf.unit.clone(),
                function: bf.function.clone(),
                id: id.to_string(),
                base_action: b.map_or("absent", |d| action_str(d.vectorized)).to_string(),
                new_action: n.map_or("absent", |d| action_str(d.vectorized)).to_string(),
                base_reason: b.map_or(String::new(), |d| d.reason.clone()),
                new_reason: n.map_or(String::new(), |d| d.reason.clone()),
                base_cost: b.and_then(|d| d.cost),
                new_cost: n.and_then(|d| d.cost),
                cycle_impact,
            });
        }
    }
    // Regressions (positive cycle deltas) first, largest first; within a
    // function the biggest predicted-cost shift leads; the id breaks the
    // final tie so the order is total and deterministic.
    out.changed.sort_by(|a, b| {
        b.cycle_impact
            .cmp(&a.cycle_impact)
            .then(b.cost_shift().cmp(&a.cost_shift()))
            .then(a.id.cmp(&b.id))
    });
    out
}

// ---------------------------------------------------------------------
// DOT -> inline SVG.
// ---------------------------------------------------------------------

struct DotNode {
    index: usize,
    shape: String,
    color: String,
    lines: Vec<String>,
}

/// Renders one of our own DOT graph dumps as an inline SVG: a layered
/// top-down layout (roots above their operands), boxes per node, edges
/// labelled with the operand index. This is not a general DOT renderer —
/// it parses exactly the line format [`snslp_core::graph_to_dot_tagged`]
/// emits, which is all the report ever embeds.
pub fn dot_to_svg(dot: &str) -> String {
    let mut nodes: Vec<DotNode> = Vec::new();
    let mut edges: Vec<(usize, usize, String)> = Vec::new();
    for line in dot.lines() {
        let line = line.trim();
        if let Some((from, rest)) = line.strip_prefix('n').and_then(|l| l.split_once(" -> n")) {
            // `n0 -> n1 [label="0"];`
            let (Ok(from), Some((to, rest))) = (from.parse::<usize>(), rest.split_once(" ["))
            else {
                continue;
            };
            let Ok(to) = to.parse::<usize>() else {
                continue;
            };
            let label = extract_label(rest).unwrap_or_default();
            edges.push((from, to, label));
        } else if let Some(rest) = line.strip_prefix('n') {
            // `n3 [shape=box, color=blue, label="..."];`
            let Some((index, rest)) = rest.split_once(" [") else {
                continue;
            };
            let Ok(index) = index.parse::<usize>() else {
                continue;
            };
            let attr = |key: &str| {
                rest.split(", ")
                    .find_map(|kv| kv.strip_prefix(key))
                    .map(|v| v.trim_end_matches("];").to_string())
            };
            let Some(label) = extract_label(rest) else {
                continue;
            };
            nodes.push(DotNode {
                index,
                shape: attr("shape=").unwrap_or_else(|| "box".to_string()),
                color: attr("color=").unwrap_or_else(|| "black".to_string()),
                lines: label.split('\n').map(str::to_string).collect(),
            });
        }
    }
    if nodes.is_empty() {
        return String::new();
    }
    nodes.sort_by_key(|n| n.index);
    let max_index = nodes.last().map(|n| n.index).unwrap_or(0);

    // Layer = longest path from a root (a node nothing points at).
    // Edges point node -> operand, so operands sit below their users.
    let mut depth = vec![0usize; max_index + 1];
    for _ in 0..=nodes.len() {
        let mut settled = true;
        for &(from, to, _) in &edges {
            if from <= max_index && to <= max_index && depth[to] < depth[from] + 1 {
                depth[to] = depth[from] + 1;
                settled = false;
            }
        }
        if settled {
            break;
        }
    }

    // Integer-only geometry keeps the output byte-stable.
    const CHAR_W: usize = 8;
    const LINE_H: usize = 16;
    const PAD: usize = 8;
    const GAP_X: usize = 28;
    const GAP_Y: usize = 48;
    let box_w = |n: &DotNode| n.lines.iter().map(String::len).max().unwrap_or(1) * CHAR_W + 2 * PAD;
    let box_h = |n: &DotNode| n.lines.len() * LINE_H + 2 * PAD;

    let max_depth = nodes.iter().map(|n| depth[n.index]).max().unwrap_or(0);
    let mut row_h = vec![0usize; max_depth + 1];
    for n in &nodes {
        row_h[depth[n.index]] = row_h[depth[n.index]].max(box_h(n));
    }
    let mut row_y = vec![0usize; max_depth + 1];
    let mut y = GAP_Y / 2;
    for d in 0..=max_depth {
        row_y[d] = y;
        y += row_h[d] + GAP_Y;
    }
    let mut pos = vec![(0usize, 0usize); max_index + 1]; // top-left x, y
    let mut row_x = vec![GAP_X / 2; max_depth + 1];
    let mut total_w = 0usize;
    for n in &nodes {
        let d = depth[n.index];
        pos[n.index] = (row_x[d], row_y[d]);
        row_x[d] += box_w(n) + GAP_X;
        total_w = total_w.max(row_x[d]);
    }
    let total_h = y - GAP_Y / 2;

    let mut svg = String::new();
    let _ = write!(
        svg,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{total_w}\" height=\"{total_h}\" \
         viewBox=\"0 0 {total_w} {total_h}\" font-family=\"monospace\" font-size=\"12\">"
    );
    for &(from, to, ref label) in &edges {
        if from > max_index || to > max_index {
            continue;
        }
        let (fx, fy) = pos[from];
        let (tx, ty) = pos[to];
        let fn_ref = &nodes[nodes.binary_search_by_key(&from, |n| n.index).unwrap_or(0)];
        let tn_ref = &nodes[nodes.binary_search_by_key(&to, |n| n.index).unwrap_or(0)];
        let (x1, y1) = (fx + box_w(fn_ref) / 2, fy + box_h(fn_ref));
        let (x2, y2) = (tx + box_w(tn_ref) / 2, ty);
        let _ = write!(
            svg,
            "<line x1=\"{x1}\" y1=\"{y1}\" x2=\"{x2}\" y2=\"{y2}\" stroke=\"#888\"/>\
             <text x=\"{}\" y=\"{}\" fill=\"#888\">{}</text>",
            (x1 + x2) / 2 + 3,
            (y1 + y2) / 2,
            xml_escape(label),
        );
    }
    for n in &nodes {
        let (x, y) = pos[n.index];
        let (w, h) = (box_w(n), box_h(n));
        let rx = if n.shape == "oval" { h / 2 } else { 3 };
        let _ = write!(
            svg,
            "<rect x=\"{x}\" y=\"{y}\" width=\"{w}\" height=\"{h}\" rx=\"{rx}\" \
             fill=\"white\" stroke=\"{}\"/>",
            xml_escape(&n.color),
        );
        for (i, line) in n.lines.iter().enumerate() {
            let _ = write!(
                svg,
                "<text x=\"{}\" y=\"{}\" fill=\"{}\">{}</text>",
                x + PAD,
                y + PAD + (i + 1) * LINE_H - 4,
                xml_escape(&n.color),
                xml_escape(line),
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Extracts and unescapes the `label="..."` attribute value from a DOT
/// attribute list. DOT `\n` escapes become real newlines.
fn extract_label(attrs: &str) -> Option<String> {
    let rest = attrs.split_once("label=\"")?.1;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

// ---------------------------------------------------------------------
// The single-file HTML explorer.
// ---------------------------------------------------------------------

/// Renders the report as a self-contained HTML explorer: no external
/// scripts, styles or fonts, so the file works offline and as a CI
/// artifact. Collapsible per-function sections hold the decision table;
/// each decision expands to its graph snapshot (inline SVG) and remark
/// detail. Output is a pure function of the report, so it is byte-stable
/// whenever the report is (virtual clock).
pub fn render_html(report: &AttribReport) -> String {
    let mut h = String::new();
    h.push_str("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(
        h,
        "<title>snslp vectorization report [{}]</title>",
        report.mode
    );
    h.push_str(
        "<style>\n\
         body{font-family:monospace;margin:1.5em;background:#fafafa;color:#222}\n\
         h1{font-size:1.3em}\n\
         table{border-collapse:collapse;margin:.5em 0}\n\
         th,td{border:1px solid #ccc;padding:2px 8px;text-align:left}\n\
         th{background:#eee}\n\
         details{margin:.6em 0}\n\
         details.fn>summary{font-weight:bold;cursor:pointer}\n\
         details.dec{margin:.2em 0 .2em 1em}\n\
         .vec{color:#05691d}\n\
         .miss{color:#a11}\n\
         .num{text-align:right}\n\
         svg{background:white;border:1px solid #ddd;margin:.4em 0}\n\
         </style>\n</head>\n<body>\n",
    );
    let decisions: usize = report.functions.iter().map(|f| f.decisions.len()).sum();
    let vectorized: usize = report
        .functions
        .iter()
        .flat_map(|f| &f.decisions)
        .filter(|d| d.vectorized)
        .count();
    let _ = write!(
        h,
        "<h1>snslp vectorization report</h1>\n\
         <p>schema {REPORT_SCHEMA} &middot; mode <b>{}</b> &middot; {} functions &middot; \
         {decisions} decisions ({vectorized} vectorized)</p>\n",
        xml_escape(&report.mode),
        report.functions.len(),
    );
    for f in &report.functions {
        let _ = write!(
            h,
            "<details class=\"fn\" open>\n<summary>{} &middot; {}/{} vectorized",
            xml_escape(&f.key()),
            f.decisions.iter().filter(|d| d.vectorized).count(),
            f.decisions.len(),
        );
        if let Some(s) = f.speedup() {
            let _ = write!(h, " &middot; {:.2}x over O3", s);
        }
        h.push_str("</summary>\n");
        let _ = write!(
            h,
            "<p>predicted cost {:+} &middot; cycles {} (O3 {}) &middot; dyn insts {} &middot; \
             {} vector / {} scalar ops",
            f.predicted_cost, f.cycles, f.o3_cycles, f.dyn_insts, f.vector_ops, f.scalar_ops,
        );
        if let Some(l) = f.mean_lanes {
            let _ = write!(h, " &middot; mean lanes {:.2}", l);
        }
        h.push_str("</p>\n<p>compile stages (&micro;s):");
        for (name, us) in &f.stages_us {
            let _ = write!(h, " {}={us}", xml_escape(name));
        }
        h.push_str(
            "</p>\n<table>\n<tr><th>decision</th><th>seed</th><th>site</th>\
                    <th>inst</th><th>width</th><th>action</th><th>reason</th>\
                    <th>cost</th><th>compile &micro;s</th><th>native ops</th>\
                    <th>native ns</th></tr>\n",
        );
        for d in &f.decisions {
            let _ = writeln!(
                h,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"{}\">{}</td><td>{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}</td></tr>",
                xml_escape(&d.id),
                xml_escape(&d.seed_kind),
                xml_escape(&d.site),
                d.inst,
                d.width,
                if d.vectorized { "vec" } else { "miss" },
                action_str(d.vectorized),
                xml_escape(&d.reason),
                fmt_cost(d.cost),
                d.compile_ns / 1_000,
                fmt_opt(d.native_count),
                fmt_opt(d.native_ns),
            );
        }
        h.push_str("</table>\n");
        for d in &f.decisions {
            let _ = write!(
                h,
                "<details class=\"dec\">\n<summary>graph for {}</summary>\n",
                xml_escape(&d.id),
            );
            if !d.detail.is_empty() {
                let _ = writeln!(h, "<p>detail: {}</p>", xml_escape(&d.detail));
            }
            let svg = dot_to_svg(&d.dot);
            if svg.is_empty() {
                h.push_str("<p>(no graph was built for this decision)</p>\n");
            } else {
                h.push_str(&svg);
                h.push('\n');
            }
            h.push_str("</details>\n");
        }
        h.push_str("</details>\n");
    }
    h.push_str("</body>\n</html>\n");
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttribReport {
        AttribReport {
            mode: "snslp".to_string(),
            functions: vec![FunctionAttrib {
                unit: "motiv_leaf".to_string(),
                function: "motiv_leaf".to_string(),
                decisions: vec![DecisionRow {
                    id: "@motiv_leaf/entry/s0#i12".to_string(),
                    block: "entry".to_string(),
                    site: "%t12".to_string(),
                    inst: 12,
                    seed_kind: "store".to_string(),
                    width: 2,
                    vectorized: true,
                    reason: "profitable".to_string(),
                    cost: Some(-6),
                    detail: String::new(),
                    compile_ns: 42_000,
                    native_count: Some(16),
                    native_ns: Some(750),
                    dot: "digraph \"g\" {\n  n0 [shape=box, color=blue, \
                          label=\"#0 Store\\n[%t12, %t13]\"];\n  n1 [shape=box, color=black, \
                          label=\"#1 Vector\\n[%t8, %t9]\"];\n  n0 -> n1 [label=\"0\"];\n}\n"
                        .to_string(),
                }],
                predicted_cost: -6,
                cycles: 900,
                o3_cycles: 1200,
                dyn_insts: 300,
                vector_ops: 40,
                scalar_ops: 200,
                mean_lanes: Some(2.0),
                stages_us: vec![("cleanup".to_string(), 12.5)],
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let r = sample();
        let back = AttribReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn strict_reader_rejects_malformed_documents() {
        assert!(AttribReport::from_json("{").is_err());
        assert!(AttribReport::from_json(r#"{"schema": "nope/v9"}"#).is_err());
        let err = AttribReport::from_json(r#"{"schema": "nope/v9"}"#).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        // A duplicate decision id is a join hazard and must be rejected.
        let mut r = sample();
        let d = r.functions[0].decisions[0].clone();
        r.functions[0].decisions.push(d);
        assert!(AttribReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("duplicate decision id"));
        // A decision anchored to a different function cannot be joined.
        let mut r = sample();
        r.functions[0].decisions[0].id = "@other/entry/s0#i12".to_string();
        assert!(AttribReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("belongs to another function"));
        // The native columns come as a pair: a count without its time
        // (or vice versa) means a mangled join.
        let mut r = sample();
        r.functions[0].decisions[0].native_ns = None;
        assert!(AttribReport::from_json(&r.to_json())
            .unwrap_err()
            .contains("only one of native_count/native_ns"));
    }

    #[test]
    fn svg_renders_nodes_and_edges() {
        let svg = dot_to_svg(&sample().functions[0].decisions[0].dot);
        assert!(svg.starts_with("<svg"), "{svg}");
        assert!(svg.contains("#0 Store"), "{svg}");
        assert!(svg.contains("[%t12, %t13]"), "{svg}");
        assert!(svg.contains("<line"), "{svg}");
        // The operand sits one layer below its user.
        assert!(svg.ends_with("</svg>"));
        assert!(dot_to_svg("").is_empty());
    }

    #[test]
    fn html_contains_the_decision_table_and_svg() {
        let html = render_html(&sample());
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("@motiv_leaf/entry/s0#i12"));
        assert!(html.contains("profitable"));
        assert!(html.contains("<svg"));
        assert!(html.contains("1.33x over O3"));
        // The measured-native columns render (with values when a native
        // hotness run joined).
        assert!(html.contains("<th>native ns</th>"));
        assert!(html.contains("<td class=\"num\">750</td>"));
        // Zero external references: self-contained by construction.
        assert!(!html.contains("http://") || html.contains("www.w3.org/2000/svg"));
        assert!(!html.contains("<script src"));
        assert!(!html.contains("<link"));
    }

    #[test]
    fn self_diff_is_clean_and_changes_are_ranked() {
        let base = sample();
        assert!(diff(&base, &base).is_clean());

        // Flip the decision to a cost rejection and slow the function.
        let mut nerfed = base.clone();
        nerfed.functions[0].decisions[0].vectorized = false;
        nerfed.functions[0].decisions[0].reason = "cost".to_string();
        nerfed.functions[0].decisions[0].cost = Some(4);
        nerfed.functions[0].cycles = 1200;
        let d = diff(&base, &nerfed);
        assert_eq!(d.changed.len(), 1);
        let top = &d.changed[0];
        assert_eq!(top.id, "@motiv_leaf/entry/s0#i12");
        assert_eq!(top.base_action, "vectorized");
        assert_eq!(top.new_action, "missed");
        assert_eq!(top.cycle_impact, 300);
        let text = d.render(5);
        assert!(text.contains("motiv_leaf/@motiv_leaf"), "{text}");
        assert!(text.contains("vectorized -> missed"), "{text}");
    }
}
