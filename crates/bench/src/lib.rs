//! # snslp-bench
//!
//! The measurement harness that regenerates every table and figure of the
//! SN-SLP paper's evaluation (§V). The `figures` binary prints the series;
//! the criterion benches under `benches/` measure wall-clock compile time
//! and kernel execution.
//!
//! All performance numbers are *simulated cycles* from the cost model's
//! execution view (see `snslp-cost`); compile times are wall-clock over
//! the actual pass implementation.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attrib;
pub mod dynstats;
pub mod hot;
pub mod json;
pub mod report;
pub mod servebench;
pub mod stats;
pub mod tracecheck;

use std::time::{Duration, Instant};

use snslp_core::{optimize_o3, run_slp, FunctionReport, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::{run_with_args, ArgSpec, DynProfile, ExecOptions};
use snslp_ir::Function;
use snslp_kernels::{Benchmark, Kernel};
use snslp_trace::{Counter, MetricsSnapshot};

use report::{CompileTimeReport, KernelTiming, Timing};

/// The three compiler configurations of the evaluation (§V): `O3` is all
/// vectorizers disabled.
pub const MODES: [Option<SlpMode>; 3] = [None, Some(SlpMode::Lslp), Some(SlpMode::SnSlp)];

/// All four pipelines of the dynamic-profile tables (Fig. 9/10
/// reproduction): the evaluation modes of [`MODES`] plus vanilla SLP, so
/// the dynstats report can show where plain SLP falls back to gathers.
pub const DYN_MODES: [Option<SlpMode>; 4] = [
    None,
    Some(SlpMode::Slp),
    Some(SlpMode::Lslp),
    Some(SlpMode::SnSlp),
];

/// Label for a configuration.
pub fn mode_label(mode: Option<SlpMode>) -> &'static str {
    match mode {
        None => "O3",
        Some(m) => m.label(),
    }
}

/// Per-configuration measurement of one kernel.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// Configuration (`None` = O3 baseline).
    pub mode: Option<SlpMode>,
    /// Simulated execution cycles.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub dyn_insts: u64,
    /// Pass report (`None` for O3).
    pub report: Option<FunctionReport>,
    /// Wall-clock compile time (cleanup + vectorizer).
    pub compile_time: Duration,
    /// Dynamic execution profile of the measured run.
    pub profile: DynProfile,
    /// Measured native wall-clock time of one run under the x86-64 JIT
    /// backend (minimum over [`WALL_REPEATS`] invocations), or `None`
    /// when the JIT declined the function or the platform has no native
    /// backend. The simulated `cycles` stay the headline number; this is
    /// the third calibration axis.
    pub wall_ns: Option<u64>,
    /// Measured native wall time split per opcode class
    /// ([`snslp_interp::OpClass::ALL`] order), apportioned by executed
    /// native code bytes from an exact instrumented-hotness run. `None`
    /// whenever `wall_ns` is — both need the native backend.
    pub class_ns: Option<[u64; 5]>,
}

/// All configurations of one kernel.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel descriptor.
    pub kernel: Kernel,
    /// One result per entry of [`MODES`].
    pub results: Vec<ModeResult>,
}

impl KernelRow {
    /// Result for a given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the mode was not measured.
    pub fn result(&self, mode: Option<SlpMode>) -> &ModeResult {
        self.results
            .iter()
            .find(|r| r.mode == mode)
            .expect("all MODES measured")
    }

    /// Speedup of `mode` over the O3 baseline (simulated cycles).
    pub fn speedup(&self, mode: Option<SlpMode>) -> f64 {
        self.result(None).cycles as f64 / self.result(mode).cycles as f64
    }
}

/// Timed native invocations per function; the minimum is reported, which
/// is the standard estimator for the noise-free wall time of a
/// deterministic computation.
pub const WALL_REPEATS: usize = 15;

/// Measures the native wall-clock time of one run of `f` on `args` under
/// the x86-64 JIT backend: compile once, then the minimum of
/// [`WALL_REPEATS`] timed invocations, each on freshly materialized
/// memory (identical layout to the interpreter run).
///
/// Returns `None` when the JIT declines the function, the platform has
/// no native backend, or execution traps — in all of those cases the
/// simulated-cycle axis remains the only number for this function.
pub fn native_wall_ns(f: &Function, args: &[ArgSpec]) -> Option<u64> {
    let native = snslp_jit::compile(f).ok()?.finalize().ok()?;
    let opts = ExecOptions::default();
    let mut best: Option<u64> = None;
    for _ in 0..WALL_REPEATS {
        let (mut mem, values) = snslp_jit::materialize_args(args);
        let start = Instant::now();
        let out = native.invoke(&values, &mut mem, &opts);
        let ns = start.elapsed().as_nanos() as u64;
        out.ok()?;
        best = Some(best.map_or(ns, |b| b.min(ns)));
    }
    best
}

/// Compiles `f` under `mode` (in place) and returns the pass report and
/// compile time.
pub fn compile(f: &mut Function, mode: Option<SlpMode>) -> (Option<FunctionReport>, Duration) {
    match mode {
        None => {
            let t = optimize_o3(f);
            (None, t)
        }
        Some(m) => {
            let report = run_slp(f, &SlpConfig::new(m));
            let t = report.elapsed;
            (Some(report), t)
        }
    }
}

/// Runs one kernel under every configuration, on `iters` iterations.
///
/// # Panics
///
/// Panics if compilation or interpretation fails — both indicate a bug in
/// the reproduction, not in inputs.
pub fn measure_kernel(kernel: &Kernel, iters: usize) -> KernelRow {
    measure_kernel_modes(kernel, iters, &MODES)
}

/// [`measure_kernel`] over an explicit set of configurations (the
/// dynstats report measures all four of [`DYN_MODES`]).
///
/// # Panics
///
/// Panics if compilation or interpretation fails.
pub fn measure_kernel_modes(kernel: &Kernel, iters: usize, modes: &[Option<SlpMode>]) -> KernelRow {
    let model = CostModel::default();
    let args = kernel.args(iters);
    let results = modes
        .iter()
        .map(|&mode| {
            let mut f = kernel.build();
            let (report, compile_time) = compile(&mut f, mode);
            let out = run_with_args(&f, &args, &model, &ExecOptions::default())
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", kernel.name, mode_label(mode)));
            let wall_ns = native_wall_ns(&f, &args);
            // Exact instrumented hotness: reconciles against the
            // interpreter's profile on every measured row (a mismatch is
            // a lowering bug) and apportions the measured wall time onto
            // opcode classes by executed native bytes.
            let decisions = report.as_ref().map(hot::decision_map).unwrap_or_default();
            let native = hot::native_hot(&f, &args, decisions);
            if let Some(h) = &native {
                h.reconcile(&out.exec.profile).unwrap_or_else(|e| {
                    panic!(
                        "{} [{}]: native hotness does not reconcile: {e}",
                        kernel.name,
                        mode_label(mode)
                    )
                });
            }
            let class_ns = match (&native, wall_ns) {
                (Some(h), Some(w)) => Some(hot::class_ns_split(h, w)),
                _ => None,
            };
            ModeResult {
                mode,
                cycles: out.exec.cycles,
                dyn_insts: out.exec.dyn_insts,
                report,
                compile_time,
                profile: out.exec.profile,
                wall_ns,
                class_ns,
            }
        })
        .collect();
    KernelRow {
        kernel: kernel.clone(),
        results,
    }
}

/// Per-configuration measurement of one whole-benchmark composite.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Benchmark descriptor.
    pub bench: Benchmark,
    /// One result per entry of [`MODES`] (cycles summed over all
    /// functions of the composite; reports merged).
    pub results: Vec<ModeResult>,
}

impl BenchRow {
    /// Result for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the mode was not measured.
    pub fn result(&self, mode: Option<SlpMode>) -> &ModeResult {
        self.results
            .iter()
            .find(|r| r.mode == mode)
            .expect("all MODES measured")
    }

    /// Speedup of `mode` over O3.
    pub fn speedup(&self, mode: Option<SlpMode>) -> f64 {
        self.result(None).cycles as f64 / self.result(mode).cycles as f64
    }

    /// Fraction of O3 cycles spent in the kernel function (dilution).
    pub fn kernel_share(&self) -> f64 {
        let model = CostModel::default();
        let fns = self.bench.functions();
        let mut kernel_cycles = 0u64;
        let mut total = 0u64;
        for (i, (mut f, args)) in fns.into_iter().enumerate() {
            optimize_o3(&mut f);
            let out =
                run_with_args(&f, &args, &model, &ExecOptions::default()).expect("composite runs");
            if i == 0 {
                kernel_cycles = out.exec.cycles;
            }
            total += out.exec.cycles;
        }
        kernel_cycles as f64 / total as f64
    }
}

/// Runs a whole-benchmark composite under every configuration.
///
/// # Panics
///
/// Panics if compilation or interpretation fails.
pub fn measure_benchmark(bench: &Benchmark) -> BenchRow {
    let model = CostModel::default();
    let results = MODES
        .iter()
        .map(|&mode| {
            let mut cycles = 0u64;
            let mut dyn_insts = 0u64;
            let mut compile_time = Duration::ZERO;
            let mut merged: Option<FunctionReport> = None;
            let mut profile = DynProfile::new();
            // Composite wall time is the sum over member functions; any
            // member the JIT declines voids the whole composite's wall
            // number (a partial sum would not be comparable).
            let mut wall_ns: Option<u64> = Some(0);
            for (mut f, args) in bench.functions() {
                let (report, t) = compile(&mut f, mode);
                compile_time += t;
                if let Some(r) = report {
                    match &mut merged {
                        None => merged = Some(r),
                        Some(m) => m.merge(r),
                    }
                }
                let out =
                    run_with_args(&f, &args, &model, &ExecOptions::default()).unwrap_or_else(|e| {
                        panic!("{} [{}] {}: {e}", bench.name, mode_label(mode), f.name())
                    });
                cycles += out.exec.cycles;
                dyn_insts += out.exec.dyn_insts;
                profile.merge(&out.exec.profile);
                wall_ns = match (wall_ns, native_wall_ns(&f, &args)) {
                    (Some(acc), Some(w)) => Some(acc + w),
                    _ => None,
                };
            }
            ModeResult {
                mode,
                cycles,
                dyn_insts,
                report: merged,
                compile_time,
                profile,
                wall_ns,
                // Composite rows keep only the aggregate wall number; the
                // per-class split is a per-function measurement.
                class_ns: None,
            }
        })
        .collect();
    BenchRow {
        bench: bench.clone(),
        results,
    }
}

/// The four compile pipelines of the compile-time benchmark, as
/// `(report label, configuration)` pairs.
pub const COMPILE_PIPELINES: [(&str, Option<SlpMode>); 4] = [
    ("o3", None),
    ("slp", Some(SlpMode::Slp)),
    ("lslp", Some(SlpMode::Lslp)),
    ("snslp", Some(SlpMode::SnSlp)),
];

/// Mean and sample standard deviation of `samples`, in their own unit.
fn mean_sd(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

/// Times one pipeline over fresh builds of a kernel: `warmup` discarded
/// runs, then `runs` timed ones. Microseconds.
fn time_pipeline(kernel: &Kernel, mode: Option<SlpMode>, warmup: usize, runs: usize) -> Timing {
    for _ in 0..warmup {
        let mut f = kernel.build();
        compile(&mut f, mode);
        std::hint::black_box(&f);
    }
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut f = kernel.build();
        let start = Instant::now();
        compile(&mut f, mode);
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(&f);
    }
    let (mean_us, sd_us) = mean_sd(&samples);
    let min_us = samples.iter().copied().fold(f64::INFINITY, f64::min);
    Timing {
        mean_us,
        sd_us,
        min_us,
    }
}

/// Look-ahead score cache hit rate of one SN-SLP compile of the kernel
/// (`hits / (hits + misses)`), from the thread-local metrics registry.
fn snslp_cache_hit_rate(kernel: &Kernel) -> Option<f64> {
    let before = MetricsSnapshot::current();
    let mut f = kernel.build();
    run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
    let delta = MetricsSnapshot::current().delta_since(&before);
    let hits = delta.get(Counter::LookaheadCacheHits) as f64;
    let misses = delta.get(Counter::LookaheadCacheMisses) as f64;
    if hits + misses == 0.0 {
        None
    } else {
        Some(hits / (hits + misses))
    }
}

/// Measures compile time of every registry kernel under every pipeline
/// of [`COMPILE_PIPELINES`], producing the machine-readable report the
/// `compile_time` bench emits and `bench_check` re-measures.
pub fn measure_compile_times(warmup: usize, runs: usize) -> CompileTimeReport {
    let kernels = snslp_kernels::registry()
        .iter()
        .map(|kernel| KernelTiming {
            name: kernel.name.to_string(),
            modes: COMPILE_PIPELINES
                .iter()
                .map(|&(label, mode)| {
                    (label.to_string(), time_pipeline(kernel, mode, warmup, runs))
                })
                .collect(),
            cache_hit_rate: snslp_cache_hit_rate(kernel),
        })
        .collect();
    CompileTimeReport {
        timed_runs: runs,
        kernels,
    }
}

/// Mean and sample standard deviation of wall-clock compile times over
/// `runs` runs (after one warm-up), mirroring the paper's "10 runs + 1
/// warm-up" methodology (§V).
pub fn timed_compiles(kernel: &Kernel, mode: Option<SlpMode>, runs: usize) -> (f64, f64) {
    let mut f = kernel.build();
    compile(&mut f, mode); // warm-up
    let samples: Vec<f64> = (0..runs)
        .map(|_| {
            let mut f = kernel.build();
            let (_, t) = compile(&mut f, mode);
            t.as_secs_f64()
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
        / (samples.len().saturating_sub(1)).max(1) as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_kernels::kernel_by_name;

    #[test]
    fn measure_kernel_produces_all_modes() {
        let k = kernel_by_name("motiv_trunk").unwrap();
        let row = measure_kernel(&k, 8);
        assert_eq!(row.results.len(), 3);
        assert!(row.speedup(Some(SlpMode::SnSlp)) > 1.0);
        // LSLP does not vectorize the motivating kernels: same cycles as O3.
        assert!((row.speedup(Some(SlpMode::Lslp)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn benchmark_measurement_is_diluted() {
        let mut b = snslp_kernels::benchmarks()[0].clone();
        b.kernel_iters = 8;
        b.neutral_iters = 64;
        let row = measure_benchmark(&b);
        let s = row.speedup(Some(SlpMode::SnSlp));
        let k = measure_kernel(&b.kernel, 8).speedup(Some(SlpMode::SnSlp));
        assert!(s > 1.0 && s < k, "diluted {s} vs kernel {k}");
    }

    #[test]
    fn timed_compiles_returns_sane_stats() {
        let k = kernel_by_name("motiv_leaf").unwrap();
        let (mean, stdev) = timed_compiles(&k, Some(SlpMode::SnSlp), 3);
        assert!(mean > 0.0);
        assert!(stdev >= 0.0);
    }
}
