//! Prints Table I (the kernel inventory). Equivalent to
//! `figures table1`, provided as its own binary for convenience.

fn main() {
    println!("Table I: kernels extracted from SPEC CPU2006 (+ motivating examples)");
    println!(
        "{:<18} {:<12} {:<44} {:<5} {:>8} description",
        "kernel", "origin", "modelled construct", "elem", "iters"
    );
    for k in snslp_kernels::registry() {
        println!(
            "{:<18} {:<12} {:<44} {:<5} {:>8} {}",
            k.name, k.origin, k.shape, k.elem, k.default_iters, k.description
        );
    }
}
