//! Diagnostic tool: prints the SLP graph and cost breakdown that each
//! vectorizer mode builds for a kernel's seed groups.
//!
//! Usage: `graphdump <kernel> [slp|lslp|snslp]...`

use std::collections::HashSet;

use snslp_core::{build_graph, evaluate, BlockCtx, NodeKind, SlpConfig, SlpMode};
use snslp_kernels::kernel_by_name;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: graphdump <kernel> [slp|lslp|snslp]...");
        eprintln!("kernels: {:?}", snslp_kernels::registry().iter().map(|k| k.name).collect::<Vec<_>>());
        std::process::exit(2);
    };
    let Some(kernel) = kernel_by_name(name) else {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    };
    let modes: Vec<SlpMode> = if args.len() > 1 {
        args[1..]
            .iter()
            .map(|m| match m.as_str() {
                "slp" => SlpMode::Slp,
                "lslp" => SlpMode::Lslp,
                "snslp" => SlpMode::SnSlp,
                other => {
                    eprintln!("unknown mode `{other}`");
                    std::process::exit(2);
                }
            })
            .collect()
    } else {
        vec![SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp]
    };

    for mode in modes {
        println!("=== {} / {} ===", kernel.name, mode.label());
        let mut f = kernel.build();
        snslp_ir::opt::cleanup_pipeline(&mut f);
        let cfg = SlpConfig::new(mode);
        for b in f.block_ids().collect::<Vec<_>>() {
            let ctx = BlockCtx::compute(&f, b);
            let target = cfg.model.target().clone();
            let seeds = snslp_core::collect_store_seeds(
                &f,
                &ctx,
                |st| target.max_lanes(st),
                &HashSet::new(),
            );
            for g in seeds {
                let graph = build_graph(&f, &ctx, &cfg, &g.stores);
                let cost = evaluate(&f, &ctx, &graph, &cfg.model);
                println!(
                    "seed group in {b} (width {}): total {:+}, extracts {:+} => {}",
                    g.width(),
                    cost.total,
                    cost.extract_cost,
                    if cost.total < 0 { "VECTORIZE" } else { "keep scalar" }
                );
                for (i, n) in graph.nodes.iter().enumerate() {
                    println!(
                        "  node {i:>2} {:+}  {:<24} lanes {:?} ops {:?}",
                        cost.node_costs[i],
                        kind_str(&n.kind),
                        n.scalars,
                        n.operands
                    );
                }
            }
        }
    }
}

fn kind_str(k: &NodeKind) -> String {
    match k {
        NodeKind::Super(i) => format!(
            "Super(size {}, {} slots)",
            i.size(),
            i.slot_signs.len()
        ),
        NodeKind::Alt { ops } => format!("Alt{ops:?}"),
        NodeKind::Permute { mask } => format!("Permute{mask:?}"),
        other => format!("{other:?}"),
    }
}
