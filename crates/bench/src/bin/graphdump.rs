//! Diagnostic tool: runs the vectorizer over a kernel and streams the
//! structured trace — optimization remarks, metrics counters and Graphviz
//! DOT dumps of the SLP graph at the pre-reorder/post-reorder/final
//! stages — through the `snslp-trace` sinks.
//!
//! Usage: `graphdump <kernel> [slp|lslp|snslp]... [--dot DIR] [--json]`
//!
//! By default every trace facet is enabled and records go to stderr as
//! text; `--json` switches to JSON lines, `--dot DIR` writes the DOT
//! graphs as files under `DIR` instead of inline records. Setting
//! `SNSLP_TRACE` overrides the defaults entirely.

use std::path::PathBuf;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_trace::{Facet, Record, RecordKind, TraceSpec};

/// Reports a CLI error through the trace sink and exits.
fn fail(msg: String) -> ! {
    snslp_trace::emit_record(Record::new(RecordKind::Event, "cli.error").with("msg", msg));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kernel_name: Option<String> = None;
    let mut modes: Vec<SlpMode> = Vec::new();
    let mut dot_dir: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dot" => {
                let Some(dir) = args.get(i + 1) else {
                    fail("--dot needs a directory argument".to_string());
                };
                dot_dir = Some(PathBuf::from(dir));
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "slp" => {
                modes.push(SlpMode::Slp);
                i += 1;
            }
            "lslp" => {
                modes.push(SlpMode::Lslp);
                i += 1;
            }
            "snslp" => {
                modes.push(SlpMode::SnSlp);
                i += 1;
            }
            other if kernel_name.is_none() => {
                kernel_name = Some(other.to_string());
                i += 1;
            }
            other => fail(format!("unknown argument `{other}`")),
        }
    }
    let Some(name) = kernel_name else {
        fail(format!(
            "usage: graphdump <kernel> [slp|lslp|snslp]... [--dot DIR] [--json]; kernels: {:?}",
            snslp_kernels::registry()
                .iter()
                .map(|k| k.name)
                .collect::<Vec<_>>()
        ));
    };
    let Some(kernel) = snslp_kernels::kernel_by_name(&name) else {
        fail(format!("unknown kernel `{name}`"));
    };
    if modes.is_empty() {
        modes = vec![SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp];
    }

    // `SNSLP_TRACE` takes full control when set; otherwise this is a
    // diagnostic tool, so default to everything on.
    if std::env::var_os("SNSLP_TRACE").is_some() {
        if let Err(e) = snslp_trace::init_from_env() {
            fail(e);
        }
    } else {
        snslp_trace::apply_spec(&TraceSpec {
            facets: Facet::Events as u32
                | Facet::Remarks as u32
                | Facet::Metrics as u32
                | Facet::Dot as u32,
            json,
            dot_dir,
        });
    }

    for mode in modes {
        println!("=== {} / {} ===", kernel.name, mode.label());
        let mut f = kernel.build();
        let report = run_slp(&mut f, &SlpConfig::new(mode));
        // The report carries the remarks and the metrics delta of this
        // run; the DOT graphs were already streamed by the pass hooks.
        print!("{report}");
        println!("  metrics: {}", report.metrics.machine());
    }
}
