//! CI gate for the compile-time benchmark trajectory: re-measures every
//! registry kernel and compares against the checked-in baseline
//! (`BENCH_compile_time.json` by default).
//!
//! Exit status is non-zero when
//! * the baseline file is missing or malformed (schema tag, structure,
//!   implausible timings), or
//! * a baseline kernel is missing from the fresh run, or
//! * any kernel's fresh SN-SLP *minimum* run time exceeds
//!   `REGRESSION_FACTOR` (2×) the baseline minimum — a sign of an
//!   algorithmic regression. Minima rather than means: scheduler blips
//!   only ever inflate individual samples, so the min is stable on noisy
//!   single-core CI hosts where the mean of a 40µs kernel swings freely,
//!   while a real complexity regression raises every sample.
//!
//! On failure, the full per-kernel delta table has already been printed
//! and a ranked summary (worst ratio first) follows, so a CI log is
//! actionable without rerunning locally.
//!
//! Fresh kernels absent from the baseline are reported but do not fail:
//! a new kernel lands before its trajectory point does.
//!
//! The `dyn` subcommand gates the *dynamic* trajectory instead: it
//! re-collects the `snslp-dynstats/v1` report (simulated cycles + dynamic
//! profiles for every kernel under o3/slp/lslp/snslp), validates the
//! checked-in `BENCH_dyn.json` baseline, and fails on any simulated-cycle
//! increase (the pipeline is deterministic, so any increase is a real
//! regression, not jitter) or on a predicted-vs-achieved calibration sign
//! disagreement. Mispredictions beyond the calibration ratio band are
//! printed as `cost-misprediction` remarks. On x86-64 hosts the fresh
//! report also carries measured native wall times from the JIT backend;
//! the three-axis table (predicted cost / simulated cycles / wall ns) is
//! printed and the measured SN-SLP-vs-O3 wall geomean must stay above
//! 1.0 over the JIT-covered kernels (skipped elsewhere).
//!
//! The `serve` subcommand gates the compile-service trajectory: it
//! validates the checked-in `BENCH_serve.json` (schema + plausibility)
//! and applies the machine-independent shape invariants of
//! [`snslp_bench::servebench::check_serve`] — warm cache hit rate above
//! 90%, cold p50 at least 5× the warm p50, and the server's own warm
//! `request_total` p50 (from its telemetry snapshot) within a generous
//! band of the client-observed warm p50, so the two measurement paths
//! cannot silently diverge. With `--fresh FILE` it
//! additionally validates and gates a just-measured report (produced by
//! `snslp-bench serve --out FILE`), which is how CI checks a live run
//! rather than only the committed point.
//!
//! The `hot` subcommand smokes the native hotness pipeline: every
//! registry kernel under o3/slp/lslp/snslp is compiled with
//! instrumented-hotness lowering, run natively, and its exact per-class
//! execution counts are reconciled against the interpreter's dynamic
//! profile (a mismatch is a lowering bug and aborts). The resulting
//! `snslp-hot/v1` artifact is round-tripped through its own strict
//! reader before it is written. On hosts without the native backend the
//! gate reports the skip and exits 0 — there is nothing to measure.
//!
//! Usage:
//!   `bench_check [baseline.json]`
//!   `bench_check dyn [--bless] [--out FILE] [baseline.json]`
//!   `bench_check serve [--fresh FILE] [baseline.json]`
//!   `bench_check hot [--out FILE]`
//!
//! Exit codes are distinct so CI can tell a broken artifact from a real
//! regression (see `bench_check --help`): `0` all gates passed, `1` a
//! gate was violated, `2` usage error, `3` a report failed schema
//! validation or could not be read or written.

use snslp_bench::dynstats::{calibrate, collect_kernel_dyn, misprediction_remarks, DynReport};
use snslp_bench::hot::{collect_hot, HotDoc};
use snslp_bench::measure_compile_times;
use snslp_bench::report::{CompileTimeReport, REGRESSION_FACTOR};
use snslp_bench::servebench::{check_serve, ServeBenchReport};
use snslp_trace::Facet;

/// Fewer runs than the full bench: CI wants a smoke signal, and the 2×
/// gate leaves plenty of room for the extra variance.
const WARMUP_RUNS: usize = 2;
const TIMED_RUNS: usize = 10;

/// Exit code: a measured gate was violated (a real regression).
const EXIT_GATE: i32 = 1;
/// Exit code: usage error (unknown flag, missing flag argument).
const EXIT_USAGE: i32 = 2;
/// Exit code: a report is structurally unusable — missing or malformed
/// baseline, schema violation, or a file that cannot be read/written.
/// Distinct from [`EXIT_GATE`] so CI can tell a broken artifact from a
/// genuine performance regression.
const EXIT_SCHEMA: i32 = 3;

fn print_help() {
    println!(
        "usage:
  bench_check [baseline.json]
      compile-time gate over the registry kernels
      (default baseline: BENCH_compile_time.json)
  bench_check dyn [--bless] [--out FILE] [baseline.json]
      deterministic simulated-cycle gate + cost-model and wall-clock
      calibration (default baseline: BENCH_dyn.json);
      --bless rewrites the baseline, --out also writes the fresh report
  bench_check serve [--fresh FILE] [baseline.json]
      compile-service shape invariants (default: BENCH_serve.json)
  bench_check hot [--out FILE]
      instrumented native-hotness smoke over the registry kernels:
      exact per-class counts must reconcile with the interpreter's
      dynamic profile; --out writes the snslp-hot/v1 artifact
      (exits 0 with a notice on hosts without the native backend)

exit codes:
  0  all gates passed
  1  a gate was violated: compile-time regression, simulated-cycle
     increase, calibration sign flip, measured wall-clock geomean <= 1,
     or a serve shape invariant
  2  usage error (unknown flag, missing flag argument)
  3  a report failed schema validation or could not be read or written
     (missing baseline, malformed JSON, implausible values)"
    );
}

/// One comparable kernel: baseline vs fresh SN-SLP minimum.
struct DeltaRow {
    name: String,
    base_min_us: f64,
    now_min_us: f64,
}

impl DeltaRow {
    fn ratio(&self) -> f64 {
        self.now_min_us / self.base_min_us
    }

    fn regressed(&self) -> bool {
        self.ratio() > REGRESSION_FACTOR
    }
}

/// `bench_check dyn`: deterministic dynamic-cycle gate + calibration.
fn dyn_main(args: &[String]) -> ! {
    let mut bless = false;
    let mut out: Option<String> = None;
    let mut baseline_path = "BENCH_dyn.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--bless" {
            bless = true;
        } else if arg == "--out" {
            out = Some(
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("bench_check dyn: --out needs a file argument");
                        std::process::exit(EXIT_USAGE);
                    })
                    .clone(),
            );
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out = Some(v.to_string());
        } else if arg.starts_with('-') {
            eprintln!("bench_check dyn: unknown flag {arg}");
            std::process::exit(EXIT_USAGE);
        } else {
            baseline_path = arg.clone();
        }
    }

    let fresh = collect_kernel_dyn();
    let json = fresh.to_json();
    // The emitted document must survive its own strict reader — a
    // render/parse asymmetry would silently rot the checked-in baseline.
    if let Err(e) = DynReport::from_json(&json) {
        eprintln!("bench_check dyn: fresh report fails validation: {e}");
        std::process::exit(EXIT_SCHEMA);
    }
    if let Some(out) = &out {
        std::fs::write(out, &json).unwrap_or_else(|e| {
            eprintln!("bench_check dyn: cannot write {out}: {e}");
            std::process::exit(EXIT_SCHEMA);
        });
        println!("bench_check dyn: wrote fresh report to {out}");
    }
    if bless {
        std::fs::write(&baseline_path, &json).unwrap_or_else(|e| {
            eprintln!("bench_check dyn: cannot write {baseline_path}: {e}");
            std::process::exit(EXIT_SCHEMA);
        });
        println!("bench_check dyn: blessed baseline {baseline_path}");
        std::process::exit(0);
    }

    let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        eprintln!(
            "bench_check dyn: cannot read baseline {baseline_path}: {e} \
             (run `bench_check dyn --bless` to create it)"
        );
        std::process::exit(EXIT_SCHEMA);
    });
    let baseline = DynReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_check dyn: baseline {baseline_path} is malformed: {e}");
        std::process::exit(EXIT_SCHEMA);
    });

    println!(
        "bench_check dyn: {} baseline kernels, deterministic cycle gate",
        baseline.kernels.len()
    );
    print!("{}", fresh.calibration_table());
    print!("{}", fresh.wall_table());
    let rows = calibrate(&fresh);
    let lines = snslp_trace::capture(Facet::Remarks as u32, || {
        misprediction_remarks(&rows);
    });
    for line in &lines {
        println!("{line}");
    }
    match snslp_bench::dynstats::check_dyn(&baseline, &fresh) {
        Ok(table) => {
            print!("{table}");
            let improved = baseline.kernels.iter().any(|bk| {
                fresh.kernels.iter().any(|fk| {
                    fk.name == bk.name
                        && bk
                            .modes
                            .iter()
                            .any(|bm| fk.mode(&bm.label).is_some_and(|fm| fm.cycles < bm.cycles))
                })
            });
            if improved {
                println!(
                    "bench_check dyn: cycles improved over baseline; \
                     re-bless {baseline_path} to lock in the gain"
                );
            }
            println!("bench_check dyn: all kernels within the gate");
            std::process::exit(0);
        }
        Err(failures) => {
            eprintln!("{failures}");
            eprintln!("bench_check dyn: gate failed");
            std::process::exit(EXIT_GATE);
        }
    }
}

/// `bench_check hot`: instrumented native-hotness smoke + artifact.
fn hot_main(args: &[String]) -> ! {
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            out = Some(
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("bench_check hot: --out needs a file argument");
                        std::process::exit(EXIT_USAGE);
                    })
                    .clone(),
            );
        } else if let Some(v) = arg.strip_prefix("--out=") {
            out = Some(v.to_string());
        } else {
            eprintln!("bench_check hot: unknown argument {arg}");
            std::process::exit(EXIT_USAGE);
        }
    }

    if !snslp_jit::native_supported() {
        println!("bench_check hot: no native backend on this host; nothing to measure (skipped)");
        std::process::exit(0);
    }
    // `collect_hot` asserts the exact reconciliation invariant on every
    // covered row (native per-class counts == interpreter DynProfile) —
    // a mismatch panics there, which is the gate.
    let (doc, skipped) = collect_hot();
    let json = doc.to_json();
    let back = HotDoc::from_json(&json).unwrap_or_else(|e| {
        eprintln!("bench_check hot: fresh artifact fails its own strict reader: {e}");
        std::process::exit(EXIT_SCHEMA);
    });
    print!("{}", doc.summary_table());
    for s in &skipped {
        println!("bench_check hot: skipped {s} (jit fallback)");
    }
    if back.entries.is_empty() {
        eprintln!("bench_check hot: native backend present but no row was measurable");
        std::process::exit(EXIT_GATE);
    }
    if let Some(out) = &out {
        std::fs::write(out, &json).unwrap_or_else(|e| {
            eprintln!("bench_check hot: cannot write {out}: {e}");
            std::process::exit(EXIT_SCHEMA);
        });
        println!("bench_check hot: wrote artifact to {out}");
    }
    println!(
        "bench_check hot: {} rows reconciled exactly ({} skipped)",
        back.entries.len(),
        skipped.len()
    );
    std::process::exit(0);
}

/// `bench_check serve`: shape-invariant gate over serve-bench reports.
fn serve_main(args: &[String]) -> ! {
    let mut fresh_path: Option<String> = None;
    let mut baseline_path = "BENCH_serve.json".to_string();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--fresh" {
            fresh_path = Some(
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("bench_check serve: --fresh needs a file argument");
                        std::process::exit(EXIT_USAGE);
                    })
                    .clone(),
            );
        } else if let Some(v) = arg.strip_prefix("--fresh=") {
            fresh_path = Some(v.to_string());
        } else if arg.starts_with('-') {
            eprintln!("bench_check serve: unknown flag {arg}");
            std::process::exit(EXIT_USAGE);
        } else {
            baseline_path = arg.clone();
        }
    }

    // Schema/IO problems and violated gates exit differently (3 vs 1),
    // so read+parse is separated from the shape-invariant check.
    let mut schema_failures = 0usize;
    let mut gate_failures = 0usize;
    let mut gate = |path: &str, label: &str| {
        let report = match std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| ServeBenchReport::from_json(&text))
        {
            Ok(report) => report,
            Err(e) => {
                eprintln!("bench_check serve: {e}");
                schema_failures += 1;
                return;
            }
        };
        match check_serve(&report, label) {
            Ok(summary) => print!("{summary}"),
            Err(e) => {
                eprintln!("bench_check serve: {e}");
                gate_failures += 1;
            }
        }
    };
    gate(&baseline_path, "baseline");
    if let Some(fresh) = &fresh_path {
        gate(fresh, "fresh");
    }
    if schema_failures + gate_failures > 0 {
        eprintln!(
            "bench_check serve: {} failure(s)",
            schema_failures + gate_failures
        );
        std::process::exit(if schema_failures > 0 {
            EXIT_SCHEMA
        } else {
            EXIT_GATE
        });
    }
    println!("bench_check serve: all reports within the gate");
    std::process::exit(0);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        std::process::exit(0);
    }
    if argv.first().map(String::as_str) == Some("dyn") {
        dyn_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        serve_main(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("hot") {
        hot_main(&argv[1..]);
    }
    let path = argv
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_compile_time.json".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read baseline {path}: {e}");
        std::process::exit(EXIT_SCHEMA);
    });
    let baseline = CompileTimeReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: baseline {path} is malformed: {e}");
        std::process::exit(EXIT_SCHEMA);
    });

    let fresh = measure_compile_times(WARMUP_RUNS, TIMED_RUNS);
    let mut rows: Vec<DeltaRow> = Vec::new();
    let mut structural_failures = 0usize;
    for base in &baseline.kernels {
        let Some(now) = fresh.kernels.iter().find(|k| k.name == base.name) else {
            eprintln!("  {}: MISSING from fresh measurement", base.name);
            structural_failures += 1;
            continue;
        };
        let (Some(base_t), Some(now_t)) = (base.mode("snslp"), now.mode("snslp")) else {
            eprintln!("  {}: missing snslp timing", base.name);
            structural_failures += 1;
            continue;
        };
        rows.push(DeltaRow {
            name: base.name.clone(),
            base_min_us: base_t.min_us,
            now_min_us: now_t.min_us,
        });
    }

    // The full delta table, pass or fail: every kernel, baseline vs
    // current minimum, delta, ratio, verdict.
    println!(
        "bench_check: {} baseline kernels, gate {REGRESSION_FACTOR}x on sn-slp min",
        baseline.kernels.len()
    );
    println!(
        "  {:<24} {:>12} {:>12} {:>10} {:>7}  verdict",
        "kernel", "baseline µs", "now µs", "delta µs", "ratio"
    );
    for row in &rows {
        println!(
            "  {:<24} {:>12.1} {:>12.1} {:>+10.1} {:>6.2}x  {}",
            row.name,
            row.base_min_us,
            row.now_min_us,
            row.now_min_us - row.base_min_us,
            row.ratio(),
            if row.regressed() { "REGRESSED" } else { "ok" }
        );
    }
    for now in &fresh.kernels {
        if !baseline.kernels.iter().any(|k| k.name == now.name) {
            println!("  {:<24} new kernel (no baseline yet)", now.name);
        }
    }

    let mut regressions: Vec<&DeltaRow> = rows.iter().filter(|r| r.regressed()).collect();
    let failures = structural_failures + regressions.len();
    if failures > 0 {
        if !regressions.is_empty() {
            regressions.sort_by(|a, b| {
                b.ratio()
                    .partial_cmp(&a.ratio())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            eprintln!("bench_check: regressions, worst first:");
            for row in &regressions {
                eprintln!(
                    "  {:<24} {:>6.2}x ({:.1}µs -> {:.1}µs)",
                    row.name,
                    row.ratio(),
                    row.base_min_us,
                    row.now_min_us
                );
            }
        }
        eprintln!("bench_check: {failures} failure(s)");
        std::process::exit(EXIT_GATE);
    }
    println!("bench_check: all kernels within the gate");
}
