//! CI gate for the compile-time benchmark trajectory: re-measures every
//! registry kernel and compares against the checked-in baseline
//! (`BENCH_compile_time.json` by default).
//!
//! Exit status is non-zero when
//! * the baseline file is missing or malformed (schema tag, structure,
//!   implausible timings), or
//! * a baseline kernel is missing from the fresh run, or
//! * any kernel's fresh SN-SLP *minimum* run time exceeds
//!   `REGRESSION_FACTOR` (2×) the baseline minimum — a sign of an
//!   algorithmic regression. Minima rather than means: scheduler blips
//!   only ever inflate individual samples, so the min is stable on noisy
//!   single-core CI hosts where the mean of a 40µs kernel swings freely,
//!   while a real complexity regression raises every sample.
//!
//! Fresh kernels absent from the baseline are reported but do not fail:
//! a new kernel lands before its trajectory point does.
//!
//! Usage: `bench_check [baseline.json]`

use snslp_bench::measure_compile_times;
use snslp_bench::report::{CompileTimeReport, REGRESSION_FACTOR};

/// Fewer runs than the full bench: CI wants a smoke signal, and the 2×
/// gate leaves plenty of room for the extra variance.
const WARMUP_RUNS: usize = 2;
const TIMED_RUNS: usize = 10;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_compile_time.json".to_string());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let baseline = CompileTimeReport::from_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: baseline {path} is malformed: {e}");
        std::process::exit(1);
    });

    let fresh = measure_compile_times(WARMUP_RUNS, TIMED_RUNS);
    let mut failures = 0usize;
    println!(
        "bench_check: {} baseline kernels, gate {REGRESSION_FACTOR}x on sn-slp min",
        baseline.kernels.len()
    );
    for base in &baseline.kernels {
        let Some(now) = fresh.kernels.iter().find(|k| k.name == base.name) else {
            eprintln!("  {}: MISSING from fresh measurement", base.name);
            failures += 1;
            continue;
        };
        let (Some(base_t), Some(now_t)) = (base.mode("snslp"), now.mode("snslp")) else {
            eprintln!("  {}: missing snslp timing", base.name);
            failures += 1;
            continue;
        };
        let ratio = now_t.min_us / base_t.min_us;
        let verdict = if ratio > REGRESSION_FACTOR {
            failures += 1;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {:<24} baseline min {:>8.1}µs now min {:>8.1}µs ({:>5.2}x) {}",
            base.name, base_t.min_us, now_t.min_us, ratio, verdict
        );
    }
    for now in &fresh.kernels {
        if !baseline.kernels.iter().any(|k| k.name == now.name) {
            println!("  {:<24} new kernel (no baseline yet)", now.name);
        }
    }
    if failures > 0 {
        eprintln!("bench_check: {failures} failure(s)");
        std::process::exit(1);
    }
    println!("bench_check: all kernels within the gate");
}
