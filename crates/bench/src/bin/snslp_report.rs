//! `snslp-report` — decision-attribution reports and regression
//! root-causing.
//!
//! ```text
//! usage: snslp-report <command> [args]
//!   collect [--mode slp|lslp|snslp] [--out FILE]
//!       Run the attribution pipeline over the kernel registry and write
//!       a snslp-report/v1 JSON document to --out (stdout by default).
//!   html REPORT.json [--out FILE]
//!       Render a collected report as the single-file HTML explorer
//!       (stdout by default).
//!   validate REPORT.json
//!       Parse a report with the strict reader; exit 1 if malformed.
//!   diff BASE.json NEW.json [--top N]
//!       Root-cause the difference between two runs down to the
//!       decisions whose outcomes changed, ranked by cycle impact;
//!       exit 1 when any difference is found.
//! ```

use std::process::ExitCode;

use snslp_bench::attrib::{collect_kernel_attrib, diff, render_html, AttribReport};
use snslp_core::{SlpConfig, SlpMode};

fn usage() -> ExitCode {
    eprintln!(
        "usage: snslp-report collect [--mode slp|lslp|snslp] [--out FILE]\n\
         \x20      snslp-report html REPORT.json [--out FILE]\n\
         \x20      snslp-report validate REPORT.json\n\
         \x20      snslp-report diff BASE.json NEW.json [--top N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    if let Err(e) = snslp_trace::init_from_env() {
        eprintln!("snslp-report: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("collect") => collect(&args[1..]),
        Some("html") => html(&args[1..]),
        Some("validate") => validate(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        _ => usage(),
    }
}

fn load(path: &str) -> Result<AttribReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    AttribReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn write_or_print(out: Option<&String>, payload: &str, what: &str) -> ExitCode {
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, payload) {
                eprintln!("snslp-report: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("snslp-report: {what} written to {path}");
            ExitCode::SUCCESS
        }
        None => {
            print!("{payload}");
            ExitCode::SUCCESS
        }
    }
}

fn collect(args: &[String]) -> ExitCode {
    let mut mode = SlpMode::SnSlp;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                mode = match args.get(i).map(String::as_str) {
                    Some("slp") => SlpMode::Slp,
                    Some("lslp") => SlpMode::Lslp,
                    Some("snslp") => SlpMode::SnSlp,
                    _ => return usage(),
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = Some(path.clone()),
                    None => return usage(),
                }
            }
            _ => return usage(),
        }
        i += 1;
    }
    let report = collect_kernel_attrib(&SlpConfig::new(mode));
    eprintln!("snslp-report: {}", report.summary());
    write_or_print(out.as_ref(), &report.to_json(), "report")
}

fn html(args: &[String]) -> ExitCode {
    let mut out: Option<String> = None;
    let mut input: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = Some(path.clone()),
                    None => return usage(),
                }
            }
            arg if arg.starts_with("--") => return usage(),
            _ if input.is_none() => input = Some(&args[i]),
            _ => return usage(),
        }
        i += 1;
    }
    let Some(path) = input else {
        return usage();
    };
    let report = match load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("snslp-report: {e}");
            return ExitCode::FAILURE;
        }
    };
    write_or_print(out.as_ref(), &render_html(&report), "explorer")
}

fn validate(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    match load(path) {
        Ok(report) => {
            println!("{path}: OK — {}", report.summary());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snslp-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut top_n = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                i += 1;
                top_n = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                };
            }
            arg if arg.starts_with("--") => return usage(),
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [base_path, new_path] = paths[..] else {
        return usage();
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("snslp-report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if base.mode != new.mode {
        eprintln!(
            "snslp-report: mode mismatch: baseline is `{}`, new run is `{}`",
            base.mode, new.mode
        );
        return ExitCode::FAILURE;
    }
    let d = diff(&base, &new);
    print!("{}", d.render(top_n));
    if d.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
