//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage: `figures [table1 fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11
//! dyn ablation widths | all]` (default: `all` = the paper's
//! tables/figures plus the dynamic-profile tables; `ablation` and
//! `widths` are extra studies). Optionally `--iters N` scales kernel
//! iteration counts (default: each kernel's `default_iters`).

use snslp_bench::dynstats::collect_kernel_dyn;
use snslp_bench::{measure_benchmark, measure_kernel, mode_label, timed_compiles, KernelRow};
use snslp_core::{build_graph, evaluate, BlockCtx, SlpConfig, SlpMode};
use snslp_kernels::{benchmarks, kernel_by_name, registry};
use snslp_trace::{MetricsSnapshot, Record, RecordKind};

fn main() {
    if let Err(e) = snslp_trace::init_from_env() {
        snslp_trace::emit_record(Record::new(RecordKind::Event, "cli.error").with("msg", e));
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut iters_override: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--iters" {
            iters_override = args.get(i + 1).and_then(|s| s.parse().ok());
            i += 2;
        } else {
            wanted.push(args[i].clone());
            i += 1;
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1", "fig2", "fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
            "dyn",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let kernel_rows: Vec<KernelRow> = if wanted
        .iter()
        .any(|w| ["fig5", "fig6", "fig7", "fig11"].contains(&w.as_str()))
    {
        registry()
            .iter()
            .map(|k| measure_kernel(k, iters_override.unwrap_or(k.default_iters)))
            .collect()
    } else {
        Vec::new()
    };

    for w in &wanted {
        let before = MetricsSnapshot::current();
        match w.as_str() {
            "table1" => table1(),
            "fig2" => cost_table("fig2", "motiv_leaf"),
            "fig3" => cost_table("fig3", "motiv_trunk"),
            "fig5" => fig5(&kernel_rows),
            "fig6" => fig6(&kernel_rows),
            "fig7" => fig7(&kernel_rows),
            "fig8" => fig8(),
            "fig9" => fig9(),
            "fig10" => fig10(),
            "fig11" => fig11(),
            "dyn" => dyn_tables(),
            "ablation" => ablation(),
            "widths" => widths(),
            other => {
                snslp_trace::emit_record(
                    Record::new(RecordKind::Event, "cli.error")
                        .with("msg", format!("unknown figure `{other}`")),
                );
                continue;
            }
        }
        // Pipeline activity behind this figure, from the metrics registry.
        let delta = MetricsSnapshot::current().delta_since(&before);
        if delta != MetricsSnapshot::default() {
            println!("  [metrics] {}", delta.machine());
        }
    }

    println!();
    println!("== Metrics registry (whole run) ==");
    print!("{}", MetricsSnapshot::current());
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Dynamic-profile tables: per-kernel dynamic-cycle speedups across all
/// four pipelines (incl. vanilla SLP), lane utilization / packing
/// overhead, and the predicted-vs-achieved cost calibration report.
fn dyn_tables() {
    let report = collect_kernel_dyn();
    header("Dynamic speedup over O3 per kernel (all four pipelines, simulated cycles)");
    print!("{}", report.speedup_table());
    header("Lane utilization and packing overhead per kernel/mode");
    print!("{}", report.lane_table());
    header("Cost calibration: predicted (static model) vs achieved (dynamic) saving per iteration");
    print!("{}", report.calibration_table());
    header("Wall-clock calibration: simulated cycles vs measured native time (x86-64 JIT)");
    print!("{}", report.wall_table());
}

/// Ablation (beyond the paper): SN-SLP with trunk reordering disabled
/// (leaf-APO rule only, §IV-C2) and with look-ahead scoring disabled.
fn ablation() {
    use snslp_core::run_slp;
    use snslp_cost::CostModel;
    use snslp_interp::{run_with_args, ExecOptions};

    header("Ablation: SN-SLP variants (speedup over O3, simulated cycles)");
    println!(
        "{:<18} {:>9} {:>12} {:>14}",
        "kernel", "full", "no-trunk", "no-lookahead"
    );
    let model = CostModel::default();
    let opts = ExecOptions::default();
    for k in registry() {
        let args = k.args(k.default_iters);
        let cycles = |mk: &dyn Fn() -> SlpConfig| -> u64 {
            let mut f = k.build();
            run_slp(&mut f, &mk());
            run_with_args(&f, &args, &model, &opts)
                .expect("kernel runs")
                .exec
                .cycles
        };
        let o3 = {
            let mut f = k.build();
            snslp_core::optimize_o3(&mut f);
            run_with_args(&f, &args, &model, &opts)
                .expect("kernel runs")
                .exec
                .cycles
        };
        let full = cycles(&|| SlpConfig::new(SlpMode::SnSlp));
        let no_trunk = cycles(&|| {
            let mut c = SlpConfig::new(SlpMode::SnSlp);
            c.enable_trunk_reordering = false;
            c
        });
        let no_look = cycles(&|| {
            let mut c = SlpConfig::new(SlpMode::SnSlp);
            c.lookahead_depth = 0;
            c
        });
        println!(
            "{:<18} {:>9.3} {:>12.3} {:>14.3}",
            k.name,
            o3 as f64 / full as f64,
            o3 as f64 / no_trunk as f64,
            o3 as f64 / no_look as f64,
        );
    }
}

/// Width sweep (beyond the paper): SN-SLP speedup over O3 on the
/// 128-bit `addsub` target, the 256-bit target, and a 128-bit target
/// without native `addsub` (alternating ops emulated).
fn widths() {
    use snslp_core::run_slp;
    use snslp_cost::{CostModel, TargetDesc};
    use snslp_interp::{run_with_args, ExecOptions};

    header("Width sweep: SN-SLP speedup over O3 per target");
    println!(
        "{:<18} {:>10} {:>10} {:>12}",
        "kernel", "sse2-like", "avx2-like", "no-altop-128"
    );
    let opts = ExecOptions::default();
    for k in registry() {
        let args = k.args(k.default_iters);
        let o3 = {
            let mut f = k.build();
            snslp_core::optimize_o3(&mut f);
            run_with_args(&f, &args, &CostModel::default(), &opts)
                .expect("kernel runs")
                .exec
                .cycles
        };
        let speedup = |target: TargetDesc| -> f64 {
            let model = CostModel::new(target);
            let mut f = k.build();
            run_slp(
                &mut f,
                &SlpConfig::new(SlpMode::SnSlp).with_model(model.clone()),
            );
            let c = run_with_args(&f, &args, &model, &opts)
                .expect("kernel runs")
                .exec
                .cycles;
            o3 as f64 / c as f64
        };
        println!(
            "{:<18} {:>10.3} {:>10.3} {:>12.3}",
            k.name,
            speedup(TargetDesc::sse2_like()),
            speedup(TargetDesc::avx2_like()),
            speedup(TargetDesc::no_altop_128()),
        );
    }
}

/// Table I: the kernels where Super-Node SLP activates.
fn table1() {
    header("Table I: kernels extracted from SPEC CPU2006 (+ motivating examples)");
    println!(
        "{:<18} {:<12} {:<44} {:<5} description",
        "kernel", "origin", "modelled construct", "elem"
    );
    for k in registry() {
        println!(
            "{:<18} {:<12} {:<44} {:<5} {}",
            k.name, k.origin, k.shape, k.elem, k.description
        );
    }
}

/// Figures 2 and 3: the worked SLP-graph cost examples of §III.
fn cost_table(fig: &str, kernel: &str) {
    header(&format!(
        "{}: SLP graph cost of `{kernel}` per mode (paper §III)",
        fig.to_uppercase()
    ));
    let k = kernel_by_name(kernel).expect("registered kernel");
    for mode in [SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp] {
        let mut f = k.build();
        snslp_ir::opt::cleanup_pipeline(&mut f);
        let cfg = SlpConfig::new(mode);
        let mut printed = false;
        for b in f.block_ids().collect::<Vec<_>>() {
            let ctx = BlockCtx::compute(&f, b);
            let target = cfg.model.target().clone();
            let seeds = snslp_core::collect_store_seeds(
                &f,
                &ctx,
                |st| target.max_lanes(st),
                &snslp_ir::FxHashSet::default(),
            );
            for g in seeds {
                let graph = build_graph(&f, &ctx, &cfg, &g.stores);
                let cost = evaluate(&f, &ctx, &graph, &cfg.model);
                println!(
                    "  {:<7}: total cost {:+} ({} nodes: {} vectorizable, {} gather; extracts {:+}) => {}",
                    mode.label(),
                    cost.total,
                    graph.nodes.len(),
                    graph.num_vector_nodes(),
                    graph.num_gather_nodes(),
                    cost.extract_cost,
                    if cost.total < 0 { "VECTORIZE" } else { "keep scalar" },
                );
                printed = true;
            }
        }
        if !printed {
            println!("  {:<7}: no seeds", mode.label());
        }
    }
}

/// Figure 5: kernel speedup over O3.
fn fig5(rows: &[KernelRow]) {
    header("Fig. 5: speedup over O3 on the kernels (simulated cycles)");
    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "kernel", "O3 cycles", "LSLP cycles", "SN-SLP cycles", "LSLP x", "SN-SLP x"
    );
    let mut geo = [1.0f64; 2];
    for row in rows {
        let o3 = row.result(None).cycles;
        let l = row.result(Some(SlpMode::Lslp)).cycles;
        let s = row.result(Some(SlpMode::SnSlp)).cycles;
        let (sl, ss) = (
            row.speedup(Some(SlpMode::Lslp)),
            row.speedup(Some(SlpMode::SnSlp)),
        );
        geo[0] *= sl;
        geo[1] *= ss;
        println!(
            "{:<18} {:>14} {:>14} {:>14} {:>9.3} {:>9.3}",
            row.kernel.name, o3, l, s, sl, ss
        );
    }
    let n = rows.len() as f64;
    println!(
        "{:<18} {:>14} {:>14} {:>14} {:>9.3} {:>9.3}",
        "geomean",
        "",
        "",
        "",
        geo[0].powf(1.0 / n),
        geo[1].powf(1.0 / n)
    );
}

/// Figure 6: total aggregate Multi/Super-Node size on the kernels.
fn fig6(rows: &[KernelRow]) {
    header("Fig. 6: total aggregate Multi/Super-Node size (kernels)");
    println!("{:<18} {:>12} {:>12}", "kernel", "LSLP", "SN-SLP");
    let mut totals = [0u64; 2];
    for row in rows {
        let l = row
            .result(Some(SlpMode::Lslp))
            .report
            .as_ref()
            .map(|r| r.aggregate_super_node_size())
            .unwrap_or(0);
        let s = row
            .result(Some(SlpMode::SnSlp))
            .report
            .as_ref()
            .map(|r| r.aggregate_super_node_size())
            .unwrap_or(0);
        totals[0] += l;
        totals[1] += s;
        println!("{:<18} {:>12} {:>12}", row.kernel.name, l, s);
    }
    println!("{:<18} {:>12} {:>12}", "total", totals[0], totals[1]);
}

/// Figure 7: average Multi/Super-Node size per SLP graph (kernels).
fn fig7(rows: &[KernelRow]) {
    header("Fig. 7: average Multi/Super-Node size (kernels)");
    println!("{:<18} {:>12} {:>12}", "kernel", "LSLP", "SN-SLP");
    for row in rows {
        let avg = |mode| {
            row.result(Some(mode))
                .report
                .as_ref()
                .and_then(|r| r.avg_super_node_size())
        };
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.2}"),
            None => "-".to_string(),
        };
        println!(
            "{:<18} {:>12} {:>12}",
            row.kernel.name,
            fmt(avg(SlpMode::Lslp)),
            fmt(avg(SlpMode::SnSlp))
        );
    }
}

/// Figure 8: whole-benchmark speedup (SN-SLP vs LSLP, over O3).
fn fig8() {
    header("Fig. 8: speedup on full benchmarks (simulated cycles)");
    println!(
        "{:<12} {:>9} {:>9} {:>14} {:>13}",
        "benchmark", "LSLP x", "SN-SLP x", "SN-SLP/LSLP", "kernel share"
    );
    for b in benchmarks() {
        let row = measure_benchmark(&b);
        let sl = row.speedup(Some(SlpMode::Lslp));
        let ss = row.speedup(Some(SlpMode::SnSlp));
        println!(
            "{:<12} {:>9.4} {:>9.4} {:>13.2}% {:>12.1}%",
            b.name,
            sl,
            ss,
            (ss / sl - 1.0) * 100.0,
            row.kernel_share() * 100.0,
        );
    }
}

/// Figure 9: aggregate node size on full benchmarks.
fn fig9() {
    header("Fig. 9: total aggregate Multi/Super-Node size (full benchmarks)");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "LSLP", "SN-SLP", "LSLP nodes", "SN-SLP nodes"
    );
    for b in benchmarks() {
        let row = measure_benchmark(&b);
        let stats = |mode| {
            row.result(Some(mode))
                .report
                .as_ref()
                .map(|r| (r.aggregate_super_node_size(), r.num_super_nodes()))
                .unwrap_or((0, 0))
        };
        let (la, ln) = stats(SlpMode::Lslp);
        let (sa, sn) = stats(SlpMode::SnSlp);
        println!("{:<12} {:>10} {:>10} {:>12} {:>12}", b.name, la, sa, ln, sn);
    }
}

/// Figure 10: average node size on full benchmarks.
fn fig10() {
    header("Fig. 10: average Multi/Super-Node size (full benchmarks)");
    println!("{:<12} {:>10} {:>10}", "benchmark", "LSLP", "SN-SLP");
    for b in benchmarks() {
        let row = measure_benchmark(&b);
        let avg = |mode| {
            row.result(Some(mode))
                .report
                .as_ref()
                .and_then(|r| r.avg_super_node_size())
        };
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.2}"),
            None => "-".to_string(),
        };
        println!(
            "{:<12} {:>10} {:>10}",
            b.name,
            fmt(avg(SlpMode::Lslp)),
            fmt(avg(SlpMode::SnSlp))
        );
    }
}

/// Figure 11: compilation time normalized to O3 (10 runs + warm-up).
fn fig11() {
    header("Fig. 11: compilation time normalized to O3 (10 runs + 1 warm-up)");
    println!(
        "{:<18} {:>12} {:>16} {:>16} {:>13}",
        "kernel", "O3 (µs)", "LSLP (norm±sd)", "SN-SLP (norm±sd)", "SN-SLP/LSLP"
    );
    for k in registry() {
        let (o3, _) = timed_compiles(&k, None, 10);
        let (l, lsd) = timed_compiles(&k, Some(SlpMode::Lslp), 10);
        let (s, ssd) = timed_compiles(&k, Some(SlpMode::SnSlp), 10);
        println!(
            "{:<18} {:>12.1} {:>10.2}±{:.2} {:>10.2}±{:.2} {:>13.2}",
            k.name,
            o3 * 1e6,
            l / o3,
            lsd / o3,
            s / o3,
            ssd / o3,
            s / l,
        );
    }
    println!("(the O3 baseline is only the scalar cleanup pipeline — a tiny fraction of a");
    println!(" real -O3 pipeline — so absolute normalized values are not comparable to the");
    println!(" paper's; the SN-SLP/LSLP ratio is the paper's no-overhead claim)");
    let _ = mode_label(None);
}
