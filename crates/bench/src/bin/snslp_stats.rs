//! `snslp-stats` — corpus-wide pass-statistics aggregation and diffing.
//!
//! ```text
//! usage: snslp-stats <command> [args]
//!   collect [--mode slp|lslp|snslp] [--out FILE] [FILE.snir ...]
//!       Run the pass over a corpus (the kernel registry when no files
//!       are given) and write a snslp-stats/v1 JSON report to --out
//!       (stdout by default).
//!   diff BASE.json NEW.json [--top N]
//!       Compare two reports; exit 1 when regressions are found.
//!   validate-trace TRACE.json
//!       Structurally validate a profiler Chrome-trace file.
//!   emit-corpus FILE.snir
//!       Write the kernel-registry corpus as one .snir module.
//! ```

use std::process::ExitCode;

use snslp_bench::stats::{
    collect_kernel_stats, diff, kernel_corpus_module, mode_code, DiffGates, FunctionStats,
    StatsReport,
};
use snslp_bench::tracecheck::validate_chrome_trace;
use snslp_core::{run_slp_module, SlpConfig, SlpMode};
use snslp_ir::parser::parse_module;

fn usage() -> ExitCode {
    eprintln!(
        "usage: snslp-stats collect [--mode slp|lslp|snslp] [--out FILE] [FILE.snir ...]\n\
         \x20      snslp-stats diff BASE.json NEW.json [--top N]\n\
         \x20      snslp-stats validate-trace TRACE.json\n\
         \x20      snslp-stats emit-corpus FILE.snir"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    if let Err(e) = snslp_trace::init_from_env() {
        eprintln!("snslp-stats: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("collect") => collect(&args[1..]),
        Some("diff") => run_diff(&args[1..]),
        Some("validate-trace") => validate(&args[1..]),
        Some("emit-corpus") => emit_corpus(&args[1..]),
        _ => usage(),
    }
}

fn collect(args: &[String]) -> ExitCode {
    let mut mode = SlpMode::SnSlp;
    let mut out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                mode = match args.get(i).map(String::as_str) {
                    Some("slp") => SlpMode::Slp,
                    Some("lslp") => SlpMode::Lslp,
                    Some("snslp") => SlpMode::SnSlp,
                    _ => return usage(),
                };
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out = Some(path.clone()),
                    None => return usage(),
                }
            }
            arg if arg.starts_with("--") => return usage(),
            arg => files.push(arg.to_string()),
        }
        i += 1;
    }

    let report = if files.is_empty() {
        collect_kernel_stats(mode)
    } else {
        let cfg = SlpConfig::new(mode);
        let mut functions: Vec<FunctionStats> = Vec::new();
        for path in &files {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("snslp-stats: cannot read `{path}`: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let mut module = match parse_module(&source) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("snslp-stats: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let unit = std::path::Path::new(path)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.clone());
            for fr in run_slp_module(&mut module, &cfg) {
                functions.push(FunctionStats::from_report(&unit, &fr));
            }
        }
        StatsReport {
            mode: mode_code(mode).to_string(),
            functions,
        }
    };

    let json = report.to_json();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("snslp-stats: cannot write `{path}`: {e}");
                return ExitCode::FAILURE;
            }
            eprint!("{}", report.summary());
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut top_n = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                i += 1;
                top_n = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(n) => n,
                    None => return usage(),
                };
            }
            arg if arg.starts_with("--") => return usage(),
            _ => paths.push(&args[i]),
        }
        i += 1;
    }
    let [base_path, new_path] = paths[..] else {
        return usage();
    };
    let load = |path: &String| -> Result<StatsReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        StatsReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("snslp-stats: {e}");
            return ExitCode::FAILURE;
        }
    };
    if base.mode != new.mode {
        eprintln!(
            "snslp-stats: mode mismatch: baseline is `{}`, new run is `{}`",
            base.mode, new.mode
        );
        return ExitCode::FAILURE;
    }
    let d = diff(&base, &new, DiffGates::default());
    if d.has_regressions() {
        print!("{}", d.render(top_n));
        println!("snslp-stats: regressions found");
        ExitCode::FAILURE
    } else {
        println!(
            "snslp-stats: no regressions across {} functions",
            new.functions.len()
        );
        ExitCode::SUCCESS
    }
}

fn validate(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("snslp-stats: cannot read `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&text) {
        Ok(summary) => {
            let spans: usize = summary.spans_per_track.values().sum();
            println!(
                "{path}: OK — {} tracks, {spans} spans, {} span names, {} counters",
                summary.tracks.len(),
                summary.span_names.len(),
                summary.counter_names.len(),
            );
            for (tid, label) in &summary.tracks {
                println!(
                    "  tid {tid} ({label}): {} spans",
                    summary.spans_per_track.get(tid).copied().unwrap_or(0)
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snslp-stats: {path}: invalid trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn emit_corpus(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let module = kernel_corpus_module();
    if let Err(e) = std::fs::write(path, module.to_string()) {
        eprintln!("snslp-stats: cannot write `{path}`: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "snslp-stats: wrote {} kernel functions to {path}",
        module.functions().len()
    );
    ExitCode::SUCCESS
}
