//! The one JSON emitter/parser behind every bench artifact
//! (`BENCH_compile_time.json`, stats, dynstats, `snslp-report/v1`): a tiny
//! value type so the workspace stays free of external crates.
//!
//! All strict readers go through [`check_schema`] so a wrong or missing
//! schema tag fails with the same message everywhere.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (the reports only carry timings and
/// rates); object keys keep insertion order so emitted files are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (so the checked-in file diffs cleanly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on one line with no inter-token whitespace and no trailing
    /// newline — the framing the compile service's newline-delimited JSON
    /// protocol requires (one value per line; embedded newlines are
    /// escaped by the string emitter).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.render_compact_into(&mut out);
        out
    }

    fn render_compact_into(&self, out: &mut String) {
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_compact_into(out);
                    out.push(':');
                    v.render_compact_into(out);
                }
                out.push('}');
            }
            leaf => leaf.render_into(out, 0),
        }
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integral values print without a fraction; everything
                // else gets enough digits to round-trip timings.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    Json::Str(k.clone()).render_into(out, indent + 1);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry the byte offset they were
    /// detected at.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

/// Validates a parsed document's `schema` tag against the expected
/// version. Every strict reader calls this, so a stale or foreign file
/// fails with the same phrasing regardless of which artifact it was.
pub fn check_schema(doc: &Json, expected: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        None => Err(format!("missing schema tag (expected `{expected}`)")),
        Some(found) if found != expected => Err(format!(
            "schema mismatch: found `{found}`, expected `{expected}`"
        )),
        Some(_) => Ok(()),
    }
}

/// Rounds to three decimals — the emission precision for every timing and
/// rate in the bench artifacts.
pub fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match b {
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        _ => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-sync to char boundary for multi-byte UTF-8.
                let s = &bytes[*pos - 1..];
                let ch_len = utf8_len(b);
                let chunk =
                    std::str::from_utf8(&s[..ch_len.min(s.len())]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
                *pos += ch_len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_values_round_trip() {
        let text =
            r#"{"a": [1, 2.5, -3e2], "b": "x\"\né", "c": null, "d": [true, false], "e": {}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x\"\né"));
        let again = Json::parse(&v.render()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn compact_rendering_is_one_line_and_round_trips() {
        let v = Json::parse(r#"{"a": [1, 2.5], "b": "x\ny", "c": null}"#).unwrap();
        let line = v.render_compact();
        assert!(!line.contains('\n'));
        assert_eq!(line, r#"{"a":[1,2.5],"b":"x\ny","c":null}"#);
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parser_rejects_trailing_garbage() {
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn schema_errors_are_uniform() {
        let doc = Json::parse(r#"{"schema": "nope/v9"}"#).unwrap();
        let err = check_schema(&doc, "snslp-stats/v1").unwrap_err();
        assert_eq!(
            err,
            "schema mismatch: found `nope/v9`, expected `snslp-stats/v1`"
        );
        let doc = Json::parse("{}").unwrap();
        let err = check_schema(&doc, "snslp-report/v1").unwrap_err();
        assert_eq!(err, "missing schema tag (expected `snslp-report/v1`)");
        let doc = Json::parse(r#"{"schema": "snslp-report/v1"}"#).unwrap();
        assert!(check_schema(&doc, "snslp-report/v1").is_ok());
    }
}
