//! Dynamic execution statistics and cost-model calibration: the
//! `snslp-dynstats/v1` report.
//!
//! [`collect_kernel_dyn`] drives every registry kernel through all four
//! pipelines (`o3`, `slp`, `lslp`, `snslp`), interprets each variant on
//! identical inputs, and records simulated cycles plus the interpreter's
//! [`DynProfile`] alongside the pass's *predicted* cost delta (the sum of
//! committed graph costs). [`calibrate`] then joins prediction against
//! achievement per kernel and mode: the static model predicts
//! `-predicted_cost` saved cycles per loop iteration, the dynamic run
//! achieved `(o3_cycles - mode_cycles) / iters`. Sign disagreements and
//! ratios beyond [`CALIBRATION_RATIO`] are mispredictions and surface as
//! `cost-misprediction` remarks instead of drifting silently.
//!
//! The rendered JSON is the `BENCH_dyn.json` baseline checked in at the
//! repository root and re-measured by `bench_check dyn` in CI; because
//! the interpreter and cost model are fully deterministic, any cycle
//! increase over the baseline is a real regression, not jitter.

use std::fmt::Write as _;

use snslp_interp::{DynProfile, OpClass};
use snslp_trace::{ReasonCode, Remark};

use crate::json::{check_schema, Json};
use crate::{measure_kernel_modes, DYN_MODES};

/// The schema tag every dynstats report carries; bump on breaking format
/// changes.
pub const DYNSTATS_SCHEMA: &str = "snslp-dynstats/v1";

/// Calibration tolerance: the achieved per-iteration saving may differ
/// from the predicted one by up to this factor in either direction
/// before the row counts as a misprediction. The two views deliberately
/// disagree on some weights (the execution view prices loads/stores at 3
/// cycles, the compile-time view at 1 — the paper's §V-A observation
/// that the static model is not a perfect predictor), so the gate is a
/// ratio band, not equality.
pub const CALIBRATION_RATIO: f64 = 4.0;

/// The pipeline labels of the dynstats report, matching
/// [`crate::DYN_MODES`] order.
pub const DYN_LABELS: [&str; 4] = ["o3", "slp", "lslp", "snslp"];

/// One pipeline's dynamic measurement of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeDyn {
    /// Pipeline label: `o3`, `slp`, `lslp`, or `snslp`.
    pub label: String,
    /// Simulated execution cycles of the whole run.
    pub cycles: u64,
    /// Dynamic instructions executed.
    pub dyn_insts: u64,
    /// Sum of committed (vectorized) graph costs from the pass report;
    /// negative = predicted saving per iteration, `0` for `o3` and for
    /// modes that vectorized nothing.
    pub predicted_cost: i64,
    /// Graphs the pass actually vectorized.
    pub vectorized_graphs: u64,
    /// The interpreter's dynamic profile for the run.
    pub profile: DynProfile,
    /// Measured native wall-clock nanoseconds of one run under the
    /// x86-64 JIT backend (minimum over [`crate::WALL_REPEATS`]
    /// invocations), or `None` when the JIT declined the function or the
    /// host has no native backend. The third calibration axis next to
    /// `predicted_cost` and `cycles`.
    pub wall_ns: Option<u64>,
    /// The measured wall time split per opcode class
    /// ([`OpClass::ALL`] order), apportioned by executed native bytes
    /// from an exact instrumented-hotness run. `None` whenever
    /// `wall_ns` is. The per-class ns-vs-predicted calibration axis.
    pub class_ns: Option<[u64; 5]>,
}

/// All pipelines of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDyn {
    /// Kernel name (registry name).
    pub name: String,
    /// Loop iterations the measurement ran.
    pub iters: u64,
    /// One entry per pipeline, [`DYN_LABELS`] order.
    pub modes: Vec<ModeDyn>,
}

impl KernelDyn {
    /// Measurement for a pipeline label.
    pub fn mode(&self, label: &str) -> Option<&ModeDyn> {
        self.modes.iter().find(|m| m.label == label)
    }

    /// Speedup of `label` over the `o3` baseline (simulated cycles).
    ///
    /// # Panics
    ///
    /// Panics if either pipeline is missing from the row.
    pub fn speedup(&self, label: &str) -> f64 {
        let base = self.mode("o3").expect("o3 measured").cycles as f64;
        base / self.mode(label).expect("mode measured").cycles as f64
    }
}

/// The whole dynstats report.
#[derive(Debug, Clone, PartialEq)]
pub struct DynReport {
    /// One row per kernel, registry order.
    pub kernels: Vec<KernelDyn>,
}

/// Measures every registry kernel under all four pipelines at its
/// default iteration count.
///
/// # Panics
///
/// Panics if compilation or interpretation fails — both indicate a bug
/// in the reproduction, not in inputs.
pub fn collect_kernel_dyn() -> DynReport {
    let kernels = snslp_kernels::registry()
        .iter()
        .map(|kernel| {
            let row = measure_kernel_modes(kernel, kernel.default_iters, &DYN_MODES);
            let modes = DYN_MODES
                .iter()
                .zip(DYN_LABELS)
                .map(|(&mode, label)| {
                    let r = row.result(mode);
                    ModeDyn {
                        label: label.to_string(),
                        cycles: r.cycles,
                        dyn_insts: r.dyn_insts,
                        predicted_cost: r
                            .report
                            .as_ref()
                            .map(|rep| rep.predicted_cost())
                            .unwrap_or(0),
                        vectorized_graphs: r
                            .report
                            .as_ref()
                            .map(|rep| rep.vectorized_graphs() as u64)
                            .unwrap_or(0),
                        profile: r.profile.clone(),
                        wall_ns: r.wall_ns,
                        class_ns: r.class_ns,
                    }
                })
                .collect();
            KernelDyn {
                name: kernel.name.to_string(),
                iters: kernel.default_iters as u64,
                modes,
            }
        })
        .collect();
    DynReport { kernels }
}

// ---------------------------------------------------------------------
// Calibration: predicted vs achieved.
// ---------------------------------------------------------------------

/// One joined prediction/achievement row (one kernel under one
/// vectorizing pipeline that committed at least one graph).
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Kernel name.
    pub kernel: String,
    /// Pipeline label (`slp`, `lslp`, `snslp`).
    pub mode: String,
    /// Predicted cost delta per iteration (negative = predicted saving).
    pub predicted: i64,
    /// Achieved saving in simulated cycles per iteration
    /// (`(o3 - mode) / iters`; positive = the rewrite paid off).
    pub achieved_per_iter: f64,
    /// `achieved / -predicted` when a saving was predicted.
    pub ratio: Option<f64>,
    /// Signs agree: a predicted saving was achieved as a saving.
    pub agree: bool,
    /// Beyond [`CALIBRATION_RATIO`] (or a sign flip): surfaces as a
    /// `cost-misprediction` remark.
    pub mispredicted: bool,
}

/// Joins every vectorized kernel/mode pair of the report against the
/// `o3` baseline.
pub fn calibrate(report: &DynReport) -> Vec<Calibration> {
    let mut rows = Vec::new();
    for k in &report.kernels {
        let Some(base) = k.mode("o3") else { continue };
        for m in &k.modes {
            if m.label == "o3" || m.vectorized_graphs == 0 {
                continue;
            }
            let achieved = (base.cycles as f64 - m.cycles as f64) / k.iters as f64;
            let predicted = m.predicted_cost;
            let agree = predicted < 0 && achieved > 0.0;
            let ratio = if predicted < 0 {
                Some(achieved / -(predicted as f64))
            } else {
                None
            };
            let in_band = |r: f64| (1.0 / CALIBRATION_RATIO..=CALIBRATION_RATIO).contains(&r);
            let mispredicted = !agree || !ratio.map(in_band).unwrap_or(false);
            rows.push(Calibration {
                kernel: k.name.clone(),
                mode: m.label.clone(),
                predicted,
                achieved_per_iter: achieved,
                ratio,
                agree,
                mispredicted,
            });
        }
    }
    rows
}

/// Builds one `cost-misprediction` remark per mispredicted calibration
/// row and emits each through the trace sink (visible when the `remarks`
/// facet is enabled). Returns the remarks so callers can also print or
/// count them.
pub fn misprediction_remarks(rows: &[Calibration]) -> Vec<Remark> {
    rows.iter()
        .filter(|c| c.mispredicted)
        .map(|c| {
            let remark = Remark {
                pass: c.mode.clone(),
                function: format!("@{}", c.kernel),
                block: "-".to_string(),
                site: "-".to_string(),
                inst: 0,
                // Calibration covers the whole kernel, not one seed; the
                // synthetic anchor keeps the field joinable by function.
                decision: snslp_trace::DecisionId::new(&c.kernel, "-", 0, 0),
                seed_kind: "calibration".to_string(),
                width: 0,
                vectorized: true,
                reason: ReasonCode::CostMisprediction,
                cost: Some(c.predicted),
                detail: match c.ratio {
                    Some(r) => format!("achieved={:.1}/iter ratio={:.2}", c.achieved_per_iter, r),
                    None => format!("achieved={:.1}/iter", c.achieved_per_iter),
                },
            };
            remark.emit();
            remark
        })
        .collect()
}

// ---------------------------------------------------------------------
// Wall-clock calibration: simulated cycles vs measured native time.
// ---------------------------------------------------------------------

/// Ratio band for the wall-clock join: a row's ns-per-simulated-cycle may
/// differ from the median row by up to this factor in either direction
/// before it is flagged. The simulated model abstracts caches, ILP and
/// branch prediction, so per-kernel spread is expected; an order of
/// magnitude beyond the median means the model badly mis-weights that
/// kernel's op mix.
pub const WALL_BAND: f64 = 8.0;

/// One kernel/mode row joining the simulated-cycle axis against the
/// measured native wall time (only rows the JIT actually covered).
#[derive(Debug, Clone, PartialEq)]
pub struct WallCalibration {
    /// Kernel name.
    pub kernel: String,
    /// Pipeline label (`o3`, `slp`, `lslp`, `snslp`).
    pub mode: String,
    /// Simulated execution cycles.
    pub cycles: u64,
    /// Measured native wall time, nanoseconds.
    pub wall_ns: u64,
    /// Measured nanoseconds per simulated cycle.
    pub ns_per_cycle: f64,
    /// This row's `ns_per_cycle` relative to the median row.
    pub vs_median: f64,
    /// Outside the [`WALL_BAND`] ratio band around the median.
    pub outlier: bool,
}

/// Joins every JIT-covered kernel/mode pair of the report against the
/// measured native wall time and flags ns-per-cycle outliers relative to
/// the median row. Empty on hosts without the native backend.
pub fn calibrate_wall(report: &DynReport) -> Vec<WallCalibration> {
    let mut rows: Vec<WallCalibration> = Vec::new();
    for k in &report.kernels {
        for m in &k.modes {
            let Some(wall_ns) = m.wall_ns else { continue };
            if m.cycles == 0 {
                continue;
            }
            rows.push(WallCalibration {
                kernel: k.name.clone(),
                mode: m.label.clone(),
                cycles: m.cycles,
                wall_ns,
                ns_per_cycle: wall_ns as f64 / m.cycles as f64,
                vs_median: 1.0,
                outlier: false,
            });
        }
    }
    if rows.is_empty() {
        return rows;
    }
    let mut npc: Vec<f64> = rows.iter().map(|r| r.ns_per_cycle).collect();
    npc.sort_by(f64::total_cmp);
    let median = npc[npc.len() / 2];
    for r in &mut rows {
        r.vs_median = r.ns_per_cycle / median;
        r.outlier = !(1.0 / WALL_BAND..=WALL_BAND).contains(&r.vs_median);
    }
    rows
}

/// Geometric-mean measured wall speedup of `label` over the scalar `o3`
/// pipeline across kernels where the JIT covered **both**, with the
/// kernel count. `None` when no kernel qualifies (non-x86-64 hosts).
pub fn wall_geomean(report: &DynReport, label: &str) -> Option<(f64, usize)> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for k in &report.kernels {
        let base = k.mode("o3").and_then(|m| m.wall_ns);
        let this = k.mode(label).and_then(|m| m.wall_ns);
        if let (Some(b), Some(t)) = (base, this) {
            if b > 0 && t > 0 {
                sum += (b as f64 / t as f64).ln();
                n += 1;
            }
        }
    }
    (n > 0).then(|| ((sum / n as f64).exp(), n))
}

// ---------------------------------------------------------------------
// Per-class calibration: measured class ns vs predicted class cycles.
// ---------------------------------------------------------------------

/// Ratio band for the per-class join, the same spread allowance as the
/// per-kernel [`WALL_BAND`]: a class's measured ns-per-predicted-cycle
/// may differ from the median class row by this factor in either
/// direction before the model's weight for that class counts as
/// mispredicted on that kernel.
pub const CLASS_BAND: f64 = 8.0;

/// One per-opcode-class row joining the measured native time attribution
/// against the cost model's predicted cycles for the same class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassCalibration {
    /// Kernel name.
    pub kernel: String,
    /// Pipeline label.
    pub mode: String,
    /// Opcode class.
    pub class: OpClass,
    /// Measured native nanoseconds attributed to the class.
    pub ns: u64,
    /// The model's predicted (simulated) cycles for the class.
    pub predicted_cycles: u64,
    /// Measured nanoseconds per predicted cycle.
    pub ns_per_cycle: f64,
    /// Relative to the median row across all kernels/modes/classes.
    pub vs_median: f64,
    /// Outside the [`CLASS_BAND`] around the median: the model
    /// mis-weights this class on this kernel.
    pub outlier: bool,
}

/// Joins every measured `class_ns` split of the report against the
/// interpreter's per-class simulated cycles. Classes with no measured
/// time or no predicted cycles are skipped (nothing to compare). Empty
/// on hosts without the native backend.
pub fn calibrate_class(report: &DynReport) -> Vec<ClassCalibration> {
    let mut rows = Vec::new();
    for k in &report.kernels {
        for m in &k.modes {
            let Some(ns) = m.class_ns else { continue };
            for c in OpClass::ALL {
                let (t, cycles) = (ns[c.index()], m.profile.cycles[c.index()]);
                if t == 0 || cycles == 0 {
                    continue;
                }
                rows.push(ClassCalibration {
                    kernel: k.name.clone(),
                    mode: m.label.clone(),
                    class: c,
                    ns: t,
                    predicted_cycles: cycles,
                    ns_per_cycle: t as f64 / cycles as f64,
                    vs_median: 1.0,
                    outlier: false,
                });
            }
        }
    }
    if rows.is_empty() {
        return rows;
    }
    let mut npc: Vec<f64> = rows.iter().map(|r| r.ns_per_cycle).collect();
    npc.sort_by(f64::total_cmp);
    let median = npc[npc.len() / 2];
    for r in &mut rows {
        r.vs_median = r.ns_per_cycle / median;
        r.outlier = !(1.0 / CLASS_BAND..=CLASS_BAND).contains(&r.vs_median);
    }
    rows
}

/// Builds one `cost-misprediction` remark per out-of-band per-class row
/// and emits each through the trace sink. The per-class axis is
/// advisory (it never fails [`check_dyn`]) but its drift is visible in
/// the remark stream instead of silent.
pub fn class_misprediction_remarks(rows: &[ClassCalibration]) -> Vec<Remark> {
    rows.iter()
        .filter(|c| c.outlier)
        .map(|c| {
            let remark = Remark {
                pass: c.mode.clone(),
                function: format!("@{}", c.kernel),
                block: "-".to_string(),
                site: "-".to_string(),
                inst: 0,
                decision: snslp_trace::DecisionId::new(&c.kernel, "-", 0, 0),
                seed_kind: "calibration".to_string(),
                width: 0,
                vectorized: true,
                reason: ReasonCode::CostMisprediction,
                cost: Some(c.predicted_cycles as i64),
                detail: format!(
                    "class={} measured={}ns predicted={}cyc vs_median={:.2}",
                    c.class.name(),
                    c.ns,
                    c.predicted_cycles,
                    c.vs_median
                ),
            };
            remark.emit();
            remark
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rendering.
// ---------------------------------------------------------------------

impl DynReport {
    /// The paper-style per-kernel dynamic-cycle speedup table
    /// (Fig. 9/10 reproduction): scalar `O3` cycles plus one
    /// cycles/speedup pair per vectorizing pipeline.
    pub fn speedup_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8}",
            "kernel", "O3 cycles", "SLP", "LSLP", "SN-SLP", "SLP x", "LSLP x", "SN-SLP x"
        );
        let mut geo: [(f64, usize); 3] = [(0.0, 0); 3];
        for k in &self.kernels {
            let cycles = |l: &str| k.mode(l).map(|m| m.cycles).unwrap_or(0);
            for (i, l) in ["slp", "lslp", "snslp"].iter().enumerate() {
                geo[i].0 += k.speedup(l).ln();
                geo[i].1 += 1;
            }
            let _ = writeln!(
                s,
                "{:<18} {:>12} {:>12} {:>12} {:>12} {:>8.3} {:>8.3} {:>8.3}",
                k.name,
                cycles("o3"),
                cycles("slp"),
                cycles("lslp"),
                cycles("snslp"),
                k.speedup("slp"),
                k.speedup("lslp"),
                k.speedup("snslp"),
            );
        }
        let g = |i: usize| {
            let (sum, n) = geo[i];
            if n == 0 {
                1.0
            } else {
                (sum / n as f64).exp()
            }
        };
        let _ = writeln!(
            s,
            "{:<18} {:>12} {:>12} {:>12} {:>12} {:>8.3} {:>8.3} {:>8.3}",
            "geomean",
            "",
            "",
            "",
            "",
            g(0),
            g(1),
            g(2)
        );
        s
    }

    /// Per-kernel lane-utilization / packing-overhead table: how much of
    /// the dynamic work runs in vectors, at what mean width, and what the
    /// packing (insert/extract/gather) overhead was, per pipeline.
    pub fn lane_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:<6} {:>10} {:>10} {:>9} {:>8} {:>8} {:>9} {:>9}",
            "kernel",
            "mode",
            "vec ops",
            "scal ops",
            "avg lanes",
            "gathers",
            "shuffles",
            "ins+ext",
            "mem ops"
        );
        for k in &self.kernels {
            for m in &k.modes {
                let p = &m.profile;
                let _ = writeln!(
                    s,
                    "{:<18} {:<6} {:>10} {:>10} {:>9} {:>8} {:>8} {:>9} {:>9}",
                    k.name,
                    m.label,
                    p.vector_ops,
                    p.scalar_ops,
                    p.mean_lanes()
                        .map(|l| format!("{l:.2}"))
                        .unwrap_or_else(|| "-".to_string()),
                    p.gathers,
                    p.shuffles,
                    p.inserts + p.extracts,
                    p.mem_ops(),
                );
            }
        }
        s
    }

    /// The calibration report: one line per vectorized kernel/mode pair,
    /// prediction joined against achievement, mispredictions flagged.
    pub fn calibration_table(&self) -> String {
        let rows = calibrate(self);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:<6} {:>10} {:>14} {:>8}  verdict",
            "kernel", "mode", "predicted", "achieved/iter", "ratio"
        );
        for c in &rows {
            let _ = writeln!(
                s,
                "{:<18} {:<6} {:>10} {:>14.2} {:>8}  {}",
                c.kernel,
                c.mode,
                c.predicted,
                c.achieved_per_iter,
                c.ratio
                    .map(|r| format!("{r:.2}"))
                    .unwrap_or_else(|| "-".to_string()),
                if c.mispredicted { "MISPREDICTED" } else { "ok" },
            );
        }
        let bad = rows.iter().filter(|c| c.mispredicted).count();
        let _ = writeln!(
            s,
            "{} rows, {} mispredicted (ratio band {:.1}x)",
            rows.len(),
            bad,
            CALIBRATION_RATIO
        );
        s
    }

    /// The three-axis calibration table: for every JIT-covered
    /// kernel/mode row, the statically *predicted* cost, the *simulated*
    /// cycles, and the *measured* native wall time, joined through
    /// ns-per-simulated-cycle against the median row. Footer lines give
    /// the median and the measured wall-clock geomean speedups.
    pub fn wall_table(&self) -> String {
        let rows = calibrate_wall(self);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:<6} {:>10} {:>12} {:>12} {:>8} {:>9}  verdict",
            "kernel", "mode", "predicted", "sim cycles", "wall ns", "ns/cyc", "vs median"
        );
        if rows.is_empty() {
            let _ = writeln!(
                s,
                "(no native backend on this host: wall axis not measured)"
            );
            return s;
        }
        for r in &rows {
            let predicted = self
                .kernels
                .iter()
                .find(|k| k.name == r.kernel)
                .and_then(|k| k.mode(&r.mode))
                .map(|m| m.predicted_cost)
                .unwrap_or(0);
            let _ = writeln!(
                s,
                "{:<18} {:<6} {:>10} {:>12} {:>12} {:>8.3} {:>9.2}  {}",
                r.kernel,
                r.mode,
                predicted,
                r.cycles,
                r.wall_ns,
                r.ns_per_cycle,
                r.vs_median,
                if r.outlier { "OUTLIER" } else { "ok" },
            );
        }
        let mut npc: Vec<f64> = rows.iter().map(|r| r.ns_per_cycle).collect();
        npc.sort_by(f64::total_cmp);
        let outliers = rows.iter().filter(|r| r.outlier).count();
        let _ = writeln!(
            s,
            "{} rows, {} outliers (band {:.1}x around median {:.3} ns/cyc)",
            rows.len(),
            outliers,
            WALL_BAND,
            npc[npc.len() / 2],
        );
        for label in ["slp", "lslp", "snslp"] {
            if let Some((geo, n)) = wall_geomean(self, label) {
                let _ = writeln!(
                    s,
                    "measured wall geomean {label} vs o3: {geo:.3}x over {n} kernels"
                );
            }
        }
        s
    }

    /// The per-opcode-class calibration table: measured native time per
    /// class (from instrumented hotness) joined against the model's
    /// predicted cycles for the same class, with out-of-band rows
    /// flagged. Advisory — drift surfaces as `cost-misprediction`
    /// remarks, not gate failures.
    pub fn class_table(&self) -> String {
        let rows = calibrate_class(self);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:<18} {:<6} {:<8} {:>10} {:>12} {:>8} {:>9}  verdict",
            "kernel", "mode", "class", "meas ns", "pred cycles", "ns/cyc", "vs median"
        );
        if rows.is_empty() {
            let _ = writeln!(
                s,
                "(no native backend on this host: class axis not measured)"
            );
            return s;
        }
        for r in &rows {
            let _ = writeln!(
                s,
                "{:<18} {:<6} {:<8} {:>10} {:>12} {:>8.3} {:>9.2}  {}",
                r.kernel,
                r.mode,
                r.class.name(),
                r.ns,
                r.predicted_cycles,
                r.ns_per_cycle,
                r.vs_median,
                if r.outlier { "OUTLIER" } else { "ok" },
            );
        }
        let outliers = rows.iter().filter(|r| r.outlier).count();
        let _ = writeln!(
            s,
            "{} class rows, {} out of band ({:.1}x around the median)",
            rows.len(),
            outliers,
            CLASS_BAND
        );
        s
    }

    /// Renders the report as `snslp-dynstats/v1` JSON.
    pub fn to_json(&self) -> String {
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let modes = k
                    .modes
                    .iter()
                    .map(|m| (m.label.clone(), mode_to_json(m)))
                    .collect();
                Json::Obj(vec![
                    ("name".to_string(), Json::Str(k.name.clone())),
                    ("iters".to_string(), Json::Num(k.iters as f64)),
                    ("modes".to_string(), Json::Obj(modes)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(DYNSTATS_SCHEMA.to_string())),
            ("kernels".to_string(), Json::Arr(kernels)),
        ])
        .render()
    }

    /// Parses and validates a dynstats document: schema tag, required
    /// fields, and internal consistency (per-class op counts must sum to
    /// `dyn_insts`, per-class cycles to `cycles`).
    pub fn from_json(text: &str) -> Result<DynReport, String> {
        let doc = Json::parse(text)?;
        check_schema(&doc, DYNSTATS_SCHEMA)?;
        let mut kernels = Vec::new();
        for row in doc
            .get("kernels")
            .and_then(Json::as_arr)
            .ok_or("missing kernels")?
        {
            let name = row
                .get("name")
                .and_then(Json::as_str)
                .ok_or("kernel row missing name")?
                .to_string();
            let iters = num_field(row, "iters", &name)?;
            let Some(Json::Obj(mode_members)) = row.get("modes") else {
                return Err(format!("kernel {name}: missing modes object"));
            };
            let mut modes = Vec::new();
            for (label, m) in mode_members {
                modes.push(mode_from_json(label, m, &name)?);
            }
            if modes.is_empty() {
                return Err(format!("kernel {name}: no modes"));
            }
            kernels.push(KernelDyn { name, iters, modes });
        }
        if kernels.is_empty() {
            return Err("report has no kernels".to_string());
        }
        Ok(DynReport { kernels })
    }
}

fn mode_to_json(m: &ModeDyn) -> Json {
    let p = &m.profile;
    let wall = m
        .wall_ns
        .map(|w| ("wall_ns".to_string(), Json::Num(w as f64)));
    let class_ns = m.class_ns.map(|ns| {
        (
            "class_ns".to_string(),
            Json::Obj(
                OpClass::ALL
                    .iter()
                    .map(|&c| (c.name().to_string(), Json::Num(ns[c.index()] as f64)))
                    .collect(),
            ),
        )
    });
    let ops = OpClass::ALL
        .iter()
        .map(|&c| (c.name().to_string(), Json::Num(p.ops_of(c) as f64)))
        .collect();
    let cycles = OpClass::ALL
        .iter()
        .map(|&c| (c.name().to_string(), Json::Num(p.cycles_of(c) as f64)))
        .collect();
    let lanes = (1..p.lanes_hist.len())
        .filter(|&w| p.lanes_hist[w] > 0)
        .map(|w| (w.to_string(), Json::Num(p.lanes_hist[w] as f64)))
        .collect();
    let mut members = vec![
        ("cycles".to_string(), Json::Num(m.cycles as f64)),
        ("dyn_insts".to_string(), Json::Num(m.dyn_insts as f64)),
        (
            "predicted_cost".to_string(),
            Json::Num(m.predicted_cost as f64),
        ),
        (
            "vectorized_graphs".to_string(),
            Json::Num(m.vectorized_graphs as f64),
        ),
    ];
    // Optional so baselines written on hosts without the native backend
    // (or before the JIT existed) stay parseable.
    members.extend(wall);
    members.extend(class_ns);
    members.push((
        "profile".to_string(),
        Json::Obj(vec![
            ("ops".to_string(), Json::Obj(ops)),
            ("class_cycles".to_string(), Json::Obj(cycles)),
            ("scalar_ops".to_string(), Json::Num(p.scalar_ops as f64)),
            ("vector_ops".to_string(), Json::Num(p.vector_ops as f64)),
            ("lane_slots".to_string(), Json::Num(p.lane_slots as f64)),
            ("lanes".to_string(), Json::Obj(lanes)),
            ("loads".to_string(), Json::Num(p.loads as f64)),
            ("stores".to_string(), Json::Num(p.stores as f64)),
            ("bytes_loaded".to_string(), Json::Num(p.bytes_loaded as f64)),
            ("bytes_stored".to_string(), Json::Num(p.bytes_stored as f64)),
            ("inserts".to_string(), Json::Num(p.inserts as f64)),
            ("extracts".to_string(), Json::Num(p.extracts as f64)),
            ("gathers".to_string(), Json::Num(p.gathers as f64)),
            ("shuffles".to_string(), Json::Num(p.shuffles as f64)),
            ("splats".to_string(), Json::Num(p.splats as f64)),
        ]),
    ));
    Json::Obj(members)
}

fn num_field(obj: &Json, key: &str, ctx: &str) -> Result<u64, String> {
    let v = obj
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing {key}"))?;
    if !(v.is_finite() && v >= 0.0 && v.fract() == 0.0) {
        return Err(format!("{ctx}: implausible {key} = {v}"));
    }
    Ok(v as u64)
}

fn mode_from_json(label: &str, m: &Json, kernel: &str) -> Result<ModeDyn, String> {
    let ctx = format!("kernel {kernel}/{label}");
    let cycles = num_field(m, "cycles", &ctx)?;
    let dyn_insts = num_field(m, "dyn_insts", &ctx)?;
    let predicted_cost = m
        .get("predicted_cost")
        .and_then(Json::as_num)
        .ok_or_else(|| format!("{ctx}: missing predicted_cost"))? as i64;
    let vectorized_graphs = num_field(m, "vectorized_graphs", &ctx)?;
    // Optional: absent in baselines from hosts without the native JIT.
    let wall_ns = match m.get("wall_ns") {
        None => None,
        Some(_) => Some(num_field(m, "wall_ns", &ctx)?),
    };
    let class_ns = match m.get("class_ns") {
        None => None,
        Some(obj) => {
            let mut ns = [0u64; 5];
            for c in OpClass::ALL {
                ns[c.index()] = num_field(obj, c.name(), &ctx)?;
            }
            let Some(wall) = wall_ns else {
                return Err(format!("{ctx}: class_ns present without wall_ns"));
            };
            let sum: u64 = ns.iter().sum();
            if sum > wall {
                return Err(format!(
                    "{ctx}: class_ns sums to {sum} ns, more than wall_ns {wall}"
                ));
            }
            Some(ns)
        }
    };
    let prof = m
        .get("profile")
        .ok_or_else(|| format!("{ctx}: missing profile"))?;
    let mut profile = DynProfile::new();
    for (i, class) in OpClass::ALL.into_iter().enumerate() {
        let ops = prof
            .get("ops")
            .ok_or_else(|| format!("{ctx}: missing profile.ops"))?;
        let cyc = prof
            .get("class_cycles")
            .ok_or_else(|| format!("{ctx}: missing profile.class_cycles"))?;
        profile.ops[i] = num_field(ops, class.name(), &ctx)?;
        profile.cycles[i] = num_field(cyc, class.name(), &ctx)?;
    }
    profile.scalar_ops = num_field(prof, "scalar_ops", &ctx)?;
    profile.vector_ops = num_field(prof, "vector_ops", &ctx)?;
    profile.lane_slots = num_field(prof, "lane_slots", &ctx)?;
    if let Some(Json::Obj(lanes)) = prof.get("lanes") {
        for (w, n) in lanes {
            let w: usize = w
                .parse()
                .map_err(|_| format!("{ctx}: bad lane width key {w:?}"))?;
            if w == 0 || w >= profile.lanes_hist.len() {
                return Err(format!("{ctx}: lane width {w} out of range"));
            }
            profile.lanes_hist[w] = n
                .as_num()
                .filter(|v| v.is_finite() && *v >= 0.0 && v.fract() == 0.0)
                .ok_or_else(|| format!("{ctx}: bad lane count for width {w}"))?
                as u64;
        }
    } else {
        return Err(format!("{ctx}: missing profile.lanes"));
    }
    profile.loads = num_field(prof, "loads", &ctx)?;
    profile.stores = num_field(prof, "stores", &ctx)?;
    profile.bytes_loaded = num_field(prof, "bytes_loaded", &ctx)?;
    profile.bytes_stored = num_field(prof, "bytes_stored", &ctx)?;
    profile.inserts = num_field(prof, "inserts", &ctx)?;
    profile.extracts = num_field(prof, "extracts", &ctx)?;
    profile.gathers = num_field(prof, "gathers", &ctx)?;
    profile.shuffles = num_field(prof, "shuffles", &ctx)?;
    profile.splats = num_field(prof, "splats", &ctx)?;

    if profile.total_ops() != dyn_insts {
        return Err(format!(
            "{ctx}: profile op classes sum to {} but dyn_insts is {dyn_insts}",
            profile.total_ops()
        ));
    }
    if profile.total_cycles() != cycles {
        return Err(format!(
            "{ctx}: profile class cycles sum to {} but cycles is {cycles}",
            profile.total_cycles()
        ));
    }
    Ok(ModeDyn {
        label: label.to_string(),
        cycles,
        dyn_insts,
        predicted_cost,
        vectorized_graphs,
        profile,
        wall_ns,
        class_ns,
    })
}

// ---------------------------------------------------------------------
// Baseline gate.
// ---------------------------------------------------------------------

/// Compares a fresh report against the checked-in baseline. Because the
/// simulated-cycle pipeline is deterministic, *any* cycle increase is a
/// real regression. Also re-checks calibration sign-agreement on the
/// fresh report so a cost-model drift cannot land silently.
///
/// Returns the human-readable delta table on success.
///
/// # Errors
///
/// Returns every violated gate, one per line.
pub fn check_dyn(baseline: &DynReport, fresh: &DynReport) -> Result<String, String> {
    let mut failures = Vec::new();
    let mut table = String::new();
    let _ = writeln!(
        table,
        "{:<18} {:<6} {:>14} {:>14} {:>9}",
        "kernel", "mode", "baseline cyc", "fresh cyc", "delta"
    );
    for bk in &baseline.kernels {
        let Some(fk) = fresh.kernels.iter().find(|k| k.name == bk.name) else {
            failures.push(format!("kernel {} missing from fresh report", bk.name));
            continue;
        };
        for bm in &bk.modes {
            let Some(fm) = fk.mode(&bm.label) else {
                failures.push(format!(
                    "{}/{} missing from fresh report",
                    bk.name, bm.label
                ));
                continue;
            };
            let delta = fm.cycles as i64 - bm.cycles as i64;
            let _ = writeln!(
                table,
                "{:<18} {:<6} {:>14} {:>14} {:>+9}",
                bk.name, bm.label, bm.cycles, fm.cycles, delta
            );
            if fm.cycles > bm.cycles {
                failures.push(format!(
                    "{}/{}: fresh {} cycles > baseline {} (deterministic regression)",
                    bk.name, bm.label, fm.cycles, bm.cycles
                ));
            }
        }
    }
    for c in calibrate(fresh) {
        if !c.agree {
            failures.push(format!(
                "{}/{}: predicted {} but achieved {:.2}/iter — sign disagreement",
                c.kernel, c.mode, c.predicted, c.achieved_per_iter
            ));
        }
    }
    // Wall gate, fresh-only (the baseline may predate the JIT or come
    // from another host): on kernels where the native backend covered
    // both SN-SLP and scalar O3, the measured wall-clock geomean must
    // show a real win, not just a simulated one. Skipped when no kernel
    // is covered (non-x86-64 hosts).
    if let Some((geo, n)) = wall_geomean(fresh, "snslp") {
        if geo <= 1.0 {
            failures.push(format!(
                "measured wall geomean snslp vs o3 is {geo:.3}x <= 1.0 over {n} JIT-covered kernels"
            ));
        }
    }
    if failures.is_empty() {
        Ok(table)
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_kernels::kernel_by_name;

    #[test]
    fn labels_match_compile_pipelines() {
        for ((label, mode), dyn_label) in crate::COMPILE_PIPELINES.iter().zip(DYN_LABELS) {
            assert_eq!(*label, dyn_label);
            assert_eq!(
                DYN_MODES[DYN_LABELS.iter().position(|l| *l == dyn_label).unwrap()],
                *mode
            );
        }
    }

    fn one_kernel_report(name: &str) -> DynReport {
        let kernel = kernel_by_name(name).unwrap();
        let row = measure_kernel_modes(&kernel, kernel.default_iters, &DYN_MODES);
        let modes = DYN_MODES
            .iter()
            .zip(DYN_LABELS)
            .map(|(&mode, label)| {
                let r = row.result(mode);
                ModeDyn {
                    label: label.to_string(),
                    cycles: r.cycles,
                    dyn_insts: r.dyn_insts,
                    predicted_cost: r
                        .report
                        .as_ref()
                        .map(|rep| rep.predicted_cost())
                        .unwrap_or(0),
                    vectorized_graphs: r
                        .report
                        .as_ref()
                        .map(|rep| rep.vectorized_graphs() as u64)
                        .unwrap_or(0),
                    profile: r.profile.clone(),
                    wall_ns: r.wall_ns,
                    class_ns: r.class_ns,
                }
            })
            .collect();
        DynReport {
            kernels: vec![KernelDyn {
                name: kernel.name.to_string(),
                iters: kernel.default_iters as u64,
                modes,
            }],
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let r = one_kernel_report("motiv_leaf");
        let text = r.to_json();
        let back = DynReport::from_json(&text).unwrap();
        assert_eq!(r, back);
        // The validator rejects broken internal consistency.
        let broken = text.replacen("\"dyn_insts\": ", "\"dyn_insts\": 1", 1);
        assert!(DynReport::from_json(&broken).is_err());
        assert!(DynReport::from_json("{}").is_err());
        assert!(DynReport::from_json(r#"{"schema": "other/v1"}"#).is_err());
    }

    #[test]
    fn motivating_kernel_calibrates_in_band() {
        let r = one_kernel_report("motiv_leaf");
        let k = &r.kernels[0];
        // SN-SLP must win: lowest cycles of all four pipelines.
        let sn = k.mode("snslp").unwrap().cycles;
        for label in ["o3", "slp", "lslp"] {
            assert!(
                sn < k.mode(label).unwrap().cycles,
                "SN-SLP not fastest vs {label}"
            );
        }
        // Fig. 2: (L)SLP keep scalar on the motivating kernel.
        assert_eq!(k.mode("slp").unwrap().vectorized_graphs, 0);
        assert_eq!(k.mode("slp").unwrap().profile.vector_ops, 0);
        // ... and the committed SN-SLP rewrite calibrates cleanly.
        let rows = calibrate(&r);
        assert_eq!(rows.len(), 1, "{rows:?}");
        let c = &rows[0];
        assert_eq!(c.mode, "snslp");
        assert_eq!(c.predicted, -6);
        assert!(c.agree && !c.mispredicted, "{c:?}");
        assert!(misprediction_remarks(&rows).is_empty());
    }

    #[test]
    fn misprediction_rows_produce_remarks() {
        let rows = vec![Calibration {
            kernel: "synthetic".to_string(),
            mode: "snslp".to_string(),
            predicted: -6,
            achieved_per_iter: -2.0,
            ratio: Some(-0.33),
            agree: false,
            mispredicted: true,
        }];
        let remarks = misprediction_remarks(&rows);
        assert_eq!(remarks.len(), 1);
        assert_eq!(remarks[0].reason, ReasonCode::CostMisprediction);
        assert!(remarks[0].machine().contains("reason=cost-misprediction"));
    }

    #[test]
    fn gate_flags_deterministic_regressions() {
        let base = one_kernel_report("motiv_trunk");
        let mut fresh = base.clone();
        assert!(check_dyn(&base, &fresh).is_ok());
        fresh.kernels[0].modes[3].cycles += 1;
        let err = check_dyn(&base, &fresh).unwrap_err();
        assert!(err.contains("deterministic regression"), "{err}");
        // A missing kernel is also a failure.
        let empty = DynReport { kernels: vec![] };
        assert!(check_dyn(&base, &empty).is_err());
    }

    #[test]
    fn wall_axis_round_trips_and_calibrates() {
        let mut r = one_kernel_report("motiv_leaf");
        // Force known wall numbers so the test is platform-independent:
        // o3 slower than snslp in measured time, all rows near one
        // ns-per-cycle scale.
        for (m, wall) in r.kernels[0]
            .modes
            .iter_mut()
            .zip([4000u64, 3500, 3600, 1500])
        {
            m.wall_ns = Some(wall);
            // The real class split belongs to the real measurement, not
            // the forced wall numbers — drop it to keep the
            // sum(class_ns) <= wall_ns invariant honest.
            m.class_ns = None;
        }
        let back = DynReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back, "wall_ns must survive the JSON round trip");

        let rows = calibrate_wall(&r);
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|w| !w.outlier), "{rows:?}");
        let (geo, n) = wall_geomean(&r, "snslp").unwrap();
        assert_eq!(n, 1);
        assert!(geo > 1.0, "geo {geo}");
        let table = r.wall_table();
        assert!(table.contains("ns/cyc"), "{table}");
        assert!(table.contains("measured wall geomean snslp vs o3"));
        assert!(check_dyn(&r, &r).is_ok());

        // A measured slowdown under SN-SLP trips the fresh-only gate.
        let mut slow = r.clone();
        slow.kernels[0].modes[3].wall_ns = Some(9000);
        let err = check_dyn(&r, &slow).unwrap_err();
        assert!(err.contains("wall geomean"), "{err}");

        // Hosts without the backend skip the wall gate entirely.
        let mut bare = r.clone();
        for m in &mut bare.kernels[0].modes {
            m.wall_ns = None;
        }
        assert!(calibrate_wall(&bare).is_empty());
        assert!(wall_geomean(&bare, "snslp").is_none());
        assert!(bare.wall_table().contains("no native backend"));
        assert!(check_dyn(&bare, &bare).is_ok());
    }

    #[test]
    fn class_axis_round_trips_and_calibrates() {
        let mut r = one_kernel_report("motiv_leaf");
        // Force a deterministic split proportional to predicted class
        // cycles: uniform ns-per-cycle, so every row is in band. The
        // walls keep snslp measurably faster than o3 for the wall gate.
        let walls = [10_000u64, 9_000, 9_000, 5_000];
        for (m, wall) in r.kernels[0].modes.iter_mut().zip(walls) {
            m.wall_ns = Some(wall);
            let total = m.profile.total_cycles();
            let mut ns = [0u64; 5];
            for (i, slot) in ns.iter_mut().enumerate() {
                *slot = wall * m.profile.cycles[i] / total;
            }
            m.class_ns = Some(ns);
        }
        let back = DynReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back, "class_ns must survive the JSON round trip");

        let rows = calibrate_class(&r);
        assert!(!rows.is_empty());
        assert!(rows.iter().all(|c| !c.outlier), "{rows:?}");
        assert!(class_misprediction_remarks(&rows).is_empty());
        assert!(r.class_table().contains("class rows"));

        // An absurdly expensive class trips the band and produces a
        // cost-misprediction remark.
        let mut skewed = r.clone();
        let m = &mut skewed.kernels[0].modes[0];
        let mut ns = m.class_ns.unwrap();
        let wall = m.wall_ns.unwrap();
        // All of the wall time on the class with the fewest predicted
        // cycles — the largest possible ns-per-cycle skew.
        let hot = (0..5)
            .filter(|&i| ns[i] > 0)
            .min_by_key(|&i| m.profile.cycles[i])
            .unwrap();
        ns = [0; 5];
        ns[hot] = wall;
        m.class_ns = Some(ns);
        let rows = calibrate_class(&skewed);
        assert!(rows.iter().any(|c| c.outlier), "{rows:?}");
        let remarks = class_misprediction_remarks(&rows);
        assert!(!remarks.is_empty());
        assert_eq!(remarks[0].reason, ReasonCode::CostMisprediction);
        assert!(remarks[0].detail.contains("class="));
        // The class axis is advisory: the gate stays green.
        assert!(check_dyn(&skewed, &skewed).is_ok());

        // The reader enforces the cross-invariants.
        let text = r.to_json();
        let orphan = text.replacen("\"wall_ns\": 10000,", "", 1);
        assert!(DynReport::from_json(&orphan)
            .unwrap_err()
            .contains("class_ns present without wall_ns"),);
        let overflow = text.replacen("\"wall_ns\": 10000,", "\"wall_ns\": 10,", 1);
        assert!(DynReport::from_json(&overflow)
            .unwrap_err()
            .contains("more than wall_ns"));
    }

    #[test]
    fn native_host_measures_wall_time() {
        if !snslp_jit::native_supported() {
            return;
        }
        let r = one_kernel_report("motiv_leaf");
        for m in &r.kernels[0].modes {
            assert!(
                m.wall_ns.is_some_and(|w| w > 0),
                "{} not JIT-covered on a native host",
                m.label
            );
        }
    }

    #[test]
    fn tables_render_all_kernels_and_modes() {
        let r = one_kernel_report("povray_shade");
        let speed = r.speedup_table();
        assert!(speed.contains("povray_shade"));
        assert!(speed.contains("geomean"));
        let lanes = r.lane_table();
        for label in DYN_LABELS {
            assert!(lanes.contains(label), "{lanes}");
        }
        let cal = r.calibration_table();
        assert!(cal.contains("verdict"));
    }
}
