//! Criterion bench for the paper's Fig. 5: executing each kernel (on the
//! reference interpreter) compiled under O3 versus SN-SLP.
//!
//! Wall time here tracks the dynamic instruction count of the compiled
//! code, so the O3→SN-SLP ratio mirrors the simulated-cycle speedups the
//! `figures` binary reports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snslp_bench::compile;
use snslp_core::SlpMode;
use snslp_cost::CostModel;
use snslp_interp::{run_with_args, ExecOptions};
use snslp_kernels::registry;

const BENCH_ITERS: usize = 256;

fn bench_kernels(c: &mut Criterion) {
    let model = CostModel::default();
    let opts = ExecOptions::default();
    let mut group = c.benchmark_group("kernel_cycles");
    group.sample_size(20);
    for kernel in registry() {
        let args = kernel.args(BENCH_ITERS);
        for mode in [None, Some(SlpMode::SnSlp)] {
            let mut f = kernel.build();
            compile(&mut f, mode);
            let label = snslp_bench::mode_label(mode);
            group.bench_with_input(
                BenchmarkId::new(label, kernel.name),
                &(&f, &args),
                |b, (f, args)| {
                    b.iter(|| {
                        run_with_args(f, args, &model, &opts).expect("kernel runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
