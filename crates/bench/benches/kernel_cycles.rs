//! Bench for the paper's Fig. 5: executing each kernel (on the reference
//! interpreter) compiled under O3 versus SN-SLP.
//!
//! Wall time here tracks the dynamic instruction count of the compiled
//! code, so the O3→SN-SLP ratio mirrors the simulated-cycle speedups the
//! `figures` binary reports.
//!
//! Plain `fn main()` harness (no external bench framework) so the
//! workspace builds offline; run with `cargo bench --bench kernel_cycles`.

use std::time::Instant;

use snslp_bench::compile;
use snslp_core::SlpMode;
use snslp_cost::CostModel;
use snslp_interp::{run_with_args, ExecOptions};
use snslp_kernels::registry;

const BENCH_ITERS: usize = 256;
const WARMUP_RUNS: usize = 3;
const TIMED_RUNS: usize = 20;

/// Mean and sample standard deviation of per-run times, in microseconds.
fn stats(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

fn main() {
    // Cargo passes `--bench` (and possibly filter args) to the harness;
    // this simple harness runs everything regardless.
    let model = CostModel::default();
    let opts = ExecOptions::default();
    println!("kernel_cycles: {TIMED_RUNS} timed runs per entry, mean ± sd (µs)");
    println!(
        "{:<24} {:>16} {:>16} {:>8}",
        "kernel", "o3", "sn-slp", "ratio"
    );
    for kernel in registry() {
        let args = kernel.args(BENCH_ITERS);
        let mut means = Vec::with_capacity(2);
        for mode in [None, Some(SlpMode::SnSlp)] {
            let mut f = kernel.build();
            compile(&mut f, mode);
            for _ in 0..WARMUP_RUNS {
                run_with_args(&f, &args, &model, &opts).expect("kernel runs");
            }
            let mut samples = Vec::with_capacity(TIMED_RUNS);
            for _ in 0..TIMED_RUNS {
                let start = Instant::now();
                let out = run_with_args(&f, &args, &model, &opts).expect("kernel runs");
                samples.push(start.elapsed().as_secs_f64() * 1e6);
                std::hint::black_box(&out);
            }
            means.push(stats(&samples));
        }
        let (o3_mean, o3_sd) = means[0];
        let (sn_mean, sn_sd) = means[1];
        println!(
            "{:<24} {:>16} {:>16} {:>8.2}",
            kernel.name,
            format!("{o3_mean:.1}±{o3_sd:.1}"),
            format!("{sn_mean:.1}±{sn_sd:.1}"),
            o3_mean / sn_mean
        );
    }
}
