//! Bench for the paper's Fig. 11: wall-clock compilation time of each
//! kernel under O3 (cleanup only), SLP, LSLP, and SN-SLP.
//!
//! The paper's claim: "Super-Node SLP does not introduce any significant
//! compilation-time overhead" — compare the `LSLP` and `SN-SLP` columns.
//!
//! Plain `fn main()` harness (no external bench framework) so the
//! workspace builds offline; run with `cargo bench --bench compile_time`.
//!
//! Pass `--report <path>` to also emit the machine-readable JSON report
//! (schema `snslp-bench-compile-time/v1`). The checked-in
//! `BENCH_compile_time.json` at the repository root is a snapshot of this
//! output and the baseline the CI `bench-smoke` job (`bench_check`)
//! compares against.
//!
//! Pass `--profile <path>` to also write a Chrome-trace/Perfetto profile
//! of the measured compilations (spans from the `snslp-prof` layer) —
//! handy for seeing *where* a compile-time regression lives.

use snslp_bench::measure_compile_times;

const WARMUP_RUNS: usize = 3;
const TIMED_RUNS: usize = 20;

fn main() {
    if let Err(e) = snslp_trace::init_from_env() {
        eprintln!("compile_time: {e}");
        std::process::exit(2);
    }
    // Cargo passes `--bench` (and possibly filter args) to the harness;
    // only `--report <path>` and `--profile <path>` are meaningful here.
    let mut args = std::env::args().skip(1);
    let mut report_path = None;
    let mut profile_path = None;
    while let Some(arg) = args.next() {
        if arg == "--report" {
            report_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--report needs a path");
                std::process::exit(2);
            }));
        } else if arg == "--profile" {
            profile_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--profile needs a path");
                std::process::exit(2);
            }));
        }
    }
    if profile_path.is_some() {
        snslp_trace::set_facets(snslp_trace::facets() | snslp_trace::Facet::Prof as u32);
    }

    let report = measure_compile_times(WARMUP_RUNS, TIMED_RUNS);

    println!("compile_time: {TIMED_RUNS} timed runs per entry, mean ± sd (µs)");
    println!(
        "{:<24} {:>14} {:>14} {:>14} {:>14} {:>6}",
        "kernel", "o3", "slp", "lslp", "sn-slp", "cache"
    );
    for k in &report.kernels {
        let cell = |label: &str| {
            let t = k.mode(label).expect("all pipelines measured");
            format!("{:.1}±{:.1}", t.mean_us, t.sd_us)
        };
        let cache = match k.cache_hit_rate {
            Some(r) => format!("{:.0}%", 100.0 * r),
            None => "-".to_string(),
        };
        println!(
            "{:<24} {:>14} {:>14} {:>14} {:>14} {:>6}",
            k.name,
            cell("o3"),
            cell("slp"),
            cell("lslp"),
            cell("snslp"),
            cache
        );
    }

    if let Some(path) = report_path {
        std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("report written to {path}");
    }
    if let Some(path) = profile_path {
        let profile = snslp_trace::prof::take_profile();
        std::fs::write(&path, profile.to_chrome_json()).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("profile written to {path}");
    }
}
