//! Criterion bench for the paper's Fig. 11: wall-clock compilation time
//! of each kernel under O3 (cleanup only), LSLP, and SN-SLP.
//!
//! The paper's claim: "Super-Node SLP does not introduce any significant
//! compilation-time overhead" — compare the `LSLP` and `SN-SLP` groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snslp_core::{optimize_o3, run_slp, SlpConfig, SlpMode};
use snslp_kernels::registry;

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(20);
    for kernel in registry() {
        group.bench_with_input(BenchmarkId::new("o3", kernel.name), &kernel, |b, k| {
            b.iter_with_setup(
                || k.build(),
                |mut f| {
                    optimize_o3(&mut f);
                    f
                },
            )
        });
        for mode in [SlpMode::Lslp, SlpMode::SnSlp] {
            group.bench_with_input(
                BenchmarkId::new(mode.label(), kernel.name),
                &kernel,
                |b, k| {
                    let cfg = SlpConfig::new(mode);
                    b.iter_with_setup(
                        || k.build(),
                        |mut f| {
                            run_slp(&mut f, &cfg);
                            f
                        },
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
