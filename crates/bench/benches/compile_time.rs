//! Bench for the paper's Fig. 11: wall-clock compilation time of each
//! kernel under O3 (cleanup only), LSLP, and SN-SLP.
//!
//! The paper's claim: "Super-Node SLP does not introduce any significant
//! compilation-time overhead" — compare the `LSLP` and `SN-SLP` columns.
//!
//! Plain `fn main()` harness (no external bench framework) so the
//! workspace builds offline; run with `cargo bench --bench compile_time`.

use std::time::Instant;

use snslp_core::{optimize_o3, run_slp, SlpConfig, SlpMode};
use snslp_kernels::registry;

const WARMUP_RUNS: usize = 3;
const TIMED_RUNS: usize = 20;

/// Mean and sample standard deviation of per-run times, in microseconds.
fn stats(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = if samples.len() > 1 {
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    (mean, var.sqrt())
}

/// Time `pipeline` over fresh builds of the kernel; returns (mean, sd) in µs.
fn time_pipeline(
    build: &dyn Fn() -> snslp_ir::Function,
    pipeline: &dyn Fn(&mut snslp_ir::Function),
) -> (f64, f64) {
    for _ in 0..WARMUP_RUNS {
        let mut f = build();
        pipeline(&mut f);
        std::hint::black_box(&f);
    }
    let mut samples = Vec::with_capacity(TIMED_RUNS);
    for _ in 0..TIMED_RUNS {
        let mut f = build();
        let start = Instant::now();
        pipeline(&mut f);
        samples.push(start.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(&f);
    }
    stats(&samples)
}

fn main() {
    // Cargo passes `--bench` (and possibly filter args) to the harness;
    // this simple harness runs everything regardless.
    println!("compile_time: {TIMED_RUNS} timed runs per entry, mean ± sd (µs)");
    println!(
        "{:<24} {:>16} {:>16} {:>16}",
        "kernel", "o3", "lslp", "sn-slp"
    );
    for kernel in registry() {
        let build = || kernel.build();
        let (o3_mean, o3_sd) = time_pipeline(&build, &|f| {
            optimize_o3(f);
        });
        let mut cells = vec![format!("{o3_mean:.1}±{o3_sd:.1}")];
        for mode in [SlpMode::Lslp, SlpMode::SnSlp] {
            let cfg = SlpConfig::new(mode);
            let (mean, sd) = time_pipeline(&build, &|f| {
                run_slp(f, &cfg);
            });
            cells.push(format!("{mean:.1}±{sd:.1}"));
        }
        println!(
            "{:<24} {:>16} {:>16} {:>16}",
            kernel.name, cells[0], cells[1], cells[2]
        );
    }
}
