//! Throughput of the differential fuzzing loop: cases checked per
//! second, split into generation alone and the full
//! generate → O3 → three-mode vectorize → execute → compare cycle.
//!
//! This bounds how large a CI smoke batch can be: the fixed-seed
//! `fuzz-smoke` job runs 2000 cases, so end-to-end throughput directly
//! prices that job.
//!
//! Plain `fn main()` harness (no external bench framework) so the
//! workspace builds offline; run with `cargo bench --bench fuzz_throughput`.
//!
//! Pass `--report <path>` to also emit a small JSON report
//! (schema `snslp-bench-fuzz-throughput/v1`) with both throughputs.

use std::time::Instant;

use snslp_bench::report::Json;
use snslp_cost::CostModel;
use snslp_fuzz::{check_case, generate, ALL_MODES};

const SEED: u64 = 0xBE_BE;
const GEN_CASES: u64 = 2000;
const CHECK_CASES: u64 = 400;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut report_path = None;
    while let Some(arg) = args.next() {
        if arg == "--report" {
            report_path = Some(args.next().unwrap_or_else(|| {
                eprintln!("--report needs a path");
                std::process::exit(2);
            }));
        }
    }

    let start = Instant::now();
    let mut insts = 0usize;
    for i in 0..GEN_CASES {
        let case = generate(SEED, i);
        insts += case.function.num_linked_insts();
        std::hint::black_box(&case);
    }
    let gen_s = start.elapsed().as_secs_f64();
    println!(
        "generate:       {GEN_CASES} cases in {gen_s:.3}s ({:.0} cases/s, {:.0} insts/case)",
        GEN_CASES as f64 / gen_s,
        insts as f64 / GEN_CASES as f64
    );

    let model = CostModel::default();
    let start = Instant::now();
    let mut divergences = 0u64;
    for i in 0..CHECK_CASES {
        let case = generate(SEED, i);
        if check_case(&case, &model, &ALL_MODES).is_err() {
            divergences += 1;
        }
    }
    let check_s = start.elapsed().as_secs_f64();
    println!(
        "check (3 modes): {CHECK_CASES} cases in {check_s:.3}s ({:.0} cases/s)",
        CHECK_CASES as f64 / check_s
    );
    assert_eq!(divergences, 0, "fuzz bench found real divergences");

    if let Some(path) = report_path {
        let doc = Json::Obj(vec![
            (
                "schema".to_string(),
                Json::Str("snslp-bench-fuzz-throughput/v1".to_string()),
            ),
            (
                "generate".to_string(),
                Json::Obj(vec![
                    ("cases".to_string(), Json::Num(GEN_CASES as f64)),
                    (
                        "cases_per_s".to_string(),
                        Json::Num((GEN_CASES as f64 / gen_s).round()),
                    ),
                ]),
            ),
            (
                "check".to_string(),
                Json::Obj(vec![
                    ("cases".to_string(), Json::Num(CHECK_CASES as f64)),
                    (
                        "cases_per_s".to_string(),
                        Json::Num((CHECK_CASES as f64 / check_s).round()),
                    ),
                ]),
            ),
        ]);
        std::fs::write(&path, doc.render()).unwrap_or_else(|e| {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        });
        println!("report written to {path}");
    }
}
