//! Functions: arenas of instructions organized into basic blocks.

use std::collections::HashMap;

use crate::inst::{BlockId, InstId, InstKind};
use crate::types::Type;

/// A function parameter declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name (without the `%` sigil).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Whether the pointer is guaranteed not to alias any other `noalias`
    /// pointer parameter (the C `restrict` qualifier). Only meaningful for
    /// `ptr` parameters.
    pub noalias: bool,
}

impl Param {
    /// Creates a parameter without `noalias`.
    pub fn new(name: impl Into<String>, ty: Type) -> Self {
        Param {
            name: name.into(),
            ty,
            noalias: false,
        }
    }

    /// Creates a `noalias ptr` parameter.
    pub fn noalias_ptr(name: impl Into<String>) -> Self {
        Param {
            name: name.into(),
            ty: Type::Ptr,
            noalias: true,
        }
    }
}

/// One instruction slot in the arena.
#[derive(Debug, Clone)]
pub struct InstData {
    /// What the instruction does.
    pub kind: InstKind,
    /// The type of the value it produces (`Void` for effects).
    pub ty: Type,
}

/// A basic block: an ordered list of instruction ids.
#[derive(Debug, Clone, Default)]
pub struct BlockData {
    /// Block label (without the `bb` prefix when auto-generated).
    pub name: String,
    insts: Vec<InstId>,
}

impl BlockData {
    /// The instructions of the block in execution order.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }
}

/// A function: parameters, an instruction arena, and basic blocks.
///
/// Instructions are stored in a flat arena indexed by [`InstId`]; function
/// parameters occupy the first arena slots as [`InstKind::Param`] entries,
/// so every operand is uniformly an [`InstId`]. Removal unlinks an
/// instruction from its block but keeps the arena slot (tombstone), which
/// keeps ids stable during transformation passes.
#[derive(Debug, Clone)]
pub struct Function {
    name: String,
    params: Vec<Param>,
    param_ids: Vec<InstId>,
    insts: Vec<InstData>,
    blocks: Vec<BlockData>,
    ret_ty: Type,
    /// Whether floating-point reassociation is allowed (the paper compiles
    /// with `-ffast-math`; forming FP Super-Nodes requires this).
    pub fast_math: bool,
}

impl Function {
    /// Creates an empty function with one (entry) block named `entry`.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Self {
        let mut f = Function {
            name: name.into(),
            params: Vec::new(),
            param_ids: Vec::new(),
            insts: Vec::new(),
            blocks: Vec::new(),
            ret_ty,
            fast_math: false,
        };
        for (i, p) in params.iter().enumerate() {
            let id = InstId(f.insts.len() as u32);
            f.insts.push(InstData {
                kind: InstKind::Param(i as u32),
                ty: p.ty,
            });
            f.param_ids.push(id);
        }
        f.params = params;
        f.add_block("entry");
        f
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared return type.
    pub fn ret_ty(&self) -> Type {
        self.ret_ty
    }

    /// The parameter declarations.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// The arena ids of the parameters, in declaration order.
    pub fn param_ids(&self) -> &[InstId] {
        &self.param_ids
    }

    /// The arena id of the `i`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> InstId {
        self.param_ids[i]
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Appends a new empty block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            name: name.into(),
            insts: Vec::new(),
        });
        id
    }

    /// Ids of all blocks in creation order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Data of a block.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a block of this function.
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Total number of arena slots (including parameters and tombstones).
    pub fn num_inst_slots(&self) -> usize {
        self.insts.len()
    }

    /// Data of an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid arena id.
    pub fn inst(&self, id: InstId) -> &InstData {
        &self.insts[id.index()]
    }

    /// Shorthand for `self.inst(id).kind`.
    pub fn kind(&self, id: InstId) -> &InstKind {
        &self.insts[id.index()].kind
    }

    /// Shorthand for `self.inst(id).ty`.
    pub fn ty(&self, id: InstId) -> Type {
        self.insts[id.index()].ty
    }

    /// Mutable access to an instruction's kind. Use with care: the caller
    /// is responsible for keeping types consistent.
    pub fn kind_mut(&mut self, id: InstId) -> &mut InstKind {
        &mut self.insts[id.index()].kind
    }

    /// Appends an instruction to the end of `block`.
    pub fn append_inst(&mut self, block: BlockId, kind: InstKind, ty: Type) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData { kind, ty });
        self.blocks[block.index()].insts.push(id);
        id
    }

    /// Inserts an instruction into `block` before position `pos` (an index
    /// into the block's instruction list).
    ///
    /// # Panics
    ///
    /// Panics if `pos > block.len()`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, kind: InstKind, ty: Type) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData { kind, ty });
        self.blocks[block.index()].insts.insert(pos, id);
        id
    }

    /// Creates an arena slot without placing it into any block. Used by
    /// passes that build instructions first and schedule them later.
    pub fn create_detached(&mut self, kind: InstKind, ty: Type) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(InstData { kind, ty });
        id
    }

    /// Replaces the instruction list of `block` wholesale. Used by the
    /// vectorizer's scheduler when it rebuilds a block.
    pub fn set_block_insts(&mut self, block: BlockId, insts: Vec<InstId>) {
        self.blocks[block.index()].insts = insts;
    }

    /// Overwrites a reserved arena slot and appends it to `block`. Used by
    /// the parser to resolve forward references (a slot is reserved when a
    /// name is first used, and defined when its definition is reached).
    pub fn define_slot(&mut self, id: InstId, block: BlockId, kind: InstKind, ty: Type) {
        self.insts[id.index()] = InstData { kind, ty };
        self.blocks[block.index()].insts.push(id);
    }

    /// Renames a block.
    pub fn set_block_name(&mut self, block: BlockId, name: impl Into<String>) {
        self.blocks[block.index()].name = name.into();
    }

    /// Unlinks `id` from `block` (the arena slot becomes a tombstone).
    ///
    /// Returns `true` if the instruction was present.
    pub fn unlink_inst(&mut self, block: BlockId, id: InstId) -> bool {
        let insts = &mut self.blocks[block.index()].insts;
        if let Some(pos) = insts.iter().position(|&i| i == id) {
            insts.remove(pos);
            true
        } else {
            false
        }
    }

    /// The block containing `id`, or `None` for parameters, detached
    /// instructions, and tombstones.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|&b| self.blocks[b.index()].insts.contains(&id))
    }

    /// Map from instruction id to `(block, index-in-block)` for all linked
    /// instructions. O(instructions); compute once per pass.
    pub fn positions(&self) -> HashMap<InstId, (BlockId, usize)> {
        let mut map = HashMap::new();
        for b in self.block_ids() {
            for (i, &id) in self.blocks[b.index()].insts.iter().enumerate() {
                map.insert(id, (b, i));
            }
        }
        map
    }

    /// Rewrites every use of `from` to `to` across all linked instructions.
    /// Detached instructions and tombstones are left untouched (codegen
    /// relies on this while unscheduled vector instructions exist).
    pub fn replace_all_uses(&mut self, from: InstId, to: InstId) {
        let insts = &mut self.insts;
        for b in &self.blocks {
            for &id in &b.insts {
                insts[id.index()].kind.for_each_operand_mut(|o| {
                    if *o == from {
                        *o = to;
                    }
                });
            }
        }
    }

    /// Number of uses of each arena slot by linked instructions.
    pub fn use_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.insts.len()];
        for b in &self.blocks {
            for &id in &b.insts {
                self.insts[id.index()]
                    .kind
                    .for_each_operand(|op| counts[op.index()] += 1);
            }
        }
        counts
    }

    /// For each arena slot, the list of linked instructions using it.
    pub fn users(&self) -> Vec<Vec<InstId>> {
        let mut users = vec![Vec::new(); self.insts.len()];
        for b in &self.blocks {
            for &id in &b.insts {
                self.insts[id.index()]
                    .kind
                    .for_each_operand(|op| users[op.index()].push(id));
            }
        }
        users
    }

    /// Predecessor blocks of every block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for b in self.block_ids() {
            if let Some(&term) = self.blocks[b.index()].insts.last() {
                for s in self.insts[term.index()].kind.successors() {
                    preds[s.index()].push(b);
                }
            }
        }
        preds
    }

    /// Removes linked instructions that are transitively dead (no uses, no
    /// side effects). A single worklist pass over the use counts finds the
    /// full closure — equivalent to iterating block sweeps to a fixed
    /// point, but O(instructions + edges) instead of O(passes × n²).
    /// Returns the number of instructions removed from blocks.
    pub fn remove_dead_code(&mut self) -> usize {
        let slots = self.insts.len();
        let mut counts = self.use_counts();
        let mut linked = vec![false; slots];
        for b in &self.blocks {
            for &id in &b.insts {
                linked[id.index()] = true;
            }
        }
        let mut dead = vec![false; slots];
        let mut work: Vec<InstId> = Vec::new();
        for b in &self.blocks {
            for &id in &b.insts {
                if counts[id.index()] == 0 && !self.insts[id.index()].kind.has_side_effects() {
                    dead[id.index()] = true;
                    work.push(id);
                }
            }
        }
        let mut removed = 0usize;
        while let Some(id) = work.pop() {
            removed += 1;
            let insts = &self.insts;
            let counts = &mut counts;
            let dead = &mut dead;
            let linked = &linked;
            let work_ref = &mut work;
            insts[id.index()].kind.for_each_operand(|op| {
                let i = op.index();
                counts[i] -= 1;
                if counts[i] == 0 && linked[i] && !dead[i] && !insts[i].kind.has_side_effects() {
                    dead[i] = true;
                    work_ref.push(op);
                }
            });
        }
        if removed > 0 {
            for b in &mut self.blocks {
                b.insts.retain(|id| !dead[id.index()]);
            }
        }
        removed
    }

    /// Total number of instructions linked into blocks.
    pub fn num_linked_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Constant};
    use crate::types::ScalarType;

    fn sample() -> Function {
        // f(x: i64) { entry: c = const 1; s = add x, c; ret s }
        let mut f = Function::new(
            "sample",
            vec![Param::new("x", Type::scalar(ScalarType::I64))],
            Type::scalar(ScalarType::I64),
        );
        let entry = f.entry();
        let c = f.append_inst(
            entry,
            InstKind::Const(Constant::I64(1)),
            Type::scalar(ScalarType::I64),
        );
        let x = f.param(0);
        let s = f.append_inst(
            entry,
            InstKind::Binary {
                op: BinOp::Add,
                lhs: x,
                rhs: c,
            },
            Type::scalar(ScalarType::I64),
        );
        f.append_inst(entry, InstKind::Ret { value: Some(s) }, Type::Void);
        f
    }

    #[test]
    fn params_are_arena_slots() {
        let f = sample();
        let x = f.param(0);
        assert_eq!(*f.kind(x), InstKind::Param(0));
        assert_eq!(f.ty(x), Type::scalar(ScalarType::I64));
        assert!(f.block_of(x).is_none());
    }

    #[test]
    fn use_counts_and_users() {
        let f = sample();
        let counts = f.use_counts();
        let x = f.param(0);
        assert_eq!(counts[x.index()], 1);
        let users = f.users();
        assert_eq!(users[x.index()].len(), 1);
    }

    #[test]
    fn replace_all_uses_rewrites_operands() {
        let mut f = sample();
        let entry = f.entry();
        let c2 = f.append_inst(
            entry,
            InstKind::Const(Constant::I64(2)),
            Type::scalar(ScalarType::I64),
        );
        let x = f.param(0);
        f.replace_all_uses(x, c2);
        assert_eq!(f.use_counts()[x.index()], 0);
        assert!(f.use_counts()[c2.index()] >= 1);
    }

    #[test]
    fn dead_code_removal() {
        let mut f = sample();
        let entry = f.entry();
        // An unused constant is dead; the terminator is not.
        f.insert_inst(
            entry,
            0,
            InstKind::Const(Constant::I64(99)),
            Type::scalar(ScalarType::I64),
        );
        let before = f.num_linked_insts();
        let removed = f.remove_dead_code();
        assert_eq!(removed, 1);
        assert_eq!(f.num_linked_insts(), before - 1);
    }

    #[test]
    fn dead_code_removal_is_transitive() {
        let mut f = Function::new("t", vec![], Type::Void);
        let entry = f.entry();
        let ty = Type::scalar(ScalarType::I32);
        let a = f.append_inst(entry, InstKind::Const(Constant::I32(1)), ty);
        let b = f.append_inst(entry, InstKind::Const(Constant::I32(2)), ty);
        let _sum = f.append_inst(
            entry,
            InstKind::Binary {
                op: BinOp::Add,
                lhs: a,
                rhs: b,
            },
            ty,
        );
        f.append_inst(entry, InstKind::Ret { value: None }, Type::Void);
        // sum is dead, and removing it makes a and b dead too.
        assert_eq!(f.remove_dead_code(), 3);
        assert_eq!(f.num_linked_insts(), 1);
    }

    #[test]
    fn unlink_makes_tombstone() {
        let mut f = sample();
        let entry = f.entry();
        let id = f.block(entry).insts()[0];
        let slots_before = f.num_inst_slots();
        assert!(f.unlink_inst(entry, id));
        assert!(!f.unlink_inst(entry, id));
        assert_eq!(f.num_inst_slots(), slots_before, "arena slot survives");
        assert!(f.block_of(id).is_none());
    }

    #[test]
    fn predecessors_of_diamond() {
        let mut f = Function::new(
            "d",
            vec![Param::new("c", Type::scalar(ScalarType::I32))],
            Type::Void,
        );
        let entry = f.entry();
        let then_b = f.add_block("then");
        let else_b = f.add_block("else");
        let join = f.add_block("join");
        let c = f.param(0);
        f.append_inst(
            entry,
            InstKind::Branch {
                cond: c,
                on_true: then_b,
                on_false: else_b,
            },
            Type::Void,
        );
        f.append_inst(then_b, InstKind::Jump { target: join }, Type::Void);
        f.append_inst(else_b, InstKind::Jump { target: join }, Type::Void);
        f.append_inst(join, InstKind::Ret { value: None }, Type::Void);
        let preds = f.predecessors();
        assert_eq!(preds[join.index()], vec![then_b, else_b]);
        assert_eq!(preds[entry.index()], Vec::<BlockId>::new());
    }
}
