//! Type system of the SN-SLP IR.
//!
//! The IR is deliberately small but covers everything the SLP family of
//! vectorizers manipulates: the four scalar machine types used by the
//! paper's kernels (`i32`, `i64`, `f32`, `f64`), fixed-width vectors of
//! those, raw pointers, and `void` for instructions executed purely for
//! effect.

use std::fmt;

/// A scalar machine type.
///
/// # Examples
///
/// ```
/// use snslp_ir::ScalarType;
/// assert_eq!(ScalarType::F64.size_bytes(), 8);
/// assert!(ScalarType::F32.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ScalarType {
    /// Size of a value of this type in bytes.
    pub fn size_bytes(self) -> u32 {
        match self {
            ScalarType::I32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::F64 => 8,
        }
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether this is an integer type.
    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// All scalar types, useful for exhaustive tests.
    pub const ALL: [ScalarType; 4] = [
        ScalarType::I32,
        ScalarType::I64,
        ScalarType::F32,
        ScalarType::F64,
    ];
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
            ScalarType::F32 => "f32",
            ScalarType::F64 => "f64",
        };
        f.write_str(s)
    }
}

/// A fixed-width SIMD vector type, e.g. `f64x2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VectorType {
    /// Element type.
    pub elem: ScalarType,
    /// Number of lanes (at least 2).
    pub lanes: u8,
}

impl VectorType {
    /// Creates a vector type.
    ///
    /// # Panics
    ///
    /// Panics if `lanes < 2`.
    pub fn new(elem: ScalarType, lanes: u8) -> Self {
        assert!(lanes >= 2, "vector types need at least 2 lanes");
        VectorType { elem, lanes }
    }

    /// Total size of the vector in bytes.
    pub fn size_bytes(self) -> u32 {
        self.elem.size_bytes() * u32::from(self.lanes)
    }

    /// Total size of the vector in bits.
    pub fn size_bits(self) -> u32 {
        self.size_bytes() * 8
    }
}

impl fmt::Display for VectorType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.elem, self.lanes)
    }
}

/// Any IR type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// No value; the type of stores, branches, and `ret`.
    Void,
    /// A scalar value.
    Scalar(ScalarType),
    /// A SIMD vector value.
    Vector(VectorType),
    /// An untyped byte address.
    Ptr,
}

impl Type {
    /// Shorthand for a scalar type.
    pub fn scalar(st: ScalarType) -> Self {
        Type::Scalar(st)
    }

    /// Shorthand for a vector type.
    pub fn vector(elem: ScalarType, lanes: u8) -> Self {
        Type::Vector(VectorType::new(elem, lanes))
    }

    /// The scalar type if this is `Scalar`.
    pub fn as_scalar(self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// The vector type if this is `Vector`.
    pub fn as_vector(self) -> Option<VectorType> {
        match self {
            Type::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// The element type: itself for scalars, the lane type for vectors.
    pub fn elem_scalar(self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(s),
            Type::Vector(v) => Some(v.elem),
            _ => None,
        }
    }

    /// Whether the type carries a value (i.e. is not `Void`).
    pub fn is_value(self) -> bool {
        !matches!(self, Type::Void)
    }

    /// Size in bytes of a stored value of this type.
    ///
    /// # Panics
    ///
    /// Panics for `Void`, which has no storage size.
    pub fn size_bytes(self) -> u32 {
        match self {
            Type::Void => panic!("void has no size"),
            Type::Scalar(s) => s.size_bytes(),
            Type::Vector(v) => v.size_bytes(),
            Type::Ptr => 8,
        }
    }
}

impl From<ScalarType> for Type {
    fn from(st: ScalarType) -> Self {
        Type::Scalar(st)
    }
}

impl From<VectorType> for Type {
    fn from(vt: VectorType) -> Self {
        Type::Vector(vt)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => s.fmt(f),
            Type::Vector(v) => v.fmt(f),
            Type::Ptr => f.write_str("ptr"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(ScalarType::I32.size_bytes(), 4);
        assert_eq!(ScalarType::I64.size_bytes(), 8);
        assert_eq!(ScalarType::F32.size_bytes(), 4);
        assert_eq!(ScalarType::F64.size_bytes(), 8);
    }

    #[test]
    fn float_classification() {
        assert!(ScalarType::F32.is_float());
        assert!(ScalarType::F64.is_float());
        assert!(ScalarType::I32.is_int());
        assert!(ScalarType::I64.is_int());
    }

    #[test]
    fn vector_type_sizes() {
        let v = VectorType::new(ScalarType::F64, 2);
        assert_eq!(v.size_bytes(), 16);
        assert_eq!(v.size_bits(), 128);
        let v = VectorType::new(ScalarType::I32, 8);
        assert_eq!(v.size_bits(), 256);
    }

    #[test]
    #[should_panic(expected = "at least 2 lanes")]
    fn vector_needs_two_lanes() {
        let _ = VectorType::new(ScalarType::I32, 1);
    }

    #[test]
    fn display_round() {
        assert_eq!(Type::vector(ScalarType::F32, 4).to_string(), "f32x4");
        assert_eq!(Type::Ptr.to_string(), "ptr");
        assert_eq!(Type::Void.to_string(), "void");
        assert_eq!(Type::scalar(ScalarType::I64).to_string(), "i64");
    }

    #[test]
    fn elem_scalar() {
        assert_eq!(
            Type::vector(ScalarType::F64, 2).elem_scalar(),
            Some(ScalarType::F64)
        );
        assert_eq!(
            Type::scalar(ScalarType::I32).elem_scalar(),
            Some(ScalarType::I32)
        );
        assert_eq!(Type::Ptr.elem_scalar(), None);
    }
}
