//! Textual form of the IR (parsing side).
//!
//! The accepted grammar is exactly what [`crate::printer`] emits; see that
//! module for an example. One restriction applies: only `phi` operands may
//! reference values defined later in the text — every other instruction
//! must use names already defined (which any verifier-clean function
//! printed in creation order satisfies).
//!
//! # Examples
//!
//! ```
//! use snslp_ir::parse_module;
//!
//! let m = parse_module(
//!     "func @double(%p: ptr noalias) -> void {
//!      entry:
//!        %v = load f64, %p
//!        %s = add f64 %v, %v
//!        store %p, %s
//!        ret
//!      }",
//! )?;
//! assert_eq!(m.functions().len(), 1);
//! # Ok::<(), snslp_ir::ParseError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::function::{Function, Param};
use crate::inst::{BinOp, BlockId, CastKind, CmpPred, Constant, InstId, InstKind, UnOp};
use crate::module::Module;
use crate::types::{ScalarType, Type};

/// Error produced when parsing textual IR fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token's first character (0 when
    /// no position is known, e.g. for whole-input errors).
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.col > 0 {
            write!(
                f,
                "parse error at line {}, column {}: {}",
                self.line, self.col, self.message
            )
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Value(String),
    At(String),
    Num(String),
    Punct(char),
    Arrow,
}

struct Lexer {
    toks: Vec<(Tok, u32, u32)>,
    pos: usize,
}

/// Character cursor tracking the 1-based line and column of the *next*
/// character, so every token can carry the position of its first char.
struct Cursor<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn lex(src: &str) -> Result<Lexer, ParseError> {
    let mut toks = Vec::new();
    let mut cur = Cursor {
        chars: src.chars().peekable(),
        line: 1,
        col: 1,
    };
    while let Some(c) = cur.peek() {
        // Position of the token that starts here.
        let (line, col) = (cur.line, cur.col);
        match c {
            c if c.is_whitespace() => {
                cur.bump();
            }
            ';' | '#' => {
                // Comment to end of line.
                while let Some(c) = cur.bump() {
                    if c == '\n' {
                        break;
                    }
                }
            }
            '%' | '@' => {
                cur.bump();
                let mut s = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(ParseError {
                        line,
                        col,
                        message: format!("dangling `{c}`"),
                    });
                }
                toks.push(if c == '%' {
                    (Tok::Value(s), line, col)
                } else {
                    (Tok::At(s), line, col)
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(s), line, col));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                cur.bump();
                if c == '-' && cur.peek() == Some('>') {
                    cur.bump();
                    toks.push((Tok::Arrow, line, col));
                    continue;
                }
                let mut last_e = false;
                while let Some(c) = cur.peek() {
                    if c.is_ascii_digit()
                        || c == '.'
                        || c == 'e'
                        || c == 'E'
                        || ((c == '-' || c == '+') && last_e)
                        || c == 'f' // allow `inf` via ident path; digits may not hit this
                        || c == 'n'
                        || c == 'a'
                        || c == 'i'
                    {
                        last_e = c == 'e' || c == 'E';
                        s.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Num(s), line, col));
            }
            '(' | ')' | '{' | '}' | '[' | ']' | ',' | ':' | '=' => {
                cur.bump();
                toks.push((Tok::Punct(c), line, col));
            }
            other => {
                return Err(ParseError {
                    line,
                    col,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, ..)| t)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|(t, ..)| t)
    }

    /// Position of the current token (or the last one at end of input).
    fn position(&self) -> (u32, u32) {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((0, 0))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.position();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    /// Like [`err`](Self::err) but anchored at the token `next()` just
    /// consumed — the right anchor for `expected X, found Y`
    /// diagnostics, where the cursor has already stepped past the
    /// offender.
    fn err_at_prev(&self, message: impl Into<String>) -> ParseError {
        let idx = self.pos.saturating_sub(1);
        let (line, col) = self
            .toks
            .get(idx.min(self.toks.len().saturating_sub(1)))
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((0, 0));
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self
            .toks
            .get(self.pos)
            .map(|(t, ..)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            t => Err(self.err_at_prev(format!("expected `{c}`, found {t:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err_at_prev(format!("expected identifier, found {t:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let s = self.expect_ident()?;
        if s == kw {
            Ok(())
        } else {
            Err(self.err_at_prev(format!("expected `{kw}`, found `{s}`")))
        }
    }

    fn expect_value(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Value(s) => Ok(s),
            t => Err(self.err_at_prev(format!("expected %value, found {t:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_u8(&mut self) -> Result<u8, ParseError> {
        match self.next()? {
            Tok::Num(s) => s
                .parse::<u8>()
                .map_err(|_| self.err_at_prev(format!("invalid lane index `{s}`"))),
            t => Err(self.err_at_prev(format!("expected lane index, found {t:?}"))),
        }
    }
}

fn snslp_kind_from(s: &str) -> Option<CastKind> {
    CastKind::from_mnemonic(s)
}

fn parse_type(lex: &mut Lexer) -> Result<Type, ParseError> {
    let s = lex.expect_ident()?;
    type_from_str(&s).ok_or_else(|| lex.err(format!("unknown type `{s}`")))
}

/// Parses a type name like `f64`, `ptr`, `void`, or `i32x4`.
pub fn type_from_str(s: &str) -> Option<Type> {
    let scalar = |s: &str| -> Option<ScalarType> {
        Some(match s {
            "i32" => ScalarType::I32,
            "i64" => ScalarType::I64,
            "f32" => ScalarType::F32,
            "f64" => ScalarType::F64,
            _ => return None,
        })
    };
    match s {
        "void" => Some(Type::Void),
        "ptr" => Some(Type::Ptr),
        _ => {
            if let Some(st) = scalar(s) {
                return Some(Type::Scalar(st));
            }
            let (elem, lanes) = s.split_once('x')?;
            let st = scalar(elem)?;
            let n: u8 = lanes.parse().ok()?;
            if n >= 2 {
                Some(Type::vector(st, n))
            } else {
                None
            }
        }
    }
}

fn parse_const_literal(lex: &mut Lexer, ty: ScalarType) -> Result<Constant, ParseError> {
    let tok = lex.next()?;
    let text = match &tok {
        Tok::Num(s) => s.clone(),
        Tok::Ident(s) => s.clone(), // inf / nan
        t => return Err(lex.err(format!("expected literal, found {t:?}"))),
    };
    let bad = |lex: &Lexer| lex.err(format!("invalid {ty} literal `{text}`"));
    Ok(match ty {
        ScalarType::I32 => Constant::I32(text.parse().map_err(|_| bad(lex))?),
        ScalarType::I64 => Constant::I64(text.parse().map_err(|_| bad(lex))?),
        ScalarType::F32 => Constant::F32(parse_float(&text).map_err(|_| bad(lex))? as f32),
        ScalarType::F64 => Constant::F64(parse_float(&text).map_err(|_| bad(lex))?),
    })
}

fn parse_float(s: &str) -> Result<f64, ()> {
    match s {
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        "nan" | "NaN" => Ok(f64::NAN),
        _ => s.parse::<f64>().map_err(|_| ()),
    }
}

struct FuncParser<'l> {
    lex: &'l mut Lexer,
    func: Function,
    values: HashMap<String, InstId>,
    pending: HashMap<String, InstId>,
    blocks: HashMap<String, BlockId>,
    cur: BlockId,
    saw_first_label: bool,
}

impl FuncParser<'_> {
    /// Resolves a value name that must already be defined.
    fn value_strict(&mut self, name: &str) -> Result<InstId, ParseError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| self.lex.err(format!("use of undefined value `%{name}`")))
    }

    /// Resolves a value name, reserving a forward slot if unknown (phi
    /// operands only).
    fn value_lazy(&mut self, name: &str) -> InstId {
        if let Some(&id) = self.values.get(name) {
            return id;
        }
        if let Some(&id) = self.pending.get(name) {
            return id;
        }
        let id = self
            .func
            .create_detached(InstKind::Const(Constant::I32(0)), Type::Void);
        self.pending.insert(name.to_string(), id);
        id
    }

    fn block_ref(&mut self, name: &str) -> BlockId {
        if let Some(&b) = self.blocks.get(name) {
            return b;
        }
        let b = self.func.add_block(name.to_string());
        self.blocks.insert(name.to_string(), b);
        b
    }

    fn define(&mut self, name: String, kind: InstKind, ty: Type) -> Result<(), ParseError> {
        if self.values.contains_key(&name) {
            return Err(self.lex.err(format!("redefinition of `%{name}`")));
        }
        let id = if let Some(slot) = self.pending.remove(&name) {
            self.func.define_slot(slot, self.cur, kind, ty);
            slot
        } else {
            self.func.append_inst(self.cur, kind, ty)
        };
        self.values.insert(name, id);
        Ok(())
    }

    fn emit_effect(&mut self, kind: InstKind) {
        self.func.append_inst(self.cur, kind, Type::Void);
    }

    fn parse_operand_list(&mut self) -> Result<Vec<InstId>, ParseError> {
        let mut out = Vec::new();
        loop {
            let name = self.lex.expect_value()?;
            out.push(self.value_strict(&name)?);
            if !self.lex.eat_punct(',') {
                return Ok(out);
            }
        }
    }

    fn parse_body(&mut self) -> Result<(), ParseError> {
        loop {
            match self.lex.peek() {
                Some(Tok::Punct('}')) => {
                    self.lex.next()?;
                    if let Some(name) = self.pending.keys().next() {
                        return Err(self
                            .lex
                            .err(format!("use of undefined value `%{name}` (phi operand)")));
                    }
                    return Ok(());
                }
                Some(Tok::Ident(_)) if self.lex.peek2() == Some(&Tok::Punct(':')) => {
                    let label = self.lex.expect_ident()?;
                    self.lex.expect_punct(':')?;
                    if !self.saw_first_label {
                        // First label names the entry block.
                        self.saw_first_label = true;
                        self.func.set_block_name(self.func.entry(), label.clone());
                        self.blocks.insert(label, self.func.entry());
                        self.cur = self.func.entry();
                    } else {
                        self.cur = self.block_ref(&label);
                    }
                }
                Some(_) => self.parse_inst()?,
                None => return Err(self.lex.err("unexpected end of input in function body")),
            }
        }
    }

    fn parse_inst(&mut self) -> Result<(), ParseError> {
        match self.lex.next()? {
            Tok::Value(result) => {
                self.lex.expect_punct('=')?;
                self.parse_value_inst(result)
            }
            Tok::Ident(op) => self.parse_effect_inst(&op),
            t => Err(self.lex.err(format!("expected instruction, found {t:?}"))),
        }
    }

    fn parse_value_inst(&mut self, result: String) -> Result<(), ParseError> {
        let op = self.lex.expect_ident()?;
        match op.as_str() {
            "const" => {
                let ty = parse_type(self.lex)?;
                let st = ty
                    .as_scalar()
                    .ok_or_else(|| self.lex.err("const needs a scalar type"))?;
                let c = parse_const_literal(self.lex, st)?;
                self.define(result, InstKind::Const(c), ty)
            }
            "cast" => {
                let m = self.lex.expect_ident()?;
                let kind = snslp_kind_from(&m)
                    .ok_or_else(|| self.lex.err(format!("unknown cast `{m}`")))?;
                let ty = parse_type(self.lex)?;
                let n = self.lex.expect_value()?;
                let operand = self.value_strict(&n)?;
                self.define(result, InstKind::Cast { kind, operand }, ty)
            }
            "lanewise" => {
                self.lex.expect_punct('[')?;
                let mut ops = Vec::new();
                loop {
                    let m = self.lex.expect_ident()?;
                    let op = BinOp::from_mnemonic(&m)
                        .ok_or_else(|| self.lex.err(format!("unknown binop `{m}`")))?;
                    ops.push(op);
                    if !self.lex.eat_punct(',') {
                        break;
                    }
                }
                self.lex.expect_punct(']')?;
                let ty = parse_type(self.lex)?;
                let lhs = {
                    let n = self.lex.expect_value()?;
                    self.value_strict(&n)?
                };
                self.lex.expect_punct(',')?;
                let rhs = {
                    let n = self.lex.expect_value()?;
                    self.value_strict(&n)?
                };
                self.define(
                    result,
                    InstKind::BinaryLanewise {
                        ops: ops.into_boxed_slice(),
                        lhs,
                        rhs,
                    },
                    ty,
                )
            }
            "cmp" => {
                let p = self.lex.expect_ident()?;
                let pred = CmpPred::from_mnemonic(&p)
                    .ok_or_else(|| self.lex.err(format!("unknown predicate `{p}`")))?;
                let opty = parse_type(self.lex)?;
                let lhs = {
                    let n = self.lex.expect_value()?;
                    self.value_strict(&n)?
                };
                self.lex.expect_punct(',')?;
                let rhs = {
                    let n = self.lex.expect_value()?;
                    self.value_strict(&n)?
                };
                let ty = match opty {
                    Type::Vector(v) => Type::vector(ScalarType::I32, v.lanes),
                    _ => Type::scalar(ScalarType::I32),
                };
                self.define(result, InstKind::Cmp { pred, lhs, rhs }, ty)
            }
            "select" => {
                let ops = self.parse_operand_list()?;
                if ops.len() != 3 {
                    return Err(self.lex.err("select takes 3 operands"));
                }
                let ty = self.func.ty(ops[1]);
                self.define(
                    result,
                    InstKind::Select {
                        cond: ops[0],
                        on_true: ops[1],
                        on_false: ops[2],
                    },
                    ty,
                )
            }
            "load" => {
                let ty = parse_type(self.lex)?;
                self.lex.expect_punct(',')?;
                let n = self.lex.expect_value()?;
                let ptr = self.value_strict(&n)?;
                self.define(result, InstKind::Load { ptr }, ty)
            }
            "ptradd" => {
                let ops = self.parse_operand_list()?;
                if ops.len() != 2 {
                    return Err(self.lex.err("ptradd takes 2 operands"));
                }
                self.define(
                    result,
                    InstKind::PtrAdd {
                        ptr: ops[0],
                        offset: ops[1],
                    },
                    Type::Ptr,
                )
            }
            "splat" => {
                let lanes = self.lex.expect_u8()?;
                let n = self.lex.expect_value()?;
                let value = self.value_strict(&n)?;
                let st = self
                    .func
                    .ty(value)
                    .as_scalar()
                    .ok_or_else(|| self.lex.err("splat needs a scalar operand"))?;
                self.define(
                    result,
                    InstKind::Splat { value, lanes },
                    Type::vector(st, lanes),
                )
            }
            "buildvec" => {
                let elems = self.parse_operand_list()?;
                if elems.len() < 2 {
                    return Err(self.lex.err("buildvec needs at least 2 elements"));
                }
                let st = self
                    .func
                    .ty(elems[0])
                    .as_scalar()
                    .ok_or_else(|| self.lex.err("buildvec needs scalar elements"))?;
                let lanes = elems.len() as u8;
                self.define(
                    result,
                    InstKind::BuildVector {
                        elems: elems.into_boxed_slice(),
                    },
                    Type::vector(st, lanes),
                )
            }
            "extract" => {
                let n = self.lex.expect_value()?;
                let vector = self.value_strict(&n)?;
                self.lex.expect_punct(',')?;
                let lane = self.lex.expect_u8()?;
                let vt = self
                    .func
                    .ty(vector)
                    .as_vector()
                    .ok_or_else(|| self.lex.err("extract needs a vector operand"))?;
                self.define(
                    result,
                    InstKind::ExtractElement { vector, lane },
                    Type::Scalar(vt.elem),
                )
            }
            "insert" => {
                let n = self.lex.expect_value()?;
                let vector = self.value_strict(&n)?;
                self.lex.expect_punct(',')?;
                let n = self.lex.expect_value()?;
                let value = self.value_strict(&n)?;
                self.lex.expect_punct(',')?;
                let lane = self.lex.expect_u8()?;
                let ty = self.func.ty(vector);
                self.define(
                    result,
                    InstKind::InsertElement {
                        vector,
                        value,
                        lane,
                    },
                    ty,
                )
            }
            "shuffle" => {
                let n = self.lex.expect_value()?;
                let a = self.value_strict(&n)?;
                self.lex.expect_punct(',')?;
                let n = self.lex.expect_value()?;
                let b = self.value_strict(&n)?;
                self.lex.expect_punct(',')?;
                self.lex.expect_punct('[')?;
                let mut mask = Vec::new();
                loop {
                    mask.push(self.lex.expect_u8()?);
                    if !self.lex.eat_punct(',') {
                        break;
                    }
                }
                self.lex.expect_punct(']')?;
                let vt = self
                    .func
                    .ty(a)
                    .as_vector()
                    .ok_or_else(|| self.lex.err("shuffle needs vector operands"))?;
                let lanes = mask.len() as u8;
                self.define(
                    result,
                    InstKind::Shuffle {
                        a,
                        b,
                        mask: mask.into_boxed_slice(),
                    },
                    Type::vector(vt.elem, lanes),
                )
            }
            "phi" => {
                let ty = parse_type(self.lex)?;
                self.lex.expect_punct('[')?;
                let mut incoming = Vec::new();
                loop {
                    let blk = self.lex.expect_ident()?;
                    self.lex.expect_punct(':')?;
                    let val = self.lex.expect_value()?;
                    let b = self.block_ref(&blk);
                    let v = self.value_lazy(&val);
                    incoming.push((b, v));
                    if !self.lex.eat_punct(',') {
                        break;
                    }
                }
                self.lex.expect_punct(']')?;
                self.define(result, InstKind::Phi { incoming }, ty)
            }
            mnem => {
                // Binary or unary arithmetic: `<op> <ty> %a[, %b]`.
                if let Some(op) = BinOp::from_mnemonic(mnem) {
                    let ty = parse_type(self.lex)?;
                    let ops = self.parse_operand_list()?;
                    if ops.len() != 2 {
                        return Err(self.lex.err(format!("`{mnem}` takes 2 operands")));
                    }
                    self.define(
                        result,
                        InstKind::Binary {
                            op,
                            lhs: ops[0],
                            rhs: ops[1],
                        },
                        ty,
                    )
                } else if let Some(op) = UnOp::from_mnemonic(mnem) {
                    let ty = parse_type(self.lex)?;
                    let n = self.lex.expect_value()?;
                    let operand = self.value_strict(&n)?;
                    self.define(result, InstKind::Unary { op, operand }, ty)
                } else {
                    Err(self.lex.err(format!("unknown instruction `{mnem}`")))
                }
            }
        }
    }

    fn parse_effect_inst(&mut self, op: &str) -> Result<(), ParseError> {
        match op {
            "store" => {
                let ops = self.parse_operand_list()?;
                if ops.len() != 2 {
                    return Err(self.lex.err("store takes 2 operands"));
                }
                self.emit_effect(InstKind::Store {
                    ptr: ops[0],
                    value: ops[1],
                });
                Ok(())
            }
            "jmp" => {
                let label = self.lex.expect_ident()?;
                let target = self.block_ref(&label);
                self.emit_effect(InstKind::Jump { target });
                Ok(())
            }
            "br" => {
                let n = self.lex.expect_value()?;
                let cond = self.value_strict(&n)?;
                self.lex.expect_punct(',')?;
                let t = self.lex.expect_ident()?;
                self.lex.expect_punct(',')?;
                let e = self.lex.expect_ident()?;
                let on_true = self.block_ref(&t);
                let on_false = self.block_ref(&e);
                self.emit_effect(InstKind::Branch {
                    cond,
                    on_true,
                    on_false,
                });
                Ok(())
            }
            "ret" => {
                let value = if let Some(Tok::Value(_)) = self.lex.peek() {
                    let n = self.lex.expect_value()?;
                    Some(self.value_strict(&n)?)
                } else {
                    None
                };
                self.emit_effect(InstKind::Ret { value });
                Ok(())
            }
            other => Err(self.lex.err(format!("unknown instruction `{other}`"))),
        }
    }
}

fn parse_function(lex: &mut Lexer) -> Result<Function, ParseError> {
    lex.expect_keyword("func")?;
    let name = match lex.next()? {
        Tok::At(s) => s,
        t => return Err(lex.err(format!("expected @name, found {t:?}"))),
    };
    lex.expect_punct('(')?;
    let mut params = Vec::new();
    if !lex.eat_punct(')') {
        loop {
            let pname = lex.expect_value()?;
            lex.expect_punct(':')?;
            let ty = parse_type(lex)?;
            let noalias = if let Some(Tok::Ident(s)) = lex.peek() {
                if s == "noalias" {
                    lex.next()?;
                    true
                } else {
                    false
                }
            } else {
                false
            };
            params.push(Param {
                name: pname,
                ty,
                noalias,
            });
            if lex.eat_punct(')') {
                break;
            }
            lex.expect_punct(',')?;
        }
    }
    match lex.next()? {
        Tok::Arrow => {}
        t => return Err(lex.err(format!("expected `->`, found {t:?}"))),
    }
    let ret_ty = parse_type(lex)?;
    let mut fast_math = false;
    if let Some(Tok::Ident(s)) = lex.peek() {
        if s == "fastmath" {
            lex.next()?;
            fast_math = true;
        }
    }
    lex.expect_punct('{')?;

    let mut func = Function::new(name, params.clone(), ret_ty);
    func.fast_math = fast_math;
    let mut values = HashMap::new();
    for (i, p) in params.iter().enumerate() {
        values.insert(p.name.clone(), func.param(i));
    }
    let cur = func.entry();
    let mut fp = FuncParser {
        lex,
        func,
        values,
        pending: HashMap::new(),
        blocks: HashMap::new(),
        cur,
        saw_first_label: false,
    };
    fp.parse_body()?;
    Ok(fp.func)
}

/// Parses a module containing zero or more functions.
///
/// # Errors
///
/// Returns a [`ParseError`] with line information on malformed input.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut lex = lex(src)?;
    let mut module = Module::new("parsed");
    while lex.peek().is_some() {
        module.add_function(parse_function(&mut lex)?);
    }
    Ok(module)
}

/// Parses exactly one function.
///
/// # Errors
///
/// Returns a [`ParseError`] if the input does not contain exactly one
/// well-formed function.
pub fn parse_function_str(src: &str) -> Result<Function, ParseError> {
    let m = parse_module(src)?;
    let n = m.functions().len();
    if n != 1 {
        return Err(ParseError {
            line: 0,
            col: 0,
            message: format!("expected exactly 1 function, found {n}"),
        });
    }
    Ok(m.functions()[0].clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::ScalarType;

    #[test]
    fn parse_simple() {
        let f = parse_function_str(
            "func @f(%p: ptr noalias, %n: i64) -> void fastmath {
             entry:
               %v = load f64, %p
               %s = add f64 %v, %v
               store %p, %s
               ret
             }",
        )
        .unwrap();
        assert_eq!(f.name(), "f");
        assert!(f.fast_math);
        assert!(f.params()[0].noalias);
        assert!(!f.params()[1].noalias);
        assert_eq!(f.num_linked_insts(), 4);
    }

    #[test]
    fn parse_loop_with_phi_forward_ref() {
        let f = parse_function_str(
            "func @g(%p: ptr noalias, %n: i64) -> void {
             entry:
               %z = const i64 0
               jmp loop
             loop:
               %i = phi i64 [entry: %z, loop: %inext]
               %one = const i64 1
               %inext = add i64 %i, %one
               %c = cmp lt i64 %inext, %n
               br %c, loop, exit
             exit:
               ret
             }",
        )
        .unwrap();
        assert_eq!(f.num_blocks(), 3);
        // Round trip: print and reparse.
        let text = f.to_string();
        let f2 = parse_function_str(&text).unwrap();
        assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
        assert_eq!(f2.num_blocks(), f.num_blocks());
    }

    #[test]
    fn parse_vector_ops() {
        let f = parse_function_str(
            "func @v(%p: ptr noalias) -> void {
             entry:
               %a = load f32x4, %p
               %b = shuffle %a, %a, [3, 2, 1, 0]
               %c = lanewise [add, sub, add, sub] f32x4 %a, %b
               %x = extract %c, 2
               %d = insert %c, %x, 0
               %s = splat 4 %x
               %bv = buildvec %x, %x
               store %p, %d
               ret
             }",
        )
        .unwrap();
        assert_eq!(
            f.ty(f.block(f.entry()).insts()[2]),
            Type::vector(ScalarType::F32, 4)
        );
        let text = f.to_string();
        let f2 = parse_function_str(&text).unwrap();
        assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
    }

    #[test]
    fn error_on_undefined_value() {
        let e = parse_function_str(
            "func @f() -> void {
             entry:
               %s = add f64 %v, %v
               ret
             }",
        )
        .unwrap_err();
        assert!(e.message.contains("undefined value"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn error_on_unresolved_phi_operand() {
        let e = parse_function_str(
            "func @f() -> void {
             entry:
               %x = phi i64 [entry: %nope]
               ret
             }",
        )
        .unwrap_err();
        assert!(e.message.contains("undefined value"));
    }

    #[test]
    fn error_on_redefinition() {
        let e = parse_function_str(
            "func @f() -> void {
             entry:
               %x = const i64 1
               %x = const i64 2
               ret
             }",
        )
        .unwrap_err();
        assert!(e.message.contains("redefinition"));
    }

    #[test]
    fn comments_are_skipped() {
        let f = parse_function_str(
            "; leading comment
             func @f() -> void { # trailing
             entry: ; entry block
               ret
             }",
        )
        .unwrap();
        assert_eq!(f.num_linked_insts(), 1);
    }

    #[test]
    fn builder_output_round_trips() {
        let mut fb = FunctionBuilder::new(
            "k",
            vec![
                Param::noalias_ptr("a"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let n = fb.func().param(1);
        fb.counted_loop(n, |fb, i| {
            let eight = fb.const_i64(8);
            let off = fb.mul(i, eight);
            let p = fb.ptradd(a, off);
            let v = fb.load(ScalarType::F64, p);
            let half = fb.const_f64(0.5);
            let s = fb.mul(v, half);
            fb.store(p, s);
        });
        fb.ret(None);
        let f = fb.finish();
        let f2 = parse_function_str(&f.to_string()).unwrap();
        assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
        assert_eq!(f2.num_blocks(), f.num_blocks());
        // Printing the reparsed function is stable modulo value numbering.
        let f3 = parse_function_str(&f2.to_string()).unwrap();
        assert_eq!(f3.num_linked_insts(), f2.num_linked_insts());
    }

    #[test]
    fn negative_and_special_float_literals() {
        let f = parse_function_str(
            "func @c() -> void {
             entry:
               %a = const f64 -1.5
               %b = const f64 1e-3
               %c = const i32 -7
               ret
             }",
        )
        .unwrap();
        assert_eq!(f.num_linked_insts(), 4);
    }
}
