//! Textual form of the IR (printing side).
//!
//! The format round-trips through [`crate::parser`]. Example:
//!
//! ```text
//! func @axpy(%a: ptr noalias, %x: ptr noalias, %n: i64) -> void fastmath {
//! entry:
//!   %t3 = const i64 0
//!   jmp loop
//! loop:
//!   %t5 = phi i64 [entry: %t3, loop: %t12]
//!   ...
//! }
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::function::Function;
use crate::inst::{BlockId, InstId, InstKind};
use crate::module::Module;

/// Returns the display name of each block, deduplicated.
pub(crate) fn block_names(f: &Function) -> Vec<String> {
    let mut seen: HashMap<String, u32> = HashMap::new();
    let mut names = Vec::with_capacity(f.num_blocks());
    for b in f.block_ids() {
        let raw = f.block(b).name.clone();
        let base = if raw.is_empty() {
            format!("bb{}", b.0)
        } else {
            raw
        };
        let n = seen.entry(base.clone()).or_insert(0);
        let name = if *n == 0 {
            base.clone()
        } else {
            format!("{base}.{n}")
        };
        *n += 1;
        names.push(name);
    }
    names
}

/// Returns the display name of each value slot: `%<param-name>` for
/// parameters, `%t<id>` for instructions.
pub(crate) fn value_names(f: &Function) -> Vec<String> {
    let mut names = vec![String::new(); f.num_inst_slots()];
    for (i, &pid) in f.param_ids().iter().enumerate() {
        names[pid.index()] = format!("%{}", f.params()[i].name);
    }
    for (i, name) in names.iter_mut().enumerate() {
        if name.is_empty() {
            *name = format!("%t{i}");
        }
    }
    names
}

/// The display name of one value, matching the printed form: `%<name>`
/// for parameters, `%t<id>` for instructions. Used by diagnostics
/// (optimization remarks, DOT dumps) to refer to sites the same way the
/// printed IR does.
pub fn value_name(f: &Function, id: InstId) -> String {
    if let Some(pos) = f.param_ids().iter().position(|&p| p == id) {
        format!("%{}", f.params()[pos].name)
    } else {
        format!("%t{}", id.index())
    }
}

/// The display name of one block, matching the printed form. Note: when
/// two blocks share a raw name the printer deduplicates with `.N`
/// suffixes; this helper applies the same rule.
pub fn block_name(f: &Function, b: BlockId) -> String {
    let names = block_names(f);
    let idx = f.block_ids().position(|x| x == b).unwrap_or(0);
    names[idx].clone()
}

struct Printer<'a> {
    f: &'a Function,
    vnames: Vec<String>,
    bnames: Vec<String>,
}

impl Printer<'_> {
    fn v(&self, id: InstId) -> &str {
        &self.vnames[id.index()]
    }

    fn b(&self, id: BlockId) -> &str {
        &self.bnames[id.index()]
    }

    fn print_inst(&self, out: &mut fmt::Formatter<'_>, id: InstId) -> fmt::Result {
        let data = self.f.inst(id);
        let ty = data.ty;
        match &data.kind {
            InstKind::Param(_) => Ok(()),
            InstKind::Const(c) => {
                write!(out, "{} = const {} {}", self.v(id), c.scalar_type(), c)
            }
            InstKind::Binary { op, lhs, rhs } => write!(
                out,
                "{} = {} {} {}, {}",
                self.v(id),
                op,
                ty,
                self.v(*lhs),
                self.v(*rhs)
            ),
            InstKind::BinaryLanewise { ops, lhs, rhs } => {
                let names: Vec<&str> = ops.iter().map(|o| o.mnemonic()).collect();
                write!(
                    out,
                    "{} = lanewise [{}] {} {}, {}",
                    self.v(id),
                    names.join(", "),
                    ty,
                    self.v(*lhs),
                    self.v(*rhs)
                )
            }
            InstKind::Unary { op, operand } => {
                write!(out, "{} = {} {} {}", self.v(id), op, ty, self.v(*operand))
            }
            InstKind::Cast { kind, operand } => write!(
                out,
                "{} = cast {} {} {}",
                self.v(id),
                kind,
                ty,
                self.v(*operand)
            ),
            InstKind::Cmp { pred, lhs, rhs } => write!(
                out,
                "{} = cmp {} {} {}, {}",
                self.v(id),
                pred,
                self.f.ty(*lhs),
                self.v(*lhs),
                self.v(*rhs)
            ),
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => write!(
                out,
                "{} = select {}, {}, {}",
                self.v(id),
                self.v(*cond),
                self.v(*on_true),
                self.v(*on_false)
            ),
            InstKind::Load { ptr } => {
                write!(out, "{} = load {}, {}", self.v(id), ty, self.v(*ptr))
            }
            InstKind::Store { ptr, value } => {
                write!(out, "store {}, {}", self.v(*ptr), self.v(*value))
            }
            InstKind::PtrAdd { ptr, offset } => write!(
                out,
                "{} = ptradd {}, {}",
                self.v(id),
                self.v(*ptr),
                self.v(*offset)
            ),
            InstKind::Splat { value, lanes } => {
                write!(out, "{} = splat {} {}", self.v(id), lanes, self.v(*value))
            }
            InstKind::BuildVector { elems } => {
                let names: Vec<&str> = elems.iter().map(|e| self.v(*e)).collect();
                write!(out, "{} = buildvec {}", self.v(id), names.join(", "))
            }
            InstKind::ExtractElement { vector, lane } => write!(
                out,
                "{} = extract {}, {}",
                self.v(id),
                self.v(*vector),
                lane
            ),
            InstKind::InsertElement {
                vector,
                value,
                lane,
            } => write!(
                out,
                "{} = insert {}, {}, {}",
                self.v(id),
                self.v(*vector),
                self.v(*value),
                lane
            ),
            InstKind::Shuffle { a, b, mask } => {
                let m: Vec<String> = mask.iter().map(|x| x.to_string()).collect();
                write!(
                    out,
                    "{} = shuffle {}, {}, [{}]",
                    self.v(id),
                    self.v(*a),
                    self.v(*b),
                    m.join(", ")
                )
            }
            InstKind::Phi { incoming } => {
                let edges: Vec<String> = incoming
                    .iter()
                    .map(|(b, v)| format!("{}: {}", self.b(*b), self.v(*v)))
                    .collect();
                write!(out, "{} = phi {} [{}]", self.v(id), ty, edges.join(", "))
            }
            InstKind::Jump { target } => write!(out, "jmp {}", self.b(*target)),
            InstKind::Branch {
                cond,
                on_true,
                on_false,
            } => write!(
                out,
                "br {}, {}, {}",
                self.v(*cond),
                self.b(*on_true),
                self.b(*on_false)
            ),
            InstKind::Ret { value } => match value {
                Some(v) => write!(out, "ret {}", self.v(*v)),
                None => write!(out, "ret"),
            },
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = Printer {
            f: self,
            vnames: value_names(self),
            bnames: block_names(self),
        };
        write!(out, "func @{}(", self.name())?;
        for (i, param) in self.params().iter().enumerate() {
            if i > 0 {
                write!(out, ", ")?;
            }
            write!(out, "%{}: {}", param.name, param.ty)?;
            if param.noalias {
                write!(out, " noalias")?;
            }
        }
        write!(out, ") -> {}", self.ret_ty())?;
        if self.fast_math {
            write!(out, " fastmath")?;
        }
        writeln!(out, " {{")?;
        for b in self.block_ids() {
            writeln!(out, "{}:", p.bnames[b.index()])?;
            for &id in self.block(b).insts() {
                write!(out, "  ")?;
                p.print_inst(out, id)?;
                writeln!(out)?;
            }
        }
        writeln!(out, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, f) in self.functions().iter().enumerate() {
            if i > 0 {
                writeln!(out)?;
            }
            f.fmt(out)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::types::{ScalarType, Type};

    #[test]
    fn prints_signature_and_body() {
        let mut fb = FunctionBuilder::new(
            "f",
            vec![
                Param::noalias_ptr("a"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        fb.set_fast_math(true);
        let a = fb.func().param(0);
        let v = fb.load(ScalarType::F64, a);
        let s = fb.add(v, v);
        fb.store(a, s);
        fb.ret(None);
        let text = fb.finish().to_string();
        assert!(text.contains("func @f(%a: ptr noalias, %n: i64) -> void fastmath {"));
        assert!(text.contains("load f64, %a"));
        assert!(text.contains("add f64"));
        assert!(text.contains("store %a,"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn duplicate_block_names_deduplicated() {
        let mut fb = FunctionBuilder::new("g", vec![], Type::Void);
        let b1 = fb.create_block("body");
        let b2 = fb.create_block("body");
        fb.jump(b1);
        fb.switch_to(b1);
        fb.jump(b2);
        fb.switch_to(b2);
        fb.ret(None);
        let text = fb.finish().to_string();
        assert!(text.contains("body:"));
        assert!(text.contains("body.1:"));
    }
}
