//! A minimal multiply-rotate hasher for the compiler's internal maps.
//!
//! The pass pipeline keys almost every map by `InstId` (a `u32` newtype)
//! or by short tuples of ids; the standard library's SipHash is built for
//! HashDoS resistance the compiler does not need and profiles as one of
//! the hottest functions in a compile. This is the classic FxHash
//! recipe — rotate, xor, multiply by a golden-ratio-derived constant per
//! word — implemented here directly so the workspace stays free of
//! external crates. All inputs come from the compiler itself, never from
//! untrusted users, so the lack of DoS resistance is irrelevant.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier: 2^64 / φ, forced odd (the fxhash constant).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// The hasher state. Create through `BuildHasherDefault` (see
/// [`FxHashMap`] / [`FxHashSet`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Length in the top byte so "ab" and "ab\0" differ.
            tail[7] = rest.len() as u8;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`]. Drop-in for `std::collections::HashMap`
/// in compiler-internal code (`FxHashMap::default()`, not `new()`).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        let s: FxHashSet<u64> = (0..1000u64).collect();
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn byte_slices_with_distinct_tails_differ() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_ne!(h(b"ab"), h(b"ab\0"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefg"));
        assert_eq!(h(b"abcdefgh"), h(b"abcdefgh"));
    }

    #[test]
    fn distinct_small_keys_spread() {
        // Sanity: the low bits of consecutive u32 keys must not collide
        // wholesale (hashbrown uses the high bits too, but a constant
        // hash would degenerate the table to a linked list).
        let hashes: FxHashSet<u64> = (0..64u32)
            .map(|i| {
                let mut h = FxHasher::default();
                h.write_u32(i);
                h.finish()
            })
            .collect();
        assert_eq!(hashes.len(), 64);
    }
}
