//! Instruction definitions: opcodes, constants, and instruction kinds.

use std::fmt;

use crate::types::ScalarType;

/// Identifier of an instruction (or function parameter) inside a
/// [`Function`](crate::Function) arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

impl InstId {
    /// Index into the instruction arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Identifier of a basic block inside a [`Function`](crate::Function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into the block arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Binary operator.
///
/// The same opcode applies to integers and floats; the operand type selects
/// the semantics (e.g. `Add` on `f64` is an IEEE addition, on `i64` a
/// wrapping addition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers).
    Add,
    /// Subtraction (wrapping for integers).
    Sub,
    /// Multiplication (wrapping for integers).
    Mul,
    /// Division. Integer division by zero traps in the interpreter.
    Div,
    /// Remainder.
    Rem,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
    /// Bitwise and (integers only).
    And,
    /// Bitwise or (integers only).
    Or,
    /// Bitwise xor (integers only).
    Xor,
    /// Shift left (integers only).
    Shl,
    /// Arithmetic shift right (integers only).
    Shr,
}

impl BinOp {
    /// Whether `a op b == b op a` for all inputs.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Whether the op is associative (used to gate chain flattening).
    ///
    /// Floating-point `Add`/`Mul` are only *treated* as associative under
    /// fast-math, which the vectorizer checks separately.
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Whether the op only applies to integer operands.
    pub fn is_int_only(self) -> bool {
        matches!(
            self,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
        )
    }

    /// The operator family ([`OpFamily`]) this op belongs to, and whether it
    /// is the inverse member of that family.
    ///
    /// `Add`/`Sub` form the additive family; `Mul`/`Div` the multiplicative
    /// one. Returns `None` for ops outside both families.
    pub fn family(self) -> Option<(OpFamily, Direction)> {
        match self {
            BinOp::Add => Some((OpFamily::AddSub, Direction::Direct)),
            BinOp::Sub => Some((OpFamily::AddSub, Direction::Inverse)),
            BinOp::Mul => Some((OpFamily::MulDiv, Direction::Direct)),
            BinOp::Div => Some((OpFamily::MulDiv, Direction::Inverse)),
            _ => None,
        }
    }

    /// Lower-case mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }

    /// Parses a mnemonic produced by [`BinOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            _ => return None,
        })
    }

    /// All binary ops, for exhaustive tests.
    pub const ALL: [BinOp; 12] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A commutative-and-associative operator together with its inverse element
/// operator, the algebraic structure the Super-Node is built on (paper
/// §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpFamily {
    /// Addition and subtraction.
    AddSub,
    /// Multiplication and division.
    MulDiv,
}

impl OpFamily {
    /// The direct (commutative) member: `add` or `mul`.
    pub fn direct(self) -> BinOp {
        match self {
            OpFamily::AddSub => BinOp::Add,
            OpFamily::MulDiv => BinOp::Mul,
        }
    }

    /// The inverse member: `sub` or `div`.
    pub fn inverse(self) -> BinOp {
        match self {
            OpFamily::AddSub => BinOp::Sub,
            OpFamily::MulDiv => BinOp::Div,
        }
    }

    /// The op corresponding to a [`Direction`] within this family.
    pub fn op(self, dir: Direction) -> BinOp {
        match dir {
            Direction::Direct => self.direct(),
            Direction::Inverse => self.inverse(),
        }
    }
}

/// Whether an op is the direct member of its [`OpFamily`] or the inverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// `add` / `mul`.
    Direct,
    /// `sub` / `div`.
    Inverse,
}

/// Unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Bitwise complement (integers only).
    Not,
    /// Absolute value.
    Abs,
    /// Square root (floats only).
    Sqrt,
}

impl UnOp {
    /// Lower-case mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::Abs => "abs",
            UnOp::Sqrt => "sqrt",
        }
    }

    /// Parses a mnemonic produced by [`UnOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "neg" => UnOp::Neg,
            "not" => UnOp::Not,
            "abs" => UnOp::Abs,
            "sqrt" => UnOp::Sqrt,
            _ => return None,
        })
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conversion operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastKind {
    /// Signed integer → floating point.
    Sitofp,
    /// Floating point → signed integer (saturating, round toward zero).
    Fptosi,
    /// `f32` → `f64`.
    Fpext,
    /// `f64` → `f32`.
    Fptrunc,
    /// `i32` → `i64` (sign extension).
    Sext,
    /// `i64` → `i32` (truncation).
    Trunc,
}

impl CastKind {
    /// Lower-case mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Sitofp => "sitofp",
            CastKind::Fptosi => "fptosi",
            CastKind::Fpext => "fpext",
            CastKind::Fptrunc => "fptrunc",
            CastKind::Sext => "sext",
            CastKind::Trunc => "trunc",
        }
    }

    /// Parses a mnemonic produced by [`CastKind::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "sitofp" => CastKind::Sitofp,
            "fptosi" => CastKind::Fptosi,
            "fpext" => CastKind::Fpext,
            "fptrunc" => CastKind::Fptrunc,
            "sext" => CastKind::Sext,
            "trunc" => CastKind::Trunc,
            _ => return None,
        })
    }

    /// Whether `from → to` is the conversion this kind performs.
    pub fn valid_for(self, from: ScalarType, to: ScalarType) -> bool {
        match self {
            CastKind::Sitofp => from.is_int() && to.is_float(),
            CastKind::Fptosi => from.is_float() && to.is_int(),
            CastKind::Fpext => from == ScalarType::F32 && to == ScalarType::F64,
            CastKind::Fptrunc => from == ScalarType::F64 && to == ScalarType::F32,
            CastKind::Sext => from == ScalarType::I32 && to == ScalarType::I64,
            CastKind::Trunc => from == ScalarType::I64 && to == ScalarType::I32,
        }
    }
}

impl fmt::Display for CastKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison predicate. Signedness/ordering follows the operand type
/// (signed compare for integers, ordered compare for floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpPred {
    /// Lower-case mnemonic used in the textual IR.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    /// Parses a mnemonic produced by [`CmpPred::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => return None,
        })
    }
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A scalar immediate constant.
///
/// Equality and hashing of float constants compare the raw bit pattern, so
/// `NaN == NaN` holds for identical payloads and `-0.0 != 0.0`; this is the
/// behaviour a compiler wants when deduplicating constants.
#[derive(Debug, Clone, Copy)]
pub enum Constant {
    /// 32-bit integer immediate.
    I32(i32),
    /// 64-bit integer immediate.
    I64(i64),
    /// 32-bit float immediate.
    F32(f32),
    /// 64-bit float immediate.
    F64(f64),
}

impl Constant {
    /// The type of the constant.
    pub fn scalar_type(&self) -> ScalarType {
        match self {
            Constant::I32(_) => ScalarType::I32,
            Constant::I64(_) => ScalarType::I64,
            Constant::F32(_) => ScalarType::F32,
            Constant::F64(_) => ScalarType::F64,
        }
    }

    /// Whether this is the additive identity of its type.
    pub fn is_zero(&self) -> bool {
        match *self {
            Constant::I32(v) => v == 0,
            Constant::I64(v) => v == 0,
            Constant::F32(v) => v == 0.0,
            Constant::F64(v) => v == 0.0,
        }
    }

    /// Whether this is the multiplicative identity of its type.
    pub fn is_one(&self) -> bool {
        match *self {
            Constant::I32(v) => v == 1,
            Constant::I64(v) => v == 1,
            Constant::F32(v) => v == 1.0,
            Constant::F64(v) => v == 1.0,
        }
    }

    /// The zero constant of a scalar type.
    pub fn zero(ty: ScalarType) -> Self {
        match ty {
            ScalarType::I32 => Constant::I32(0),
            ScalarType::I64 => Constant::I64(0),
            ScalarType::F32 => Constant::F32(0.0),
            ScalarType::F64 => Constant::F64(0.0),
        }
    }

    /// The one constant of a scalar type.
    pub fn one(ty: ScalarType) -> Self {
        match ty {
            ScalarType::I32 => Constant::I32(1),
            ScalarType::I64 => Constant::I64(1),
            ScalarType::F32 => Constant::F32(1.0),
            ScalarType::F64 => Constant::F64(1.0),
        }
    }

    /// Raw 64-bit representation used for equality/hashing.
    fn bits(&self) -> (u8, u64) {
        match *self {
            Constant::I32(v) => (0, v as u32 as u64),
            Constant::I64(v) => (1, v as u64),
            Constant::F32(v) => (2, u64::from(v.to_bits())),
            Constant::F64(v) => (3, v.to_bits()),
        }
    }
}

impl PartialEq for Constant {
    fn eq(&self, other: &Self) -> bool {
        self.bits() == other.bits()
    }
}

impl Eq for Constant {}

impl std::hash::Hash for Constant {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bits().hash(state);
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::I32(v) => write!(f, "{v}"),
            Constant::I64(v) => write!(f, "{v}"),
            Constant::F32(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Constant::F64(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// The payload of an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// The `n`-th function parameter. Created by the function constructor;
    /// never appears inside a block.
    Param(u32),
    /// A scalar immediate.
    Const(Constant),
    /// `lhs op rhs` on scalars or lane-wise on vectors.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: InstId,
        /// Right operand.
        rhs: InstId,
    },
    /// A vector binary instruction applying a *different* operator per lane
    /// (the x86 `addsub` family generalized). `ops.len()` must equal the
    /// lane count.
    BinaryLanewise {
        /// Per-lane operators.
        ops: Box<[BinOp]>,
        /// Left operand.
        lhs: InstId,
        /// Right operand.
        rhs: InstId,
    },
    /// `op operand` on scalars or lane-wise on vectors.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: InstId,
    },
    /// Type conversion; the result type is the instruction's type.
    Cast {
        /// Conversion operator.
        kind: CastKind,
        /// Operand.
        operand: InstId,
    },
    /// Comparison producing `i32` 0/1 (or a vector thereof).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Left operand.
        lhs: InstId,
        /// Right operand.
        rhs: InstId,
    },
    /// `cond ? on_true : on_false`; `cond` is scalar `i32`.
    Select {
        /// Condition (non-zero selects `on_true`).
        cond: InstId,
        /// Value when condition is non-zero.
        on_true: InstId,
        /// Value when condition is zero.
        on_false: InstId,
    },
    /// Loads a value of the instruction's type from `ptr`.
    Load {
        /// Address operand (type `ptr`).
        ptr: InstId,
    },
    /// Stores `value` to `ptr`.
    Store {
        /// Address operand (type `ptr`).
        ptr: InstId,
        /// Value to store.
        value: InstId,
    },
    /// `ptr + offset` (byte offset, `i64`).
    PtrAdd {
        /// Base address.
        ptr: InstId,
        /// Byte offset (`i64`).
        offset: InstId,
    },
    /// Broadcasts a scalar into all lanes of a vector.
    Splat {
        /// Scalar to broadcast.
        value: InstId,
        /// Number of lanes.
        lanes: u8,
    },
    /// Builds a vector out of scalar elements.
    BuildVector {
        /// Lane values, one per lane.
        elems: Box<[InstId]>,
    },
    /// Extracts lane `lane` from a vector.
    ExtractElement {
        /// Vector operand.
        vector: InstId,
        /// Lane index.
        lane: u8,
    },
    /// Inserts a scalar into lane `lane` of a vector.
    InsertElement {
        /// Vector operand.
        vector: InstId,
        /// Scalar to insert.
        value: InstId,
        /// Lane index.
        lane: u8,
    },
    /// Shuffles two vectors: output lane `i` is lane `mask[i]` of the
    /// 2·lanes-wide concatenation `a ++ b`.
    Shuffle {
        /// First vector.
        a: InstId,
        /// Second vector.
        b: InstId,
        /// Selection mask.
        mask: Box<[u8]>,
    },
    /// SSA phi node.
    Phi {
        /// `(predecessor block, value)` pairs.
        incoming: Vec<(BlockId, InstId)>,
    },
    /// Unconditional branch.
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Conditional branch on a scalar `i32` condition.
    Branch {
        /// Condition (non-zero takes `on_true`).
        cond: InstId,
        /// Destination when condition is non-zero.
        on_true: BlockId,
        /// Destination when condition is zero.
        on_false: BlockId,
    },
    /// Function return.
    Ret {
        /// Returned value, if the function returns one.
        value: Option<InstId>,
    },
}

impl InstKind {
    /// The value operands of this instruction, in a fixed order.
    pub fn operands(&self) -> Vec<InstId> {
        match self {
            InstKind::Param(_) | InstKind::Const(_) | InstKind::Jump { .. } => Vec::new(),
            InstKind::Binary { lhs, rhs, .. }
            | InstKind::BinaryLanewise { lhs, rhs, .. }
            | InstKind::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstKind::Unary { operand, .. } | InstKind::Cast { operand, .. } => {
                vec![*operand]
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => vec![*cond, *on_true, *on_false],
            InstKind::Load { ptr } => vec![*ptr],
            InstKind::Store { ptr, value } => vec![*ptr, *value],
            InstKind::PtrAdd { ptr, offset } => vec![*ptr, *offset],
            InstKind::Splat { value, .. } => vec![*value],
            InstKind::BuildVector { elems } => elems.to_vec(),
            InstKind::ExtractElement { vector, .. } => vec![*vector],
            InstKind::InsertElement { vector, value, .. } => vec![*vector, *value],
            InstKind::Shuffle { a, b, .. } => vec![*a, *b],
            InstKind::Phi { incoming } => incoming.iter().map(|(_, v)| *v).collect(),
            InstKind::Branch { cond, .. } => vec![*cond],
            InstKind::Ret { value } => value.iter().copied().collect(),
        }
    }

    /// Applies `f` to every value operand, in the same fixed order as
    /// [`InstKind::operands`], without allocating.
    pub fn for_each_operand(&self, mut f: impl FnMut(InstId)) {
        match self {
            InstKind::Param(_) | InstKind::Const(_) | InstKind::Jump { .. } => {}
            InstKind::Binary { lhs, rhs, .. }
            | InstKind::BinaryLanewise { lhs, rhs, .. }
            | InstKind::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::Unary { operand, .. } | InstKind::Cast { operand, .. } => f(*operand),
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(*cond);
                f(*on_true);
                f(*on_false);
            }
            InstKind::Load { ptr } => f(*ptr),
            InstKind::Store { ptr, value } => {
                f(*ptr);
                f(*value);
            }
            InstKind::PtrAdd { ptr, offset } => {
                f(*ptr);
                f(*offset);
            }
            InstKind::Splat { value, .. } => f(*value),
            InstKind::BuildVector { elems } => {
                for &e in elems {
                    f(e);
                }
            }
            InstKind::ExtractElement { vector, .. } => f(*vector),
            InstKind::InsertElement { vector, value, .. } => {
                f(*vector);
                f(*value);
            }
            InstKind::Shuffle { a, b, .. } => {
                f(*a);
                f(*b);
            }
            InstKind::Phi { incoming } => {
                for &(_, v) in incoming {
                    f(v);
                }
            }
            InstKind::Branch { cond, .. } => f(*cond),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
        }
    }

    /// Applies `f` to every value-operand slot.
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut InstId)) {
        match self {
            InstKind::Param(_) | InstKind::Const(_) | InstKind::Jump { .. } => {}
            InstKind::Binary { lhs, rhs, .. }
            | InstKind::BinaryLanewise { lhs, rhs, .. }
            | InstKind::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Unary { operand, .. } | InstKind::Cast { operand, .. } => f(operand),
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Load { ptr } => f(ptr),
            InstKind::Store { ptr, value } => {
                f(ptr);
                f(value);
            }
            InstKind::PtrAdd { ptr, offset } => {
                f(ptr);
                f(offset);
            }
            InstKind::Splat { value, .. } => f(value),
            InstKind::BuildVector { elems } => {
                for e in elems.iter_mut() {
                    f(e);
                }
            }
            InstKind::ExtractElement { vector, .. } => f(vector),
            InstKind::InsertElement { vector, value, .. } => {
                f(vector);
                f(value);
            }
            InstKind::Shuffle { a, b, .. } => {
                f(a);
                f(b);
            }
            InstKind::Phi { incoming } => {
                for (_, v) in incoming.iter_mut() {
                    f(v);
                }
            }
            InstKind::Branch { cond, .. } => f(cond),
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    f(v);
                }
            }
        }
    }

    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Ret { .. }
        )
    }

    /// Whether the instruction writes memory or controls execution, i.e.
    /// must never be removed as dead even when unused.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, InstKind::Store { .. }) || self.is_terminator()
    }

    /// Whether this instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, InstKind::Load { .. })
    }

    /// Whether this instruction writes memory.
    pub fn writes_memory(&self) -> bool {
        matches!(self, InstKind::Store { .. })
    }

    /// The successor blocks if this is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Jump { target } => vec![*target],
            InstKind::Branch {
                on_true, on_false, ..
            } => vec![*on_true, *on_false],
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Mul.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Div.is_commutative());
        assert!(BinOp::Xor.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
    }

    #[test]
    fn families() {
        assert_eq!(
            BinOp::Add.family(),
            Some((OpFamily::AddSub, Direction::Direct))
        );
        assert_eq!(
            BinOp::Sub.family(),
            Some((OpFamily::AddSub, Direction::Inverse))
        );
        assert_eq!(
            BinOp::Div.family(),
            Some((OpFamily::MulDiv, Direction::Inverse))
        );
        assert_eq!(BinOp::Xor.family(), None);
        assert_eq!(OpFamily::AddSub.direct(), BinOp::Add);
        assert_eq!(OpFamily::AddSub.inverse(), BinOp::Sub);
        assert_eq!(OpFamily::MulDiv.op(Direction::Inverse), BinOp::Div);
    }

    #[test]
    fn mnemonic_round_trip() {
        for op in BinOp::ALL {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for op in [UnOp::Neg, UnOp::Not, UnOp::Abs, UnOp::Sqrt] {
            assert_eq!(UnOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(CmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
    }

    #[test]
    fn constant_bitwise_equality() {
        assert_eq!(Constant::F64(0.0), Constant::F64(0.0));
        assert_ne!(Constant::F64(0.0), Constant::F64(-0.0));
        assert_eq!(Constant::F64(f64::NAN), Constant::F64(f64::NAN));
        assert_ne!(Constant::I32(1), Constant::I64(1));
    }

    #[test]
    fn constant_identities() {
        for ty in ScalarType::ALL {
            assert!(Constant::zero(ty).is_zero());
            assert!(Constant::one(ty).is_one());
            assert_eq!(Constant::zero(ty).scalar_type(), ty);
        }
    }

    #[test]
    fn operand_lists() {
        let b = InstKind::Binary {
            op: BinOp::Add,
            lhs: InstId(1),
            rhs: InstId(2),
        };
        assert_eq!(b.operands(), vec![InstId(1), InstId(2)]);
        assert!(!b.is_terminator());
        assert!(!b.has_side_effects());

        let s = InstKind::Store {
            ptr: InstId(3),
            value: InstId(4),
        };
        assert!(s.has_side_effects());
        assert!(s.writes_memory());

        let br = InstKind::Branch {
            cond: InstId(0),
            on_true: BlockId(1),
            on_false: BlockId(2),
        };
        assert!(br.is_terminator());
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
    }

    #[test]
    fn for_each_operand_mut_rewrites() {
        let mut k = InstKind::Select {
            cond: InstId(0),
            on_true: InstId(1),
            on_false: InstId(2),
        };
        k.for_each_operand_mut(|o| *o = InstId(o.0 + 10));
        assert_eq!(k.operands(), vec![InstId(10), InstId(11), InstId(12)]);
    }
}
