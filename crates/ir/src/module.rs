//! Modules: named collections of functions.

use crate::function::Function;

/// A compilation unit holding one or more functions.
#[derive(Debug, Clone, Default)]
pub struct Module {
    name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a function and returns its index.
    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Mutable access to all functions.
    pub fn functions_mut(&mut self) -> &mut [Function] {
        &mut self.functions
    }

    /// Consumes the module and returns its functions in order.
    pub fn into_functions(self) -> Vec<Function> {
        self.functions
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name() == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name() == name)
    }
}

impl FromIterator<Function> for Module {
    fn from_iter<T: IntoIterator<Item = Function>>(iter: T) -> Self {
        Module {
            name: String::new(),
            functions: iter.into_iter().collect(),
        }
    }
}

impl Extend<Function> for Module {
    fn extend<T: IntoIterator<Item = Function>>(&mut self, iter: T) {
        self.functions.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Param;
    use crate::types::Type;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("m");
        m.add_function(Function::new(
            "a",
            vec![Param::noalias_ptr("p")],
            Type::Void,
        ));
        m.add_function(Function::new("b", vec![], Type::Void));
        assert!(m.function("a").is_some());
        assert!(m.function("b").is_some());
        assert!(m.function("c").is_none());
        assert_eq!(m.functions().len(), 2);
    }

    #[test]
    fn multi_function_module_prints_and_reparses() {
        use crate::builder::FunctionBuilder;
        use crate::types::ScalarType;
        let mut m = Module::new("m");
        for name in ["first", "second"] {
            let mut fb = FunctionBuilder::new(name, vec![Param::noalias_ptr("p")], Type::Void);
            let p = fb.func().param(0);
            let v = fb.load(ScalarType::F64, p);
            let s = fb.add(v, v);
            fb.store(p, s);
            fb.ret(None);
            m.add_function(fb.finish());
        }
        let text = m.to_string();
        let m2 = crate::parser::parse_module(&text).unwrap();
        assert_eq!(m2.functions().len(), 2);
        assert!(m2.function("first").is_some());
        assert!(m2.function("second").is_some());
    }

    #[test]
    fn from_iterator_and_extend() {
        let f = Function::new("x", vec![], Type::Void);
        let mut m: Module = vec![f.clone()].into_iter().collect();
        m.extend(vec![Function::new("y", vec![], Type::Void)]);
        assert_eq!(m.functions().len(), 2);
        assert!(m.function_mut("y").is_some());
    }
}
