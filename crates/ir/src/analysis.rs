//! Memory analyses used by the vectorizer: address decomposition,
//! adjacency, and a conservative alias test.

use crate::function::Function;
use crate::inst::{BinOp, Constant, InstId, InstKind};

/// An address decomposed into `root + constant byte offset`.
///
/// `root` is the first value in the `ptradd` chain whose offset is not a
/// compile-time constant (often a per-iteration base pointer, or a
/// `noalias` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddrExpr {
    /// The non-constant part of the address.
    pub root: InstId,
    /// Accumulated constant byte offset.
    pub offset: i64,
}

/// Decomposes a pointer value into [`AddrExpr`] by folding constant
/// `ptradd` offsets (including `add`/`sub`-of-constant offset expressions).
pub fn decompose_address(f: &Function, ptr: InstId) -> AddrExpr {
    let mut root = ptr;
    let mut offset: i64 = 0;
    loop {
        match f.kind(root) {
            InstKind::PtrAdd { ptr, offset: off } => match const_i64(f, *off) {
                Some(c) => {
                    offset = offset.wrapping_add(c);
                    root = *ptr;
                }
                None => {
                    // `p + (x + c)` decomposes as `(p + x) + c`; keep the
                    // dynamic part in the root by looking through a
                    // trailing constant addend.
                    match split_const_addend(f, *off) {
                        Some((_, c)) => {
                            offset = offset.wrapping_add(c);
                            // The root becomes this ptradd minus its constant
                            // part; since that value does not exist as an
                            // instruction we conservatively stop here and
                            // use a *symbolic* key instead: the pair
                            // (base, dynamic offset value) is what matters.
                            return AddrExpr {
                                root: symbolic_root(f, root),
                                offset,
                            };
                        }
                        None => return AddrExpr { root, offset },
                    }
                }
            },
            _ => return AddrExpr { root, offset },
        }
    }
}

/// For `ptradd(p, x ± c)` returns the instruction itself as root; two
/// textually identical ptradds are distinct roots unless CSE merged them.
fn symbolic_root(_f: &Function, ptr: InstId) -> InstId {
    ptr
}

/// If `v` computes `x + c` or `x - c` with `c` constant, returns `(x, ±c)`.
fn split_const_addend(f: &Function, v: InstId) -> Option<(InstId, i64)> {
    match f.kind(v) {
        InstKind::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } => {
            if let Some(c) = const_i64(f, *rhs) {
                Some((*lhs, c))
            } else {
                const_i64(f, *lhs).map(|c| (*rhs, c))
            }
        }
        InstKind::Binary {
            op: BinOp::Sub,
            lhs,
            rhs,
        } => const_i64(f, *rhs).map(|c| (*lhs, -c)),
        _ => None,
    }
}

/// The constant `i64` value of `v`, if it is one.
pub fn const_i64(f: &Function, v: InstId) -> Option<i64> {
    match f.kind(v) {
        InstKind::Const(Constant::I64(c)) => Some(*c),
        InstKind::Const(Constant::I32(c)) => Some(i64::from(*c)),
        _ => None,
    }
}

/// Walks through every `ptradd` to the ultimate base of an address.
pub fn ultimate_base(f: &Function, ptr: InstId) -> InstId {
    let mut cur = ptr;
    loop {
        match f.kind(cur) {
            InstKind::PtrAdd { ptr, .. } => cur = *ptr,
            _ => return cur,
        }
    }
}

/// Whether `ptr` is (rooted at) a `noalias` function parameter.
pub fn noalias_param_base(f: &Function, ptr: InstId) -> Option<InstId> {
    let base = ultimate_base(f, ptr);
    if let InstKind::Param(i) = f.kind(base) {
        if f.params()[*i as usize].noalias {
            return Some(base);
        }
    }
    None
}

/// A memory access: decomposed address plus access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLoc {
    /// Decomposed address.
    pub addr: AddrExpr,
    /// Ultimate base pointer (through all `ptradd`s).
    pub base: InstId,
    /// Access size in bytes.
    pub size: u32,
}

impl MemLoc {
    /// Builds the location accessed by a load or store instruction.
    ///
    /// Returns `None` if `id` is not a memory instruction.
    pub fn of_inst(f: &Function, id: InstId) -> Option<MemLoc> {
        let (ptr, ty) = match f.kind(id) {
            InstKind::Load { ptr } => (*ptr, f.ty(id)),
            InstKind::Store { ptr, value } => (*ptr, f.ty(*value)),
            _ => return None,
        };
        Some(MemLoc {
            addr: decompose_address(f, ptr),
            base: ultimate_base(f, ptr),
            size: ty.size_bytes(),
        })
    }
}

/// Conservative may-alias test between two memory locations.
///
/// Two accesses with the same decomposed root do not alias iff their
/// constant ranges are disjoint. Accesses rooted at *distinct* `noalias`
/// parameters never alias. Everything else may alias.
pub fn may_alias(f: &Function, a: &MemLoc, b: &MemLoc) -> bool {
    if a.addr.root == b.addr.root {
        let (ao, bo) = (a.addr.offset, b.addr.offset);
        let disjoint = ao + i64::from(a.size) <= bo || bo + i64::from(b.size) <= ao;
        return !disjoint;
    }
    let na = noalias_param_base(f, a.addr.root);
    let nb = noalias_param_base(f, b.addr.root);
    !matches!((na, nb), (Some(pa), Some(pb)) if pa != pb)
}

/// Whether the access of `b` starts exactly where the access of `a` ends
/// (i.e. they are adjacent in memory, `a` first).
pub fn is_consecutive(f: &Function, a: &MemLoc, b: &MemLoc) -> bool {
    let _ = f;
    a.addr.root == b.addr.root && a.addr.offset + i64::from(a.size) == b.addr.offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::types::{ScalarType, Type};

    /// Builds: loads from a[0], a[8], b[0], and a[8] via a dynamic base.
    fn setup() -> (Function, Vec<InstId>) {
        let mut fb = FunctionBuilder::new(
            "t",
            vec![
                Param::noalias_ptr("a"),
                Param::noalias_ptr("b"),
                Param::new("i", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let i = fb.func().param(2);
        let l0 = fb.load(ScalarType::F64, a);
        let p8 = fb.ptradd_const(a, 8);
        let l1 = fb.load(ScalarType::F64, p8);
        let l2 = fb.load(ScalarType::F64, b);
        let eight = fb.const_i64(8);
        let dyn_off = fb.mul(i, eight);
        let pd = fb.ptradd(a, dyn_off);
        let pd8 = fb.ptradd_const(pd, 8);
        let l3 = fb.load(ScalarType::F64, pd);
        let l4 = fb.load(ScalarType::F64, pd8);
        fb.ret(None);
        (fb.finish(), vec![l0, l1, l2, l3, l4])
    }

    #[test]
    fn decompose_folds_constants() {
        let (f, loads) = setup();
        let m0 = MemLoc::of_inst(&f, loads[0]).unwrap();
        let m1 = MemLoc::of_inst(&f, loads[1]).unwrap();
        assert_eq!(m0.addr.root, m1.addr.root);
        assert_eq!(m0.addr.offset, 0);
        assert_eq!(m1.addr.offset, 8);
    }

    #[test]
    fn consecutive_detection() {
        let (f, loads) = setup();
        let m0 = MemLoc::of_inst(&f, loads[0]).unwrap();
        let m1 = MemLoc::of_inst(&f, loads[1]).unwrap();
        let m2 = MemLoc::of_inst(&f, loads[2]).unwrap();
        assert!(is_consecutive(&f, &m0, &m1));
        assert!(!is_consecutive(&f, &m1, &m0));
        assert!(!is_consecutive(&f, &m0, &m2));
    }

    #[test]
    fn consecutive_through_dynamic_base() {
        let (f, loads) = setup();
        let m3 = MemLoc::of_inst(&f, loads[3]).unwrap();
        let m4 = MemLoc::of_inst(&f, loads[4]).unwrap();
        assert_eq!(m3.addr.root, m4.addr.root);
        assert!(is_consecutive(&f, &m3, &m4));
    }

    #[test]
    fn alias_same_root_disjoint() {
        let (f, loads) = setup();
        let m0 = MemLoc::of_inst(&f, loads[0]).unwrap();
        let m1 = MemLoc::of_inst(&f, loads[1]).unwrap();
        assert!(!may_alias(&f, &m0, &m1));
        assert!(may_alias(&f, &m0, &m0));
    }

    #[test]
    fn alias_distinct_noalias_params() {
        let (f, loads) = setup();
        let m0 = MemLoc::of_inst(&f, loads[0]).unwrap();
        let m2 = MemLoc::of_inst(&f, loads[2]).unwrap();
        assert!(!may_alias(&f, &m0, &m2));
    }

    #[test]
    fn alias_dynamic_vs_constant_same_base() {
        let (f, loads) = setup();
        // a[0] vs a[8i]: different roots, same noalias param → may alias.
        let m0 = MemLoc::of_inst(&f, loads[0]).unwrap();
        let m3 = MemLoc::of_inst(&f, loads[3]).unwrap();
        assert!(may_alias(&f, &m0, &m3));
    }

    #[test]
    fn ultimate_base_walks_chains() {
        let (f, loads) = setup();
        let m4 = MemLoc::of_inst(&f, loads[4]).unwrap();
        assert_eq!(m4.base, f.param(0));
    }
}
