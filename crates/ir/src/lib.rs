//! # snslp-ir
//!
//! The typed SSA intermediate representation underlying the SN-SLP
//! vectorizer — a from-scratch Rust reproduction of the compiler substrate
//! used by *Super-Node SLP: Optimized Vectorization for Code Sequences
//! Containing Operators and Their Inverse Elements* (CGO 2019).
//!
//! The IR mirrors the subset of LLVM IR that the SLP family of passes
//! actually manipulates:
//!
//! * scalar types `i32`/`i64`/`f32`/`f64`, fixed-width vectors, and raw
//!   pointers ([`types`]);
//! * arithmetic, comparison, memory, and vector-shuffle instructions,
//!   including a per-lane alternating binary op modelling the x86
//!   `addsub` family ([`inst`]);
//! * functions as instruction arenas with basic blocks and phis
//!   ([`function`]), an ergonomic [`FunctionBuilder`], and a
//!   round-trippable textual format ([`printer`], [`parser`]);
//! * a [`verifier`] (types + SSA dominance), memory [`analysis`]
//!   (address decomposition, adjacency, aliasing), and scalar cleanup
//!   passes ([`opt`]).
//!
//! # Examples
//!
//! Build `a[0] = b[0] + b[1]` and print it:
//!
//! ```
//! use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};
//!
//! let mut fb = FunctionBuilder::new(
//!     "sum2",
//!     vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
//!     Type::Void,
//! );
//! let (a, b) = (fb.func().param(0), fb.func().param(1));
//! let b0 = fb.load(ScalarType::F64, b);
//! let p1 = fb.ptradd_const(b, 8);
//! let b1 = fb.load(ScalarType::F64, p1);
//! let s = fb.add(b0, b1);
//! fb.store(a, s);
//! fb.ret(None);
//! let func = fb.finish();
//! snslp_ir::verify(&func)?;
//! println!("{func}");
//! # Ok::<(), snslp_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod builder;
pub mod content_hash;
pub mod function;
pub mod fxhash;
pub mod inst;
pub mod module;
pub mod opt;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verifier;

pub use analysis::{decompose_address, is_consecutive, may_alias, AddrExpr, MemLoc};
pub use builder::FunctionBuilder;
pub use content_hash::{stable_function_hash, stable_text_hash};
pub use function::{BlockData, Function, InstData, Param};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use inst::{
    BinOp, BlockId, CastKind, CmpPred, Constant, Direction, InstId, InstKind, OpFamily, UnOp,
};
pub use module::Module;
pub use parser::{parse_function_str, parse_module, ParseError};
pub use types::{ScalarType, Type, VectorType};
pub use verifier::{verify, VerifyError};
