//! Scalar cleanup passes run before vectorization (the "O3" baseline of
//! the paper's evaluation): per-block common-subexpression elimination,
//! constant folding, and algebraic simplification.
//!
//! CSE is also load-bearing for the vectorizer: it canonicalizes address
//! computations so that [`crate::analysis::decompose_address`] assigns the
//! same root to equal addresses.

use crate::function::Function;
use crate::fxhash::FxHashMap;
use crate::inst::{BinOp, CastKind, Constant, InstId, InstKind, UnOp};

/// A structural key identifying a pure instruction for CSE.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CseKey {
    Const(Constant),
    Binary(BinOp, InstId, InstId),
    Unary(UnOp, InstId),
    Cast(CastKind, InstId),
    PtrAdd(InstId, InstId),
    Cmp(crate::inst::CmpPred, InstId, InstId),
}

/// Resolves `id` through the remap table (path-compressing as it goes),
/// following chains created when a CSE representative is itself merged.
fn resolve(remap: &mut [InstId], id: InstId) -> InstId {
    let mut root = id;
    while remap[root.index()] != root {
        root = remap[root.index()];
    }
    let mut cur = id;
    while remap[cur.index()] != root {
        let next = remap[cur.index()];
        remap[cur.index()] = root;
        cur = next;
    }
    root
}

fn cse_key(f: &Function, id: InstId, remap: &mut [InstId]) -> Option<CseKey> {
    // Keys are built over *resolved* operands so that merging `a` with
    // `a'` immediately unifies the keys of their users within the same
    // sweep — value numbering instead of repeated rescans.
    Some(match f.kind(id) {
        InstKind::Const(c) => CseKey::Const(*c),
        InstKind::Binary { op, lhs, rhs } => {
            let (lhs, rhs) = (resolve(remap, *lhs), resolve(remap, *rhs));
            // Canonicalize commutative operand order for better hits.
            let (a, b) = if op.is_commutative() && rhs < lhs {
                (rhs, lhs)
            } else {
                (lhs, rhs)
            };
            CseKey::Binary(*op, a, b)
        }
        InstKind::Unary { op, operand } => CseKey::Unary(*op, resolve(remap, *operand)),
        InstKind::Cast { kind, operand } => CseKey::Cast(*kind, resolve(remap, *operand)),
        InstKind::PtrAdd { ptr, offset } => {
            CseKey::PtrAdd(resolve(remap, *ptr), resolve(remap, *offset))
        }
        InstKind::Cmp { pred, lhs, rhs } => {
            CseKey::Cmp(*pred, resolve(remap, *lhs), resolve(remap, *rhs))
        }
        _ => return None,
    })
}

/// Per-block common-subexpression elimination, iterated to a fixed point.
/// Each sweep is a value-numbering pass: operands are resolved through a
/// remap table while keying, so a merge exposes downstream duplicates
/// within the same sweep, and all operand rewrites are applied in one
/// batched pass at the end instead of one `replace_all_uses` walk per
/// elimination. The outer loop only re-runs for cross-block forward
/// references (defs in later blocks); straight-line code converges in one
/// sweep. Returns the number of instructions eliminated.
pub fn local_cse(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let n = local_cse_sweep(f);
        total += n;
        if n == 0 {
            return total;
        }
    }
}

fn local_cse_sweep(f: &mut Function) -> usize {
    let slots = f.num_inst_slots();
    let mut remap: Vec<InstId> = (0..slots as u32).map(InstId).collect();
    let mut dead: Vec<bool> = vec![false; slots];
    let mut eliminated = 0usize;
    for b in f.block_ids().collect::<Vec<_>>() {
        let mut seen: FxHashMap<CseKey, InstId> = FxHashMap::default();
        let ids: Vec<InstId> = f.block(b).insts().to_vec();
        for id in ids {
            if let Some(key) = cse_key(f, id, &mut remap) {
                match seen.get(&key) {
                    Some(&prev) => {
                        remap[id.index()] = prev;
                        dead[id.index()] = true;
                        eliminated += 1;
                    }
                    None => {
                        seen.insert(key, id);
                    }
                }
            }
        }
    }
    if eliminated == 0 {
        return 0;
    }
    for b in f.block_ids().collect::<Vec<_>>() {
        let ids: Vec<InstId> = f.block(b).insts().to_vec();
        for id in ids {
            f.kind_mut(id)
                .for_each_operand_mut(|o| *o = resolve(&mut remap, *o));
        }
        let keep: Vec<InstId> = f
            .block(b)
            .insts()
            .iter()
            .copied()
            .filter(|id| !dead[id.index()])
            .collect();
        f.set_block_insts(b, keep);
    }
    eliminated
}

fn fold_binary(op: BinOp, a: Constant, b: Constant) -> Option<Constant> {
    use Constant::*;
    Some(match (a, b) {
        (I32(x), I32(y)) => I32(fold_int(op, i64::from(x), i64::from(y))? as i32),
        (I64(x), I64(y)) => I64(fold_int(op, x, y)?),
        (F32(x), F32(y)) => F32(fold_float(op, f64::from(x), f64::from(y))? as f32),
        (F64(x), F64(y)) => F64(fold_float(op, x, y)?),
        _ => return None,
    })
}

fn fold_int(op: BinOp, x: i64, y: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
    })
}

fn fold_float(op: BinOp, x: f64, y: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        _ => return None,
    })
}

/// Constant folding plus algebraic identities (`x+0`, `x-0`, `x*1`, `x/1`,
/// `x*0` for integers). Returns the number of simplifications applied.
pub fn simplify(f: &mut Function) -> usize {
    let mut count = 0;
    for b in f.block_ids().collect::<Vec<_>>() {
        let ids: Vec<InstId> = f.block(b).insts().to_vec();
        for id in ids {
            let new_kind: Option<InstKind> = match f.kind(id) {
                InstKind::Binary { op, lhs, rhs } => {
                    let (op, lhs, rhs) = (*op, *lhs, *rhs);
                    let lc = as_const(f, lhs);
                    let rc = as_const(f, rhs);
                    match (lc, rc) {
                        (Some(a), Some(bc)) => fold_binary(op, a, bc).map(InstKind::Const),
                        _ => None,
                    }
                }
                InstKind::Unary {
                    op: UnOp::Neg,
                    operand,
                } => as_const(f, *operand).map(|c| {
                    InstKind::Const(match c {
                        Constant::I32(v) => Constant::I32(v.wrapping_neg()),
                        Constant::I64(v) => Constant::I64(v.wrapping_neg()),
                        Constant::F32(v) => Constant::F32(-v),
                        Constant::F64(v) => Constant::F64(-v),
                    })
                }),
                _ => None,
            };
            // Identity simplifications replace the instruction by an
            // existing value instead of rewriting the kind.
            if let InstKind::Binary { op, lhs, rhs } = *f.kind(id) {
                let lc = as_const(f, lhs);
                let rc = as_const(f, rhs);
                if lc.is_none() || rc.is_none() {
                    if let Some(v) = simplify_identity(f, op, lhs, rhs, rc, lc) {
                        f.replace_all_uses(id, v);
                        f.unlink_inst(b, id);
                        count += 1;
                        continue;
                    }
                }
            }
            if let Some(InstKind::Const(c)) = new_kind {
                *f.kind_mut(id) = InstKind::Const(c);
                count += 1;
            }
        }
    }
    count
}

/// If `lhs op rhs` is an identity, returns the surviving value.
fn simplify_identity(
    f: &Function,
    op: BinOp,
    lhs: InstId,
    rhs: InstId,
    rc: Option<Constant>,
    lc: Option<Constant>,
) -> Option<InstId> {
    let int = f.ty(lhs).elem_scalar().map(|s| s.is_int()).unwrap_or(false);
    match op {
        BinOp::Add => {
            if rc.map(|c| c.is_zero()).unwrap_or(false) && (int || !is_float_neg_zero(rc)) {
                return Some(lhs);
            }
            if lc.map(|c| c.is_zero()).unwrap_or(false) && (int || !is_float_neg_zero(lc)) {
                return Some(rhs);
            }
            None
        }
        BinOp::Sub => {
            if rc.map(|c| c.is_zero()).unwrap_or(false) && int {
                return Some(lhs);
            }
            None
        }
        BinOp::Mul => {
            if rc.map(|c| c.is_one()).unwrap_or(false) {
                return Some(lhs);
            }
            if lc.map(|c| c.is_one()).unwrap_or(false) {
                return Some(rhs);
            }
            None
        }
        BinOp::Div => {
            if rc.map(|c| c.is_one()).unwrap_or(false) {
                return Some(lhs);
            }
            None
        }
        _ => None,
    }
}

fn is_float_neg_zero(c: Option<Constant>) -> bool {
    match c {
        Some(Constant::F32(v)) => v == 0.0 && v.is_sign_negative(),
        Some(Constant::F64(v)) => v == 0.0 && v.is_sign_negative(),
        _ => false,
    }
}

fn as_const(f: &Function, id: InstId) -> Option<Constant> {
    match f.kind(id) {
        InstKind::Const(c) => Some(*c),
        _ => None,
    }
}

/// The standard pre-vectorization cleanup pipeline: simplify, CSE, DCE,
/// iterated to a fixed point. Returns total rewrites.
pub fn cleanup_pipeline(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let n = simplify(f) + local_cse(f) + f.remove_dead_code();
        total += n;
        if n == 0 {
            return total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::types::{ScalarType, Type};
    use crate::verifier::verify;

    #[test]
    fn cse_merges_duplicate_constants_and_ptradds() {
        let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let p1 = fb.ptradd_const(a, 8);
        let p2 = fb.ptradd_const(a, 8);
        let v1 = fb.load(ScalarType::F64, p1);
        let v2 = fb.load(ScalarType::F64, p2);
        let s = fb.add(v1, v2);
        fb.store(p1, s);
        fb.ret(None);
        let mut f = fb.finish();
        let before = f.num_linked_insts();
        let n = local_cse(&mut f);
        assert!(n >= 2, "two consts and two ptradds share keys: {n}");
        f.remove_dead_code();
        assert!(f.num_linked_insts() < before);
        verify(&f).unwrap();
    }

    #[test]
    fn cse_respects_commutativity() {
        let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let x = fb.load(ScalarType::I64, a);
        let p = fb.ptradd_const(a, 8);
        let y = fb.load(ScalarType::I64, p);
        let s1 = fb.add(x, y);
        let s2 = fb.add(y, x);
        let t = fb.mul(s1, s2);
        fb.store(a, t);
        fb.ret(None);
        let mut f = fb.finish();
        assert!(local_cse(&mut f) >= 1);
        verify(&f).unwrap();
    }

    #[test]
    fn folding_collapses_constant_trees() {
        let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let c1 = fb.const_i64(6);
        let c2 = fb.const_i64(7);
        let m = fb.mul(c1, c2);
        let p = fb.ptradd(a, m);
        let v = fb.load(ScalarType::F64, p);
        fb.store(a, v);
        fb.ret(None);
        let mut f = fb.finish();
        simplify(&mut f);
        match f.kind(m) {
            InstKind::Const(Constant::I64(42)) => {}
            k => panic!("expected folded 42, got {k:?}"),
        }
    }

    #[test]
    fn identities_simplify() {
        let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let x = fb.load(ScalarType::I64, a);
        let zero = fb.const_i64(0);
        let one = fb.const_i64(1);
        let t1 = fb.add(x, zero);
        let t2 = fb.mul(t1, one);
        let t3 = fb.sub(t2, zero);
        fb.store(a, t3);
        fb.ret(None);
        let mut f = fb.finish();
        let n = cleanup_pipeline(&mut f);
        assert!(n >= 3);
        verify(&f).unwrap();
        // The store now stores the load directly.
        let entry = f.entry();
        let store = *f.block(entry).insts().last().unwrap();
        let _ = store;
        let store_inst = f
            .block(entry)
            .insts()
            .iter()
            .find(|&&i| matches!(f.kind(i), InstKind::Store { .. }))
            .copied()
            .unwrap();
        match f.kind(store_inst) {
            InstKind::Store { value, .. } => assert_eq!(*value, x),
            _ => unreachable!(),
        }
    }

    #[test]
    fn float_add_zero_not_simplified_without_care() {
        // x + 0.0 is NOT an identity for -0.0 inputs... but our rule keeps
        // +0.0 folding since (-0.0) + 0.0 == 0.0 only differs in sign of
        // zero; we accept it like LLVM does under default FP. The rule we
        // must never apply is x + (-0.0)? That IS the identity. Here we
        // simply pin current behaviour: x + 0.0 simplifies, x - 0.0 (fp)
        // does not (sign of zero).
        let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let x = fb.load(ScalarType::F64, a);
        let zero = fb.const_f64(0.0);
        let t = fb.sub(x, zero);
        fb.store(a, t);
        fb.ret(None);
        let mut f = fb.finish();
        simplify(&mut f);
        // The fp sub survives.
        assert!(f
            .block(f.entry())
            .insts()
            .iter()
            .any(|&i| matches!(f.kind(i), InstKind::Binary { op: BinOp::Sub, .. })));
    }

    #[test]
    fn neg_of_constant_folds() {
        let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
        let a = fb.func().param(0);
        let c = fb.const_f64(2.5);
        let n = fb.neg(c);
        fb.store(a, n);
        fb.ret(None);
        let mut f = fb.finish();
        simplify(&mut f);
        match f.kind(n) {
            InstKind::Const(Constant::F64(v)) => assert_eq!(*v, -2.5),
            k => panic!("expected folded const, got {k:?}"),
        }
    }
}
