//! IR well-formedness checking: types, block structure, SSA dominance.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::function::Function;
#[cfg(test)]
use crate::inst::BinOp;
use crate::inst::{BlockId, InstId, InstKind, UnOp};
use crate::types::Type;

/// The list of violations found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// One message per violation.
    pub messages: Vec<String>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IR verification failed:")?;
        for m in &self.messages {
            writeln!(f, "  - {m}")?;
        }
        Ok(())
    }
}

impl Error for VerifyError {}

/// Computes the immediate dominator of every reachable block
/// (Cooper–Harvey–Kennedy). The entry block's idom is itself; unreachable
/// blocks get `None`.
pub fn dominators(f: &Function) -> Vec<Option<BlockId>> {
    let n = f.num_blocks();
    // Reverse postorder over the CFG.
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    let mut stack = vec![(f.entry(), 0usize)];
    visited[f.entry().index()] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = f
            .block(b)
            .insts()
            .last()
            .map(|&t| f.kind(t).successors())
            .unwrap_or_default();
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if !visited[s.index()] {
                visited[s.index()] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
    let mut rpo_num = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_num[b.index()] = i;
    }

    let preds = f.predecessors();
    let mut idom: Vec<Option<BlockId>> = vec![None; n];
    idom[f.entry().index()] = Some(f.entry());

    let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
        while a != b {
            while rpo_num[a.index()] > rpo_num[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while rpo_num[b.index()] > rpo_num[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new_idom: Option<BlockId> = None;
            for &p in &preds[b.index()] {
                if idom[p.index()].is_some() {
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
            }
            if new_idom.is_some() && idom[b.index()] != new_idom {
                idom[b.index()] = new_idom;
                changed = true;
            }
        }
    }
    idom
}

/// Whether block `a` dominates block `b` given an idom array.
pub fn block_dominates(idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
    let mut cur = b;
    loop {
        if cur == a {
            return true;
        }
        match idom[cur.index()] {
            Some(d) if d != cur => cur = d,
            _ => return false,
        }
    }
}

struct Checker<'f> {
    f: &'f Function,
    errors: Vec<String>,
}

impl Checker<'_> {
    fn err(&mut self, msg: String) {
        self.errors.push(msg);
    }

    fn check_types(&mut self, id: InstId) {
        let f = self.f;
        let data = f.inst(id);
        let ty = data.ty;
        let e = |c: &mut Self, m: String| c.err(format!("{id}: {m}"));
        match &data.kind {
            InstKind::Param(_) => {}
            InstKind::Const(c) => {
                if ty != Type::Scalar(c.scalar_type()) {
                    e(self, format!("const type mismatch: {ty}"));
                }
            }
            InstKind::Binary { op, lhs, rhs } => {
                if f.ty(*lhs) != ty || f.ty(*rhs) != ty {
                    e(
                        self,
                        format!(
                            "binary operand types {} / {} do not match result {ty}",
                            f.ty(*lhs),
                            f.ty(*rhs)
                        ),
                    );
                }
                match ty.elem_scalar() {
                    Some(st) => {
                        if op.is_int_only() && st.is_float() {
                            e(self, format!("{op} requires integer operands"));
                        }
                    }
                    None => e(self, format!("binary on non-numeric type {ty}")),
                }
            }
            InstKind::BinaryLanewise { ops, lhs, rhs } => match ty.as_vector() {
                Some(vt) => {
                    if ops.len() != vt.lanes as usize {
                        e(self, "lanewise op count != lane count".into());
                    }
                    if f.ty(*lhs) != ty || f.ty(*rhs) != ty {
                        e(self, "lanewise operand type mismatch".into());
                    }
                    if vt.elem.is_float() {
                        for op in ops.iter() {
                            if op.is_int_only() {
                                e(self, format!("{op} requires integer operands"));
                            }
                        }
                    }
                }
                None => e(self, "lanewise on non-vector".into()),
            },
            InstKind::Unary { op, operand } => {
                if f.ty(*operand) != ty {
                    e(self, "unary operand type mismatch".into());
                }
                match (op, ty.elem_scalar()) {
                    (UnOp::Not, Some(st)) if st.is_float() => {
                        e(self, "not requires integer operands".into())
                    }
                    (UnOp::Sqrt, Some(st)) if st.is_int() => {
                        e(self, "sqrt requires float operands".into())
                    }
                    (_, None) => e(self, "unary on non-numeric type".into()),
                    _ => {}
                }
            }
            InstKind::Cast { kind, operand } => {
                let from = f.ty(*operand);
                match (from.elem_scalar(), ty.elem_scalar()) {
                    (Some(fs), Some(ts)) => {
                        if !kind.valid_for(fs, ts) {
                            e(self, format!("cast {kind} invalid for {from} -> {ty}"));
                        }
                        let lanes = |t: Type| t.as_vector().map(|v| v.lanes);
                        if lanes(from) != lanes(ty) {
                            e(self, "cast lane count mismatch".into());
                        }
                    }
                    _ => e(self, "cast on non-numeric type".into()),
                }
            }
            InstKind::Cmp { lhs, rhs, .. } => {
                if f.ty(*lhs) != f.ty(*rhs) {
                    e(self, "cmp operand type mismatch".into());
                }
                let want = match f.ty(*lhs) {
                    Type::Vector(v) => Type::vector(crate::types::ScalarType::I32, v.lanes),
                    _ => Type::scalar(crate::types::ScalarType::I32),
                };
                if ty != want {
                    e(self, format!("cmp result must be {want}, got {ty}"));
                }
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                let cond_ok = match f.ty(*cond) {
                    // Scalar condition selects whole values.
                    Type::Scalar(crate::types::ScalarType::I32) => true,
                    // A vector i32 mask selects lane-wise; arms must be
                    // vectors of the same width.
                    Type::Vector(vc) => {
                        vc.elem == crate::types::ScalarType::I32
                            && ty.as_vector().map(|v| v.lanes) == Some(vc.lanes)
                    }
                    _ => false,
                };
                if !cond_ok {
                    e(
                        self,
                        "select condition must be i32 (or an i32 vector mask matching the arms)"
                            .into(),
                    );
                }
                if f.ty(*on_true) != ty || f.ty(*on_false) != ty {
                    e(self, "select arm type mismatch".into());
                }
            }
            InstKind::Load { ptr } => {
                if f.ty(*ptr) != Type::Ptr {
                    e(self, "load address must be ptr".into());
                }
                if !ty.is_value() || ty == Type::Ptr {
                    e(self, format!("load of unsupported type {ty}"));
                }
            }
            InstKind::Store { ptr, value } => {
                if f.ty(*ptr) != Type::Ptr {
                    e(self, "store address must be ptr".into());
                }
                if !f.ty(*value).is_value() {
                    e(self, "store of void value".into());
                }
                if ty != Type::Void {
                    e(self, "store produces no value".into());
                }
            }
            InstKind::PtrAdd { ptr, offset } => {
                if f.ty(*ptr) != Type::Ptr || ty != Type::Ptr {
                    e(self, "ptradd operates on ptr".into());
                }
                if f.ty(*offset) != Type::scalar(crate::types::ScalarType::I64) {
                    e(self, "ptradd offset must be i64".into());
                }
            }
            InstKind::Splat { value, lanes } => match ty.as_vector() {
                Some(vt) => {
                    if vt.lanes != *lanes || f.ty(*value) != Type::Scalar(vt.elem) {
                        e(self, "splat type mismatch".into());
                    }
                }
                None => e(self, "splat must produce a vector".into()),
            },
            InstKind::BuildVector { elems } => match ty.as_vector() {
                Some(vt) => {
                    if elems.len() != vt.lanes as usize {
                        e(self, "buildvec element count mismatch".into());
                    }
                    for &el in elems.iter() {
                        if f.ty(el) != Type::Scalar(vt.elem) {
                            e(self, "buildvec element type mismatch".into());
                        }
                    }
                }
                None => e(self, "buildvec must produce a vector".into()),
            },
            InstKind::ExtractElement { vector, lane } => match f.ty(*vector).as_vector() {
                Some(vt) => {
                    if *lane >= vt.lanes {
                        e(self, "extract lane out of range".into());
                    }
                    if ty != Type::Scalar(vt.elem) {
                        e(self, "extract result type mismatch".into());
                    }
                }
                None => e(self, "extract from non-vector".into()),
            },
            InstKind::InsertElement {
                vector,
                value,
                lane,
            } => match f.ty(*vector).as_vector() {
                Some(vt) => {
                    if *lane >= vt.lanes {
                        e(self, "insert lane out of range".into());
                    }
                    if f.ty(*value) != Type::Scalar(vt.elem) || ty != f.ty(*vector) {
                        e(self, "insert type mismatch".into());
                    }
                }
                None => e(self, "insert into non-vector".into()),
            },
            InstKind::Shuffle { a, b, mask } => {
                match (f.ty(*a).as_vector(), f.ty(*b).as_vector()) {
                    (Some(va), Some(vb)) => {
                        if va != vb {
                            e(self, "shuffle operands must have the same type".into());
                        }
                        let limit = va.lanes as usize * 2;
                        for &m in mask.iter() {
                            if (m as usize) >= limit {
                                e(self, "shuffle mask index out of range".into());
                            }
                        }
                        match ty.as_vector() {
                            Some(vr) => {
                                if vr.elem != va.elem || vr.lanes as usize != mask.len() {
                                    e(self, "shuffle result type mismatch".into());
                                }
                            }
                            None => e(self, "shuffle must produce a vector".into()),
                        }
                    }
                    _ => e(self, "shuffle on non-vectors".into()),
                }
            }
            InstKind::Phi { incoming } => {
                for (_, v) in incoming {
                    if f.ty(*v) != ty {
                        e(self, "phi incoming type mismatch".into());
                    }
                }
            }
            InstKind::Branch { cond, .. } => {
                if f.ty(*cond) != Type::scalar(crate::types::ScalarType::I32) {
                    e(self, "branch condition must be i32".into());
                }
            }
            InstKind::Jump { .. } => {}
            InstKind::Ret { value } => {
                let got = value.map(|v| f.ty(v)).unwrap_or(Type::Void);
                if got != f.ret_ty() {
                    e(
                        self,
                        format!("ret type {got} does not match function type {}", f.ret_ty()),
                    );
                }
            }
        }
    }
}

/// Verifies a function.
///
/// Checks block structure (single trailing terminator, leading phis, no
/// phis in the entry block, all blocks reachable), type correctness of
/// every instruction, phi/predecessor agreement, and SSA dominance of every
/// use by its definition.
///
/// # Errors
///
/// Returns all violations found (not just the first).
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    let mut c = Checker {
        f,
        errors: Vec::new(),
    };

    // Block structure.
    for b in f.block_ids() {
        let insts = f.block(b).insts();
        match insts.last() {
            None => c.err(format!("{b}: empty block")),
            Some(&t) => {
                if !f.kind(t).is_terminator() {
                    c.err(format!("{b}: does not end with a terminator"));
                }
            }
        }
        let mut seen_non_phi = false;
        for (i, &id) in insts.iter().enumerate() {
            let k = f.kind(id);
            if k.is_terminator() && i + 1 != insts.len() {
                c.err(format!("{b}: terminator {id} not at block end"));
            }
            match k {
                InstKind::Phi { .. } => {
                    if seen_non_phi {
                        c.err(format!("{b}: phi {id} after non-phi instruction"));
                    }
                    if b == f.entry() {
                        c.err(format!("entry block has phi {id}"));
                    }
                }
                InstKind::Param(_) => c.err(format!("{b}: param {id} linked into a block")),
                _ => seen_non_phi = true,
            }
        }
    }

    // Types.
    for b in f.block_ids() {
        for &id in f.block(b).insts() {
            c.check_types(id);
        }
    }

    // Phi edges match predecessors.
    let preds = f.predecessors();
    for b in f.block_ids() {
        for &id in f.block(b).insts() {
            if let InstKind::Phi { incoming } = f.kind(id) {
                let mut got: Vec<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                let mut want = preds[b.index()].clone();
                got.sort();
                want.sort();
                if got != want {
                    c.err(format!(
                        "{id}: phi predecessors {got:?} do not match CFG predecessors {want:?}"
                    ));
                }
            }
        }
    }

    // Reachability + dominance.
    let idom = dominators(f);
    for b in f.block_ids() {
        if idom[b.index()].is_none() {
            c.err(format!("{b}: unreachable block"));
        }
    }
    if c.errors.is_empty() {
        let positions: HashMap<InstId, (BlockId, usize)> = f.positions();
        let dominates = |def: InstId, use_block: BlockId, use_idx: usize| -> bool {
            match positions.get(&def) {
                // Params / detached values dominate everything.
                None => matches!(f.kind(def), InstKind::Param(_)),
                Some(&(db, di)) => {
                    if db == use_block {
                        di < use_idx
                    } else {
                        block_dominates(&idom, db, use_block)
                    }
                }
            }
        };
        for b in f.block_ids() {
            for (i, &id) in f.block(b).insts().iter().enumerate() {
                if let InstKind::Phi { incoming } = f.kind(id) {
                    for &(pred, v) in incoming {
                        let end = f.block(pred).insts().len();
                        if !dominates(v, pred, end) {
                            c.err(format!(
                                "{id}: phi operand {v} does not dominate edge from {pred}"
                            ));
                        }
                    }
                } else {
                    for op in f.kind(id).operands() {
                        if !dominates(op, b, i) {
                            c.err(format!("{id}: operand {op} does not dominate use"));
                        }
                    }
                }
            }
        }
    }

    if c.errors.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { messages: c.errors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::inst::Constant;
    use crate::types::ScalarType;

    fn loop_fn() -> Function {
        let mut fb = FunctionBuilder::new(
            "k",
            vec![
                Param::noalias_ptr("a"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let n = fb.func().param(1);
        fb.counted_loop(n, |fb, i| {
            let eight = fb.const_i64(8);
            let off = fb.mul(i, eight);
            let p = fb.ptradd(a, off);
            let v = fb.load(ScalarType::F64, p);
            let s = fb.add(v, v);
            fb.store(p, s);
        });
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn well_formed_loop_verifies() {
        verify(&loop_fn()).unwrap();
    }

    #[test]
    fn dominator_tree_of_loop() {
        let f = loop_fn();
        let idom = dominators(&f);
        // entry dominates loop; loop dominates exit.
        assert!(block_dominates(&idom, BlockId(0), BlockId(1)));
        assert!(block_dominates(&idom, BlockId(1), BlockId(2)));
        assert!(!block_dominates(&idom, BlockId(2), BlockId(1)));
    }

    #[test]
    fn detects_missing_terminator() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.entry();
        f.append_inst(
            entry,
            InstKind::Const(Constant::I32(0)),
            Type::scalar(ScalarType::I32),
        );
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("terminator"));
    }

    #[test]
    fn detects_type_mismatch() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.entry();
        let a = f.append_inst(
            entry,
            InstKind::Const(Constant::I32(1)),
            Type::scalar(ScalarType::I32),
        );
        let b = f.append_inst(
            entry,
            InstKind::Const(Constant::I64(1)),
            Type::scalar(ScalarType::I64),
        );
        let s = f.append_inst(
            entry,
            InstKind::Binary {
                op: BinOp::Add,
                lhs: a,
                rhs: b,
            },
            Type::scalar(ScalarType::I32),
        );
        f.append_inst(entry, InstKind::Ret { value: None }, Type::Void);
        // Keep s alive so DCE-style reasoning doesn't apply; verify directly.
        let _ = s;
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("binary operand types"));
    }

    #[test]
    fn detects_use_before_def_in_block() {
        let src = "func @f() -> void {
            entry:
              %s = add i64 %c, %c
              %c = const i64 1
              ret
            }";
        // The parser forbids forward refs outside phis, so build manually.
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.entry();
        let _ = src;
        let c = f.create_detached(
            InstKind::Const(Constant::I64(1)),
            Type::scalar(ScalarType::I64),
        );
        let s = f.append_inst(
            entry,
            InstKind::Binary {
                op: BinOp::Add,
                lhs: c,
                rhs: c,
            },
            Type::scalar(ScalarType::I64),
        );
        f.define_slot(
            c,
            entry,
            InstKind::Const(Constant::I64(1)),
            Type::scalar(ScalarType::I64),
        );
        let _ = s;
        f.append_inst(entry, InstKind::Ret { value: None }, Type::Void);
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("does not dominate"));
    }

    #[test]
    fn detects_int_only_op_on_floats() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.entry();
        let a = f.append_inst(
            entry,
            InstKind::Const(Constant::F32(1.0)),
            Type::scalar(ScalarType::F32),
        );
        f.append_inst(
            entry,
            InstKind::Binary {
                op: BinOp::Xor,
                lhs: a,
                rhs: a,
            },
            Type::scalar(ScalarType::F32),
        );
        f.append_inst(entry, InstKind::Ret { value: None }, Type::Void);
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("integer operands"));
    }

    #[test]
    fn detects_bad_phi_predecessors() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.entry();
        let other = f.add_block("other");
        let next = f.add_block("next");
        let c = f.append_inst(
            entry,
            InstKind::Const(Constant::I32(0)),
            Type::scalar(ScalarType::I32),
        );
        f.append_inst(entry, InstKind::Jump { target: next }, Type::Void);
        f.append_inst(other, InstKind::Jump { target: next }, Type::Void);
        f.append_inst(
            next,
            InstKind::Phi {
                incoming: vec![(entry, c)],
            },
            Type::scalar(ScalarType::I32),
        );
        f.append_inst(next, InstKind::Ret { value: None }, Type::Void);
        let err = verify(&f).unwrap_err();
        // `other` is unreachable AND the phi is inconsistent with preds.
        assert!(err.messages.iter().any(|m| m.contains("unreachable")));
    }

    #[test]
    fn vector_mask_select_rules() {
        use crate::builder::FunctionBuilder;
        use crate::function::Param;
        // Valid: i32x2 mask selecting between f64x2 arms.
        let mut fb = FunctionBuilder::new("v", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let vt = crate::types::VectorType::new(ScalarType::F64, 2);
        let a = fb.load_vector(vt, p);
        let m = fb.cmp(crate::inst::CmpPred::Lt, a, a);
        let s = fb.select(m, a, a);
        fb.store(p, s);
        fb.ret(None);
        verify(&fb.finish()).unwrap();

        // Invalid: mask lanes mismatch the arms.
        let mut f = Function::new("bad", vec![Param::noalias_ptr("p")], Type::Void);
        let entry = f.entry();
        let c = f.append_inst(
            entry,
            InstKind::Const(Constant::F64(1.0)),
            Type::scalar(ScalarType::F64),
        );
        let arms = f.append_inst(
            entry,
            InstKind::Splat { value: c, lanes: 2 },
            Type::vector(ScalarType::F64, 2),
        );
        let ci = f.append_inst(
            entry,
            InstKind::Const(Constant::I32(1)),
            Type::scalar(ScalarType::I32),
        );
        let mask4 = f.append_inst(
            entry,
            InstKind::Splat {
                value: ci,
                lanes: 4,
            },
            Type::vector(ScalarType::I32, 4),
        );
        f.append_inst(
            entry,
            InstKind::Select {
                cond: mask4,
                on_true: arms,
                on_false: arms,
            },
            Type::vector(ScalarType::F64, 2),
        );
        f.append_inst(entry, InstKind::Ret { value: None }, Type::Void);
        let err = verify(&f).unwrap_err();
        assert!(err.to_string().contains("select condition"));
    }
}
