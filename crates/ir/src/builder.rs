//! Ergonomic construction of IR functions.
//!
//! # Examples
//!
//! ```
//! use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};
//!
//! // a[0] = b[0] + b[1]
//! let mut fb = FunctionBuilder::new(
//!     "sum2",
//!     vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
//!     Type::Void,
//! );
//! let (a, b) = (fb.func().param(0), fb.func().param(1));
//! let b0 = fb.load(ScalarType::F64, b);
//! let p1 = fb.ptradd_const(b, 8);
//! let b1 = fb.load(ScalarType::F64, p1);
//! let s = fb.add(b0, b1);
//! fb.store(a, s);
//! fb.ret(None);
//! let func = fb.finish();
//! assert_eq!(func.name(), "sum2");
//! ```

use crate::function::{Function, Param};
use crate::inst::{BinOp, BlockId, CastKind, CmpPred, Constant, InstId, InstKind, UnOp};
use crate::types::{ScalarType, Type, VectorType};

/// Builds a [`Function`] incrementally, tracking a current insertion block.
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Starts building a function; the insertion point is the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Param>, ret_ty: Type) -> Self {
        let func = Function::new(name, params, ret_ty);
        let cur = func.entry();
        FunctionBuilder { func, cur }
    }

    /// Enables fast-math on the function (allows FP reassociation, which
    /// the vectorizer requires to form floating-point Super-Nodes).
    pub fn set_fast_math(&mut self, enabled: bool) -> &mut Self {
        self.func.fast_math = enabled;
        self
    }

    /// The function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Finishes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Creates a new block (does not switch to it).
    pub fn create_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Moves the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) -> &mut Self {
        self.cur = block;
        self
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    fn emit(&mut self, kind: InstKind, ty: Type) -> InstId {
        self.func.append_inst(self.cur, kind, ty)
    }

    /// Emits a scalar constant.
    pub fn constant(&mut self, c: Constant) -> InstId {
        let ty = Type::Scalar(c.scalar_type());
        self.emit(InstKind::Const(c), ty)
    }

    /// Emits an `i32` constant.
    pub fn const_i32(&mut self, v: i32) -> InstId {
        self.constant(Constant::I32(v))
    }

    /// Emits an `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> InstId {
        self.constant(Constant::I64(v))
    }

    /// Emits an `f32` constant.
    pub fn const_f32(&mut self, v: f32) -> InstId {
        self.constant(Constant::F32(v))
    }

    /// Emits an `f64` constant.
    pub fn const_f64(&mut self, v: f64) -> InstId {
        self.constant(Constant::F64(v))
    }

    /// Emits `lhs op rhs`; the result type is the type of `lhs`.
    pub fn binary(&mut self, op: BinOp, lhs: InstId, rhs: InstId) -> InstId {
        let ty = self.func.ty(lhs);
        self.emit(InstKind::Binary { op, lhs, rhs }, ty)
    }

    /// Emits an addition.
    pub fn add(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binary(BinOp::Add, lhs, rhs)
    }

    /// Emits a subtraction.
    pub fn sub(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binary(BinOp::Sub, lhs, rhs)
    }

    /// Emits a multiplication.
    pub fn mul(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binary(BinOp::Mul, lhs, rhs)
    }

    /// Emits a division.
    pub fn div(&mut self, lhs: InstId, rhs: InstId) -> InstId {
        self.binary(BinOp::Div, lhs, rhs)
    }

    /// Emits a vector instruction applying `ops[i]` on lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `lhs` is not a vector or `ops.len()` mismatches the lanes.
    pub fn binary_lanewise(&mut self, ops: Vec<BinOp>, lhs: InstId, rhs: InstId) -> InstId {
        let ty = self.func.ty(lhs);
        let vt = ty.as_vector().expect("binary_lanewise needs vectors");
        assert_eq!(ops.len(), vt.lanes as usize, "one op per lane");
        self.emit(
            InstKind::BinaryLanewise {
                ops: ops.into_boxed_slice(),
                lhs,
                rhs,
            },
            ty,
        )
    }

    /// Emits `op operand`.
    pub fn unary(&mut self, op: UnOp, operand: InstId) -> InstId {
        let ty = self.func.ty(operand);
        self.emit(InstKind::Unary { op, operand }, ty)
    }

    /// Emits a negation.
    pub fn neg(&mut self, operand: InstId) -> InstId {
        self.unary(UnOp::Neg, operand)
    }

    /// Emits a type conversion to scalar type `to` (lane-wise on
    /// vectors, preserving the lane count).
    pub fn cast(&mut self, kind: CastKind, to: ScalarType, operand: InstId) -> InstId {
        let ty = match self.func.ty(operand) {
            Type::Vector(v) => Type::vector(to, v.lanes),
            _ => Type::Scalar(to),
        };
        self.emit(InstKind::Cast { kind, operand }, ty)
    }

    /// Emits a comparison; scalar compares produce `i32`, vector compares a
    /// same-width `i32` vector mask.
    pub fn cmp(&mut self, pred: CmpPred, lhs: InstId, rhs: InstId) -> InstId {
        let ty = match self.func.ty(lhs) {
            Type::Vector(v) => Type::vector(ScalarType::I32, v.lanes),
            _ => Type::scalar(ScalarType::I32),
        };
        self.emit(InstKind::Cmp { pred, lhs, rhs }, ty)
    }

    /// Emits a select.
    pub fn select(&mut self, cond: InstId, on_true: InstId, on_false: InstId) -> InstId {
        let ty = self.func.ty(on_true);
        self.emit(
            InstKind::Select {
                cond,
                on_true,
                on_false,
            },
            ty,
        )
    }

    /// Emits a scalar load of type `ty` from `ptr`.
    pub fn load(&mut self, ty: ScalarType, ptr: InstId) -> InstId {
        self.emit(InstKind::Load { ptr }, Type::Scalar(ty))
    }

    /// Emits a vector load of type `vt` from `ptr`.
    pub fn load_vector(&mut self, vt: VectorType, ptr: InstId) -> InstId {
        self.emit(InstKind::Load { ptr }, Type::Vector(vt))
    }

    /// Emits a store of `value` to `ptr`.
    pub fn store(&mut self, ptr: InstId, value: InstId) -> InstId {
        self.emit(InstKind::Store { ptr, value }, Type::Void)
    }

    /// Emits `ptr + offset` where `offset` is an `i64` value.
    pub fn ptradd(&mut self, ptr: InstId, offset: InstId) -> InstId {
        self.emit(InstKind::PtrAdd { ptr, offset }, Type::Ptr)
    }

    /// Emits `ptr + constant-bytes`, materializing the offset constant.
    pub fn ptradd_const(&mut self, ptr: InstId, offset: i64) -> InstId {
        let off = self.const_i64(offset);
        self.ptradd(ptr, off)
    }

    /// Emits a splat of `value` across `lanes` lanes.
    pub fn splat(&mut self, value: InstId, lanes: u8) -> InstId {
        let st = self
            .func
            .ty(value)
            .as_scalar()
            .expect("splat needs a scalar");
        self.emit(InstKind::Splat { value, lanes }, Type::vector(st, lanes))
    }

    /// Emits a build-vector from scalar elements.
    ///
    /// # Panics
    ///
    /// Panics if `elems` has fewer than 2 elements or mixed element types.
    pub fn build_vector(&mut self, elems: Vec<InstId>) -> InstId {
        assert!(elems.len() >= 2, "vectors need at least 2 lanes");
        let st = self
            .func
            .ty(elems[0])
            .as_scalar()
            .expect("build_vector needs scalars");
        for &e in &elems[1..] {
            assert_eq!(self.func.ty(e), Type::Scalar(st), "mixed element types");
        }
        let lanes = elems.len() as u8;
        self.emit(
            InstKind::BuildVector {
                elems: elems.into_boxed_slice(),
            },
            Type::vector(st, lanes),
        )
    }

    /// Emits an element extract.
    pub fn extract(&mut self, vector: InstId, lane: u8) -> InstId {
        let vt = self
            .func
            .ty(vector)
            .as_vector()
            .expect("extract needs a vector");
        assert!(lane < vt.lanes, "lane out of range");
        self.emit(
            InstKind::ExtractElement { vector, lane },
            Type::Scalar(vt.elem),
        )
    }

    /// Emits an element insert.
    pub fn insert(&mut self, vector: InstId, value: InstId, lane: u8) -> InstId {
        let ty = self.func.ty(vector);
        self.emit(
            InstKind::InsertElement {
                vector,
                value,
                lane,
            },
            ty,
        )
    }

    /// Emits a shuffle of `a` and `b` with the given mask.
    pub fn shuffle(&mut self, a: InstId, b: InstId, mask: Vec<u8>) -> InstId {
        let vt = self.func.ty(a).as_vector().expect("shuffle needs vectors");
        let lanes = mask.len() as u8;
        self.emit(
            InstKind::Shuffle {
                a,
                b,
                mask: mask.into_boxed_slice(),
            },
            Type::vector(vt.elem, lanes),
        )
    }

    /// Emits an (initially empty) phi of type `ty`; add edges with
    /// [`FunctionBuilder::add_phi_incoming`].
    pub fn phi(&mut self, ty: Type) -> InstId {
        self.emit(
            InstKind::Phi {
                incoming: Vec::new(),
            },
            ty,
        )
    }

    /// Adds an incoming edge to a phi created by [`FunctionBuilder::phi`].
    ///
    /// # Panics
    ///
    /// Panics if `phi` is not a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: InstId, block: BlockId, value: InstId) {
        match self.func.kind_mut(phi) {
            InstKind::Phi { incoming } => incoming.push((block, value)),
            _ => panic!("not a phi"),
        }
    }

    /// Emits an unconditional jump.
    pub fn jump(&mut self, target: BlockId) -> InstId {
        self.emit(InstKind::Jump { target }, Type::Void)
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, cond: InstId, on_true: BlockId, on_false: BlockId) -> InstId {
        self.emit(
            InstKind::Branch {
                cond,
                on_true,
                on_false,
            },
            Type::Void,
        )
    }

    /// Emits a return.
    pub fn ret(&mut self, value: Option<InstId>) -> InstId {
        self.emit(InstKind::Ret { value }, Type::Void)
    }

    /// Convenience: builds a canonical counted loop
    /// `for i in 0..n { body(i) }`.
    ///
    /// Calls `body(&mut builder, i)` with the insertion point inside the
    /// loop body; after this returns, the insertion point is the exit
    /// block. `n` must be an `i64` value available in the current block.
    pub fn counted_loop(&mut self, n: InstId, body: impl FnOnce(&mut Self, InstId)) {
        let preheader = self.cur;
        let header = self.create_block("loop");
        let exit = self.create_block("exit");

        let zero = self.const_i64(0);
        self.jump(header);

        self.switch_to(header);
        let i = self.phi(Type::scalar(ScalarType::I64));
        self.add_phi_incoming(i, preheader, zero);

        body(self, i);
        // The body may have moved the insertion point (e.g. nested loops);
        // the latch is wherever it ended.
        let one = self.const_i64(1);
        let inext = self.add(i, one);
        let latch = self.cur;
        self.add_phi_incoming(i, latch, inext);
        let cont = self.cmp(CmpPred::Lt, inext, n);
        self.branch(cont, header, exit);

        self.switch_to(exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_straight_line() {
        let mut fb = FunctionBuilder::new(
            "f",
            vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
            Type::Void,
        );
        let a = fb.func().param(0);
        let b = fb.func().param(1);
        let x = fb.load(ScalarType::F64, b);
        let y = fb.load(ScalarType::F64, a);
        let s = fb.sub(x, y);
        fb.store(a, s);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(f.num_linked_insts(), 5);
        assert_eq!(f.ty(s), Type::scalar(ScalarType::F64));
    }

    #[test]
    fn build_counted_loop() {
        let mut fb = FunctionBuilder::new(
            "loopy",
            vec![
                Param::noalias_ptr("a"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let n = fb.func().param(1);
        fb.counted_loop(n, |fb, i| {
            let eight = fb.const_i64(8);
            let off = fb.mul(i, eight);
            let p = fb.ptradd(a, off);
            let v = fb.load(ScalarType::F64, p);
            let s = fb.add(v, v);
            fb.store(p, s);
        });
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(f.num_blocks(), 3);
        // Loop header has a phi with two incoming edges.
        let header = BlockId(1);
        let phi = f.block(header).insts()[0];
        match f.kind(phi) {
            InstKind::Phi { incoming } => assert_eq!(incoming.len(), 2),
            k => panic!("expected phi, got {k:?}"),
        }
    }

    #[test]
    fn vector_builders_type_correctly() {
        let mut fb = FunctionBuilder::new("v", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F32, p);
        let v = fb.splat(x, 4);
        assert_eq!(fb.func().ty(v), Type::vector(ScalarType::F32, 4));
        let e = fb.extract(v, 3);
        assert_eq!(fb.func().ty(e), Type::scalar(ScalarType::F32));
        let bv = fb.build_vector(vec![x, e]);
        assert_eq!(fb.func().ty(bv), Type::vector(ScalarType::F32, 2));
        let sh = fb.shuffle(bv, bv, vec![1, 0]);
        assert_eq!(fb.func().ty(sh), Type::vector(ScalarType::F32, 2));
        let lw = fb.binary_lanewise(vec![BinOp::Add, BinOp::Sub], bv, sh);
        assert_eq!(fb.func().ty(lw), Type::vector(ScalarType::F32, 2));
    }

    #[test]
    #[should_panic(expected = "one op per lane")]
    fn lanewise_arity_checked() {
        let mut fb = FunctionBuilder::new("v", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F32, p);
        let v = fb.splat(x, 4);
        let _ = fb.binary_lanewise(vec![BinOp::Add], v, v);
    }
}
