//! Stable content hashing of functions and module text.
//!
//! The compile service (`snslpd`) keys its artifact cache by *what a
//! function is*, not where it came from: two submissions whose parsed
//! bodies print identically must map to the same cache slot, across
//! requests, connections and server threads. The canonical form already
//! exists — the [`printer`](crate::printer) output is deterministic and
//! round-trips through the parser — so the content hash is an FxHash of
//! the printed text, widened to 128 bits by a second differently-seeded
//! pass so accidental collisions are out of reach at cache scale.
//!
//! [`FxHasher`](crate::fxhash::FxHasher) has no per-process random seed
//! (unlike SipHash in `std`), so these hashes are stable across processes
//! and platforms of the same endianness-independent byte stream.

use std::hash::Hasher;

use crate::function::Function;
use crate::fxhash::FxHasher;

/// Seed for the second 64-bit lane of the 128-bit digest (splitmix64's
/// increment constant — any odd constant distinct from the first pass'
/// implicit zero seed works).
const LANE2_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// 128-bit stable hash of arbitrary text (two independent FxHash passes).
///
/// Used for whole-request memoization: the service hashes the raw module
/// text of a request before parsing anything, so an exact resubmission is
/// answered without touching the parser or the pass.
pub fn stable_text_hash(text: &str) -> u128 {
    let mut lo = FxHasher::default();
    lo.write(text.as_bytes());
    let mut hi = FxHasher::default();
    hi.write_u64(LANE2_SEED);
    hi.write(text.as_bytes());
    (u128::from(hi.finish()) << 64) | u128::from(lo.finish())
}

/// 128-bit stable hash of a function's canonical printed form.
///
/// The hash covers everything compilation depends on: the function name,
/// parameter list (including `noalias`), return type, the `fastmath`
/// flag, and every instruction of every block in printed order. Two
/// functions hash equal iff they print identically, which (by the
/// printer/parser round-trip invariant) means they are the same function.
pub fn stable_function_hash(f: &Function) -> u128 {
    stable_text_hash(&f.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Param;
    use crate::parser::parse_function_str;
    use crate::types::{ScalarType, Type};

    fn sample(name: &str, k: i64) -> Function {
        let mut fb = FunctionBuilder::new(name, vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let v = fb.load(ScalarType::I64, p);
        let c = fb.const_i64(k);
        let s = fb.add(v, c);
        fb.store(p, s);
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn equal_functions_hash_equal() {
        assert_eq!(
            stable_function_hash(&sample("f", 3)),
            stable_function_hash(&sample("f", 3))
        );
    }

    #[test]
    fn body_and_name_changes_change_the_hash() {
        let base = stable_function_hash(&sample("f", 3));
        assert_ne!(base, stable_function_hash(&sample("f", 4)));
        assert_ne!(base, stable_function_hash(&sample("g", 3)));
    }

    #[test]
    fn hash_survives_a_parse_round_trip() {
        let f = sample("f", 7);
        let reparsed = parse_function_str(&f.to_string()).unwrap();
        assert_eq!(stable_function_hash(&f), stable_function_hash(&reparsed));
    }

    #[test]
    fn text_hash_lanes_are_independent() {
        let h = stable_text_hash("func @x() -> void { entry: ret }");
        assert_ne!((h >> 64) as u64, h as u64);
        assert_ne!(stable_text_hash("a"), stable_text_hash("b"));
        // Tail-length discrimination from FxHasher carries through.
        assert_ne!(stable_text_hash("ab"), stable_text_hash("ab\0"));
    }
}
