//! Parser robustness: arbitrary input must produce a clean `ParseError`,
//! never a panic; and anything the printer emits must reparse.
//!
//! Compiled only with `--features proptest` (and `proptest = "1"` added to
//! `[dev-dependencies]`) so the default workspace builds offline.
#![cfg(feature = "proptest")]

use proptest::prelude::*;
use snslp_ir::{parse_module, FunctionBuilder, Param, ScalarType, Type};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the lexer/parser.
    #[test]
    fn arbitrary_input_never_panics(src in ".{0,200}") {
        let _ = parse_module(&src);
    }

    /// Arbitrary token-shaped soup never panics either.
    #[test]
    fn token_soup_never_panics(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("func".to_string()),
                Just("@f".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("->".to_string()),
                Just("void".to_string()),
                Just("entry:".to_string()),
                Just("%x".to_string()),
                Just("=".to_string()),
                Just("add".to_string()),
                Just("load".to_string()),
                Just("store".to_string()),
                Just("i64".to_string()),
                Just("f64x2".to_string()),
                Just("ret".to_string()),
                Just(",".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just("1.5".to_string()),
                Just("-3".to_string()),
                Just("phi".to_string()),
                Just("cast".to_string()),
                Just("sitofp".to_string()),
            ],
            0..40,
        )
    ) {
        let src = toks.join(" ");
        let _ = parse_module(&src);
    }

    /// Printer output always reparses (round-trip totality for a family
    /// of generated functions covering every instruction former).
    #[test]
    fn generated_functions_round_trip(ops in proptest::collection::vec(0u8..8, 1..20)) {
        let mut fb = FunctionBuilder::new(
            "gen",
            vec![
                Param::noalias_ptr("p"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let p = fb.func().param(0);
        let mut vals = vec![fb.load(ScalarType::F32, p)];
        for (i, &op) in ops.iter().enumerate() {
            let last = *vals.last().unwrap();
            let v = match op {
                0 => fb.add(last, last),
                1 => fb.sub(last, last),
                2 => fb.mul(last, last),
                3 => fb.neg(last),
                4 => {
                    let q = fb.ptradd_const(p, 4 * (i as i64 + 1));
                    fb.load(ScalarType::F32, q)
                }
                5 => {
                    let s = fb.splat(last, 4);
                    fb.extract(s, 3)
                }
                6 => {
                    let c = fb.cmp(snslp_ir::CmpPred::Lt, last, last);
                    fb.select(c, last, last)
                }
                _ => fb.cast(
                    snslp_ir::CastKind::Fptosi,
                    ScalarType::I32,
                    last,
                ),
            };
            // Keep types uniform: convert back to f32 after a cast.
            let v = if fb.func().ty(v) == Type::scalar(ScalarType::I32) {
                fb.cast(snslp_ir::CastKind::Sitofp, ScalarType::F32, v)
            } else {
                v
            };
            vals.push(v);
        }
        let last = *vals.last().unwrap();
        fb.store(p, last);
        fb.ret(None);
        let f = fb.finish();
        snslp_ir::verify(&f).unwrap();
        let text = f.to_string();
        let f2 = snslp_ir::parse_function_str(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(f2.num_linked_insts(), f.num_linked_insts());
        snslp_ir::verify(&f2).unwrap();
    }
}
