//! Differential testing: run two versions of a function (e.g. scalar
//! original vs vectorized) on identical inputs and compare all observable
//! effects.
//!
//! Because the vectorizer reassociates floating-point expressions under
//! fast-math (exactly as `-ffast-math` allows the paper's LLVM
//! implementation to), float results are compared with a small relative
//! tolerance rather than bit-exactly.

use snslp_cost::CostModel;
use snslp_ir::Function;

use crate::exec::{run, ExecError, ExecOptions, ExecResult};
use crate::memory::Memory;
use crate::value::Value;

/// Describes one argument for [`run_with_args`]: either an array that is
/// materialized in memory and passed as a pointer, or a plain scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// An `f64` array passed by pointer.
    F64Array(Vec<f64>),
    /// An `f32` array passed by pointer.
    F32Array(Vec<f32>),
    /// An `i32` array passed by pointer.
    I32Array(Vec<i32>),
    /// An `i64` array passed by pointer.
    I64Array(Vec<i64>),
    /// A scalar `i64`.
    I64(i64),
    /// A scalar `i32`.
    I32(i32),
    /// A scalar `f64`.
    F64(f64),
    /// A scalar `f32`.
    F32(f32),
}

/// Array contents read back after execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    /// `f64` contents.
    F64(Vec<f64>),
    /// `f32` contents.
    F32(Vec<f32>),
    /// `i32` contents.
    I32(Vec<i32>),
    /// `i64` contents.
    I64(Vec<i64>),
}

/// Result of [`run_with_args`]: the execution result plus the final
/// contents of every array argument (in argument order).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Interpreter result (return value, cycles, dynamic instructions).
    pub exec: ExecResult,
    /// Final contents of each array argument.
    pub arrays: Vec<ArrayData>,
}

/// Parses the `INPUTS:` dialect shared by the `.snir` filecheck fixtures
/// and `snslpc --run`: whitespace-separated tokens, `ty[v,v,...]` for
/// arrays and `ty:v` for scalars, where `ty` is one of `i64`, `i32`,
/// `f64`, `f32` (e.g. `f64[1.5,2.5] i64:3`).
///
/// # Errors
///
/// Returns a description of the first malformed token.
pub fn parse_inputs_line(spec: &str) -> Result<Vec<ArgSpec>, String> {
    fn scalar<T: std::str::FromStr>(v: &str, tok: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("bad number in input token `{tok}`"))
    }
    fn nums<T: std::str::FromStr>(items: &str, tok: &str) -> Result<Vec<T>, String> {
        items
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .map_err(|_| format!("bad number `{v}` in input token `{tok}`"))
            })
            .collect()
    }
    spec.split_whitespace()
        .map(|tok| {
            if let Some((ty, rest)) = tok.split_once('[') {
                let items = rest.trim_end_matches(']');
                match ty {
                    "i64" => Ok(ArgSpec::I64Array(nums(items, tok)?)),
                    "i32" => Ok(ArgSpec::I32Array(nums(items, tok)?)),
                    "f64" => Ok(ArgSpec::F64Array(nums(items, tok)?)),
                    "f32" => Ok(ArgSpec::F32Array(nums(items, tok)?)),
                    other => Err(format!("unknown input array type `{other}`")),
                }
            } else if let Some((ty, v)) = tok.split_once(':') {
                match ty {
                    "i64" => Ok(ArgSpec::I64(scalar(v, tok)?)),
                    "i32" => Ok(ArgSpec::I32(scalar(v, tok)?)),
                    "f64" => Ok(ArgSpec::F64(scalar(v, tok)?)),
                    "f32" => Ok(ArgSpec::F32(scalar(v, tok)?)),
                    other => Err(format!("unknown input scalar type `{other}`")),
                }
            } else {
                Err(format!("bad input token `{tok}`"))
            }
        })
        .collect()
}

/// Materializes `args` in a fresh memory, runs `f`, and reads the arrays
/// back.
///
/// # Errors
///
/// Propagates any [`ExecError`] from the interpreter.
pub fn run_with_args(
    f: &Function,
    args: &[ArgSpec],
    model: &CostModel,
    opts: &ExecOptions,
) -> Result<RunOutcome, ExecError> {
    let mut mem = Memory::new();
    let mut values = Vec::with_capacity(args.len());
    let mut array_locs: Vec<Option<(u64, &ArgSpec)>> = Vec::with_capacity(args.len());
    for a in args {
        match a {
            ArgSpec::F64Array(d) => {
                let base = mem.alloc_slice_f64(d);
                values.push(Value::Ptr(base));
                array_locs.push(Some((base, a)));
            }
            ArgSpec::F32Array(d) => {
                let base = mem.alloc_slice_f32(d);
                values.push(Value::Ptr(base));
                array_locs.push(Some((base, a)));
            }
            ArgSpec::I32Array(d) => {
                let base = mem.alloc_slice_i32(d);
                values.push(Value::Ptr(base));
                array_locs.push(Some((base, a)));
            }
            ArgSpec::I64Array(d) => {
                let base = mem.alloc_slice_i64(d);
                values.push(Value::Ptr(base));
                array_locs.push(Some((base, a)));
            }
            ArgSpec::I64(v) => {
                values.push(Value::I64(*v));
                array_locs.push(None);
            }
            ArgSpec::I32(v) => {
                values.push(Value::I32(*v));
                array_locs.push(None);
            }
            ArgSpec::F64(v) => {
                values.push(Value::F64(*v));
                array_locs.push(None);
            }
            ArgSpec::F32(v) => {
                values.push(Value::F32(*v));
                array_locs.push(None);
            }
        }
    }
    let exec = run(f, &values, &mut mem, model, opts)?;
    let arrays = array_locs
        .into_iter()
        .flatten()
        .map(|(base, spec)| match spec {
            ArgSpec::F64Array(d) => ArrayData::F64(mem.read_slice_f64(base, d.len())),
            ArgSpec::F32Array(d) => ArrayData::F32(mem.read_slice_f32(base, d.len())),
            ArgSpec::I32Array(d) => ArrayData::I32(mem.read_slice_i32(base, d.len())),
            ArgSpec::I64Array(d) => ArrayData::I64(mem.read_slice_i64(base, d.len())),
            _ => unreachable!(),
        })
        .collect();
    Ok(RunOutcome { exec, arrays })
}

fn f64_close(a: f64, b: f64, rel: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

/// Compares two outcomes; returns a description of the first mismatch.
///
/// Floats are compared with relative tolerance `1e-9` (`f64`) / `1e-4`
/// (`f32`); integers exactly.
pub fn outcomes_match(a: &RunOutcome, b: &RunOutcome) -> Result<(), String> {
    match (&a.exec.ret, &b.exec.ret) {
        (None, None) => {}
        (Some(x), Some(y)) => {
            let ok = match (x, y) {
                (Value::F64(p), Value::F64(q)) => f64_close(*p, *q, 1e-9),
                (Value::F32(p), Value::F32(q)) => f64_close(f64::from(*p), f64::from(*q), 1e-4),
                _ => x == y,
            };
            if !ok {
                return Err(format!("return values differ: {x} vs {y}"));
            }
        }
        (x, y) => return Err(format!("return presence differs: {x:?} vs {y:?}")),
    }
    if a.arrays.len() != b.arrays.len() {
        return Err("different number of array arguments".into());
    }
    for (i, (x, y)) in a.arrays.iter().zip(&b.arrays).enumerate() {
        let ok = match (x, y) {
            (ArrayData::F64(p), ArrayData::F64(q)) => {
                p.len() == q.len() && p.iter().zip(q).all(|(&u, &v)| f64_close(u, v, 1e-9))
            }
            (ArrayData::F32(p), ArrayData::F32(q)) => {
                p.len() == q.len()
                    && p.iter()
                        .zip(q)
                        .all(|(&u, &v)| f64_close(f64::from(u), f64::from(v), 1e-4))
            }
            (x, y) => x == y,
        };
        if !ok {
            return Err(format!(
                "array argument {i} differs:\n  a = {x:?}\n  b = {y:?}"
            ));
        }
    }
    Ok(())
}

/// Runs `original` and `transformed` on the same inputs and checks they
/// behave identically. Returns both outcomes (for cycle comparisons).
///
/// # Errors
///
/// Returns a description if either execution fails or the results differ.
pub fn check_equivalent(
    original: &Function,
    transformed: &Function,
    args: &[ArgSpec],
    model: &CostModel,
) -> Result<(RunOutcome, RunOutcome), String> {
    let opts = ExecOptions::default();
    let a =
        run_with_args(original, args, model, &opts).map_err(|e| format!("original failed: {e}"))?;
    let b = run_with_args(transformed, args, model, &opts)
        .map_err(|e| format!("transformed failed: {e}"))?;
    outcomes_match(&a, &b)?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::TargetDesc;
    use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};

    fn model() -> CostModel {
        CostModel::new(TargetDesc::sse2_like())
    }

    fn scale_fn(factor: f64) -> Function {
        let mut fb = FunctionBuilder::new(
            "scale",
            vec![
                Param::noalias_ptr("a"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let n = fb.func().param(1);
        fb.counted_loop(n, |fb, i| {
            let eight = fb.const_i64(8);
            let off = fb.mul(i, eight);
            let p = fb.ptradd(a, off);
            let v = fb.load(ScalarType::F64, p);
            let c = fb.const_f64(factor);
            let s = fb.mul(v, c);
            fb.store(p, s);
        });
        fb.ret(None);
        fb.finish()
    }

    #[test]
    fn inputs_line_round_trips() {
        let args = parse_inputs_line("i64[0,0] f64[1.5,2.5] i64:3 f32:0.5 i32[7] i32:-2").unwrap();
        assert_eq!(
            args,
            vec![
                ArgSpec::I64Array(vec![0, 0]),
                ArgSpec::F64Array(vec![1.5, 2.5]),
                ArgSpec::I64(3),
                ArgSpec::F32(0.5),
                ArgSpec::I32Array(vec![7]),
                ArgSpec::I32(-2),
            ]
        );
        assert!(parse_inputs_line("u8[1]").is_err());
        assert!(parse_inputs_line("i64:x").is_err());
        assert!(parse_inputs_line("naked").is_err());
        assert!(parse_inputs_line("i64[1,zap]").is_err());
        assert!(parse_inputs_line("").unwrap().is_empty());
    }

    #[test]
    fn identical_functions_match() {
        let f = scale_fn(3.0);
        let g = scale_fn(3.0);
        let data: Vec<f64> = (0..16).map(|i| i as f64 * 0.25).collect();
        let args = vec![ArgSpec::F64Array(data), ArgSpec::I64(16)];
        check_equivalent(&f, &g, &args, &model()).unwrap();
    }

    #[test]
    fn different_functions_mismatch() {
        let f = scale_fn(3.0);
        let g = scale_fn(4.0);
        let data: Vec<f64> = (1..9).map(|i| i as f64).collect();
        let args = vec![ArgSpec::F64Array(data), ArgSpec::I64(8)];
        let err = check_equivalent(&f, &g, &args, &model()).unwrap_err();
        assert!(err.contains("array argument 0 differs"));
    }

    #[test]
    fn tolerance_accepts_reassociation_noise() {
        let a = RunOutcome {
            exec: crate::exec::ExecResult {
                function: "t".to_string(),
                ret: Some(Value::F64(0.1 + 0.2)),
                cycles: 0,
                dyn_insts: 0,
                profile: Default::default(),
            },
            arrays: vec![],
        };
        let b = RunOutcome {
            exec: crate::exec::ExecResult {
                function: "t".to_string(),
                ret: Some(Value::F64(0.3)),
                cycles: 99,
                dyn_insts: 5,
                profile: Default::default(),
            },
            arrays: vec![],
        };
        outcomes_match(&a, &b).unwrap();
    }

    #[test]
    fn integer_arrays_compared_exactly() {
        let a = RunOutcome {
            exec: crate::exec::ExecResult {
                function: "t".to_string(),
                ret: None,
                cycles: 0,
                dyn_insts: 0,
                profile: Default::default(),
            },
            arrays: vec![ArrayData::I64(vec![1, 2, 3])],
        };
        let mut b = a.clone();
        outcomes_match(&a, &b).unwrap();
        if let ArrayData::I64(v) = &mut b.arrays[0] {
            v[2] = 4;
        }
        assert!(outcomes_match(&a, &b).is_err());
    }
}
