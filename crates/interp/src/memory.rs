//! Flat byte-addressable memory for the interpreter.

use snslp_ir::{ScalarType, Type};

use crate::exec::{ExecError, Trap};
use crate::value::Value;

/// A flat, bounds-checked byte memory. Address 0 is reserved (acts as a
/// null page) so that valid allocations never start at 0.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    bytes: Vec<u8>,
}

const ALIGN: u64 = 64;

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory {
            bytes: vec![0; ALIGN as usize],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Raw mutable access to the full backing store. Used by the native
    /// JIT backend, which performs its own bounds checks against
    /// [`Memory::size`] and honors the same reserved null page.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Allocates `size` zeroed bytes, returning the base address
    /// (64-byte aligned).
    pub fn alloc(&mut self, size: u64) -> u64 {
        let base = (self.bytes.len() as u64).next_multiple_of(ALIGN);
        self.bytes.resize((base + size.max(1)) as usize, 0);
        base
    }

    /// Allocates and initializes a typed array, returning its base address.
    pub fn alloc_slice_f64(&mut self, data: &[f64]) -> u64 {
        let base = self.alloc(8 * data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.write_bytes(base + 8 * i as u64, &v.to_le_bytes())
                .unwrap();
        }
        base
    }

    /// Allocates and initializes an `f32` array.
    pub fn alloc_slice_f32(&mut self, data: &[f32]) -> u64 {
        let base = self.alloc(4 * data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.write_bytes(base + 4 * i as u64, &v.to_le_bytes())
                .unwrap();
        }
        base
    }

    /// Allocates and initializes an `i32` array.
    pub fn alloc_slice_i32(&mut self, data: &[i32]) -> u64 {
        let base = self.alloc(4 * data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.write_bytes(base + 4 * i as u64, &v.to_le_bytes())
                .unwrap();
        }
        base
    }

    /// Allocates and initializes an `i64` array.
    pub fn alloc_slice_i64(&mut self, data: &[i64]) -> u64 {
        let base = self.alloc(8 * data.len() as u64);
        for (i, &v) in data.iter().enumerate() {
            self.write_bytes(base + 8 * i as u64, &v.to_le_bytes())
                .unwrap();
        }
        base
    }

    /// Reads back an `f64` array.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (test helper).
    pub fn read_slice_f64(&self, base: u64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let mut b = [0u8; 8];
                b.copy_from_slice(self.read_bytes(base + 8 * i as u64, 8).unwrap());
                f64::from_le_bytes(b)
            })
            .collect()
    }

    /// Reads back an `f32` array.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (test helper).
    pub fn read_slice_f32(&self, base: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let mut b = [0u8; 4];
                b.copy_from_slice(self.read_bytes(base + 4 * i as u64, 4).unwrap());
                f32::from_le_bytes(b)
            })
            .collect()
    }

    /// Reads back an `i32` array.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (test helper).
    pub fn read_slice_i32(&self, base: u64, len: usize) -> Vec<i32> {
        (0..len)
            .map(|i| {
                let mut b = [0u8; 4];
                b.copy_from_slice(self.read_bytes(base + 4 * i as u64, 4).unwrap());
                i32::from_le_bytes(b)
            })
            .collect()
    }

    /// Reads back an `i64` array.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access (test helper).
    pub fn read_slice_i64(&self, base: u64, len: usize) -> Vec<i64> {
        (0..len)
            .map(|i| {
                let mut b = [0u8; 8];
                b.copy_from_slice(self.read_bytes(base + 8 * i as u64, 8).unwrap());
                i64::from_le_bytes(b)
            })
            .collect()
    }

    fn read_bytes(&self, addr: u64, len: u64) -> Result<&[u8], ExecError> {
        let end = addr
            .checked_add(len)
            .ok_or(ExecError::Trap(Trap::OutOfBounds(addr)))?;
        if addr < ALIGN || end > self.bytes.len() as u64 {
            return Err(Trap::OutOfBounds(addr).into());
        }
        Ok(&self.bytes[addr as usize..end as usize])
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), ExecError> {
        let end = addr
            .checked_add(data.len() as u64)
            .ok_or(ExecError::Trap(Trap::OutOfBounds(addr)))?;
        if addr < ALIGN || end > self.bytes.len() as u64 {
            return Err(Trap::OutOfBounds(addr).into());
        }
        self.bytes[addr as usize..end as usize].copy_from_slice(data);
        Ok(())
    }

    fn load_scalar(&self, st: ScalarType, addr: u64) -> Result<Value, ExecError> {
        Ok(match st {
            ScalarType::I32 => {
                let mut b = [0u8; 4];
                b.copy_from_slice(self.read_bytes(addr, 4)?);
                Value::I32(i32::from_le_bytes(b))
            }
            ScalarType::I64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(self.read_bytes(addr, 8)?);
                Value::I64(i64::from_le_bytes(b))
            }
            ScalarType::F32 => {
                let mut b = [0u8; 4];
                b.copy_from_slice(self.read_bytes(addr, 4)?);
                Value::F32(f32::from_le_bytes(b))
            }
            ScalarType::F64 => {
                let mut b = [0u8; 8];
                b.copy_from_slice(self.read_bytes(addr, 8)?);
                Value::F64(f64::from_le_bytes(b))
            }
        })
    }

    fn store_scalar(&mut self, v: &Value, addr: u64) -> Result<(), ExecError> {
        match v {
            Value::I32(x) => self.write_bytes(addr, &x.to_le_bytes()),
            Value::I64(x) => self.write_bytes(addr, &x.to_le_bytes()),
            Value::F32(x) => self.write_bytes(addr, &x.to_le_bytes()),
            Value::F64(x) => self.write_bytes(addr, &x.to_le_bytes()),
            Value::Ptr(x) => self.write_bytes(addr, &x.to_le_bytes()),
            Value::Vector(_) => Err(ExecError::TypeMismatch("store_scalar on vector".into())),
        }
    }

    /// Typed load of `ty` from `addr`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds access or a `void` type.
    pub fn load(&self, ty: Type, addr: u64) -> Result<Value, ExecError> {
        match ty {
            Type::Scalar(st) => self.load_scalar(st, addr),
            Type::Vector(vt) => {
                let step = u64::from(vt.elem.size_bytes());
                let lanes: Result<Vec<Value>, ExecError> = (0..vt.lanes)
                    .map(|i| self.load_scalar(vt.elem, addr + step * u64::from(i)))
                    .collect();
                Ok(Value::Vector(lanes?))
            }
            Type::Ptr => {
                let mut b = [0u8; 8];
                b.copy_from_slice(self.read_bytes(addr, 8)?);
                Ok(Value::Ptr(u64::from_le_bytes(b)))
            }
            Type::Void => Err(ExecError::TypeMismatch("load of void".into())),
        }
    }

    /// Typed store of `v` to `addr`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds access. Vector stores are atomic: the whole
    /// range is bounds-checked before any lane is written, so a failed
    /// store never leaves memory partially modified.
    pub fn store(&mut self, v: &Value, addr: u64) -> Result<(), ExecError> {
        match v {
            Value::Vector(lanes) => {
                let lane_size = |lane: &Value| {
                    lane.scalar_type()
                        .map(|s| u64::from(s.size_bytes()))
                        .unwrap_or(8)
                };
                let total: u64 = lanes.iter().map(lane_size).sum();
                let end = addr
                    .checked_add(total)
                    .ok_or(ExecError::Trap(Trap::OutOfBounds(addr)))?;
                if addr < ALIGN || end > self.bytes.len() as u64 {
                    return Err(Trap::OutOfBounds(addr).into());
                }
                let mut a = addr;
                for lane in lanes {
                    let sz = lane_size(lane);
                    self.store_scalar(lane, a)?;
                    a += sz;
                }
                Ok(())
            }
            _ => self.store_scalar(v, addr),
        }
    }

    /// A snapshot of the full memory contents (for differential testing).
    pub fn snapshot(&self) -> Vec<u8> {
        self.bytes.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_nonzero() {
        let mut m = Memory::new();
        let a = m.alloc(10);
        let b = m.alloc(1);
        assert!(a >= ALIGN);
        assert_eq!(a % ALIGN, 0);
        assert!(b > a);
        assert_eq!(b % ALIGN, 0);
    }

    #[test]
    fn slice_round_trip() {
        let mut m = Memory::new();
        let data = [1.5, -2.5, 1e10];
        let base = m.alloc_slice_f64(&data);
        assert_eq!(m.read_slice_f64(base, 3), data.to_vec());
    }

    #[test]
    fn typed_load_store() {
        let mut m = Memory::new();
        let base = m.alloc(64);
        m.store(&Value::I32(-7), base).unwrap();
        assert_eq!(
            m.load(Type::scalar(ScalarType::I32), base).unwrap(),
            Value::I32(-7)
        );
        let v = Value::Vector(vec![
            Value::F32(1.0),
            Value::F32(2.0),
            Value::F32(3.0),
            Value::F32(4.0),
        ]);
        m.store(&v, base + 16).unwrap();
        assert_eq!(
            m.load(Type::vector(ScalarType::F32, 4), base + 16).unwrap(),
            v
        );
        // Vector load overlaps the scalar lanes correctly.
        assert_eq!(
            m.load(Type::scalar(ScalarType::F32), base + 24).unwrap(),
            Value::F32(3.0)
        );
    }

    #[test]
    fn oob_access_fails() {
        let mut m = Memory::new();
        let base = m.alloc(8);
        assert!(m.load(Type::scalar(ScalarType::F64), base).is_ok());
        assert!(m.load(Type::scalar(ScalarType::F64), m.size()).is_err());
        // The null page is unmapped.
        assert!(m.load(Type::scalar(ScalarType::I32), 0).is_err());
        assert!(m.store(&Value::I32(0), 4).is_err());
    }

    #[test]
    fn vector_store_is_atomic_on_oob() {
        let mut m = Memory::new();
        let base = m.alloc(16); // room for exactly 2 f64 lanes
        m.store(&Value::F64(1.0), base).unwrap();
        m.store(&Value::F64(2.0), base + 8).unwrap();
        // A 4-lane store would run past the allocation end; it must fail
        // without touching the first lanes.
        let v = Value::Vector(vec![
            Value::F64(9.0),
            Value::F64(9.0),
            Value::F64(9.0),
            Value::F64(9.0),
        ]);
        let end_of_mem = m.size() - 16;
        let res = m.store(&v, end_of_mem);
        assert!(res.is_err());
        assert_eq!(m.read_slice_f64(base, 2), vec![1.0, 2.0]);
    }
}
