//! The IR interpreter: executes a function over a [`Memory`], counting
//! dynamic instructions and cost-model cycles.

use std::error::Error;
use std::fmt;

use snslp_cost::CostModel;
use snslp_ir::{Function, InstId, InstKind, Type};

use crate::memory::Memory;
use crate::profile::DynProfile;
use crate::value::{apply_binop, apply_binop_lanewise, apply_cast, apply_cmp, apply_unop, Value};

/// A well-defined runtime trap: a deterministic outcome of executing
/// verifier-clean IR on particular inputs. Traps are *comparable* across
/// differential runs (trap-vs-trap), unlike the malformed-IR errors on
/// [`ExecError`], which indicate a bug in whatever produced the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Memory access outside any allocation.
    OutOfBounds(u64),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The dynamic instruction budget was exhausted.
    FuelExhausted,
}

impl Trap {
    /// Stable trap-kind label, ignoring any address payload. Differential
    /// oracles compare traps by kind because a vectorized function may
    /// legitimately fault at a different lane address than the scalar one.
    pub fn kind(self) -> &'static str {
        match self {
            Trap::OutOfBounds(_) => "out_of_bounds",
            Trap::DivisionByZero => "division_by_zero",
            Trap::FuelExhausted => "fuel_exhausted",
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::OutOfBounds(a) => write!(f, "out-of-bounds memory access at {a:#x}"),
            Trap::DivisionByZero => write!(f, "integer division by zero"),
            Trap::FuelExhausted => write!(f, "dynamic instruction budget exhausted"),
        }
    }
}

/// Errors raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A well-defined runtime trap (see [`Trap`]).
    Trap(Trap),
    /// A value had the wrong runtime type (indicates malformed IR).
    TypeMismatch(String),
    /// An operand was read before being defined (malformed IR).
    UndefinedValue(InstId),
    /// Wrong number or type of arguments supplied to [`run`].
    BadArguments(String),
}

impl ExecError {
    /// The trap, if this error is a well-defined runtime trap rather than
    /// a malformed-IR/argument error.
    pub fn as_trap(&self) -> Option<Trap> {
        match self {
            ExecError::Trap(t) => Some(*t),
            _ => None,
        }
    }
}

impl From<Trap> for ExecError {
    fn from(t: Trap) -> Self {
        ExecError::Trap(t)
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Trap(t) => t.fmt(f),
            ExecError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            ExecError::UndefinedValue(v) => write!(f, "use of undefined value {v}"),
            ExecError::BadArguments(m) => write!(f, "bad arguments: {m}"),
        }
    }
}

impl Error for ExecError {}

/// Execution limits and switches.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Maximum number of dynamic instructions (guards against infinite
    /// loops in malformed inputs).
    pub fuel: u64,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { fuel: 100_000_000 }
    }
}

/// The result of interpreting a function.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Name of the executed function. The interpreter runs one function
    /// per call, so this keys dynamic profiles per function when results
    /// from several functions are aggregated (e.g. by `snslp-report`).
    pub function: String,
    /// The returned value, if the function returns one.
    pub ret: Option<Value>,
    /// Simulated cycles per the cost model's execution view.
    pub cycles: u64,
    /// Number of dynamic instructions executed.
    pub dyn_insts: u64,
    /// Dynamic execution profile: the same work broken down by opcode
    /// class, scalar vs vector, lane usage, packing overhead, and memory
    /// traffic. `profile.total_ops() == dyn_insts` and
    /// `profile.total_cycles() == cycles` always hold.
    pub profile: DynProfile,
}

/// Interprets `f` with the given arguments against `mem`.
///
/// Arguments must match the function's parameters: `Value::Ptr` for `ptr`
/// parameters, matching scalars otherwise.
///
/// # Errors
///
/// Returns [`ExecError`] on malformed IR, memory faults, integer division
/// by zero, argument mismatch, or fuel exhaustion.
pub fn run(
    f: &Function,
    args: &[Value],
    mem: &mut Memory,
    model: &CostModel,
    opts: &ExecOptions,
) -> Result<ExecResult, ExecError> {
    if args.len() != f.params().len() {
        return Err(ExecError::BadArguments(format!(
            "expected {} arguments, got {}",
            f.params().len(),
            args.len()
        )));
    }
    let mut values: Vec<Option<Value>> = vec![None; f.num_inst_slots()];
    for (i, a) in args.iter().enumerate() {
        let want = f.params()[i].ty;
        let ok = match (want, a) {
            (Type::Ptr, Value::Ptr(_)) => true,
            (Type::Scalar(st), v) => v.scalar_type() == Some(st),
            _ => false,
        };
        if !ok {
            return Err(ExecError::BadArguments(format!(
                "argument {i} has wrong type for {want}"
            )));
        }
        values[f.param(i).index()] = Some(a.clone());
    }

    let mut cycles: u64 = 0;
    let mut dyn_insts: u64 = 0;
    let mut profile = DynProfile::new();
    let mut fuel = opts.fuel;
    let mut block = f.entry();
    let mut prev_block: Option<snslp_ir::BlockId> = None;

    'blocks: loop {
        // Phase 1: evaluate all phis of the block atomically.
        let insts = f.block(block).insts();
        let mut phi_values: Vec<(InstId, Value)> = Vec::new();
        for &id in insts {
            match f.kind(id) {
                InstKind::Phi { incoming } => {
                    let pred = prev_block
                        .ok_or_else(|| ExecError::TypeMismatch("phi in entry block".into()))?;
                    let (_, v) = incoming.iter().find(|(b, _)| *b == pred).ok_or_else(|| {
                        ExecError::TypeMismatch(format!("phi {id} has no edge from {pred}"))
                    })?;
                    let val = values[v.index()]
                        .clone()
                        .ok_or(ExecError::UndefinedValue(*v))?;
                    phi_values.push((id, val));
                }
                _ => break,
            }
        }
        for (id, v) in phi_values {
            values[id.index()] = Some(v);
        }

        // Phase 2: execute the rest.
        for &id in insts {
            let kind = f.kind(id);
            if matches!(kind, InstKind::Phi { .. }) {
                continue;
            }
            if fuel == 0 {
                return Err(Trap::FuelExhausted.into());
            }
            fuel -= 1;
            dyn_insts += 1;
            let cost = model.exec_cost(f, id);
            cycles += cost;
            profile.record(f, id, cost);

            let get = |v: &InstId| -> Result<Value, ExecError> {
                values[v.index()]
                    .clone()
                    .ok_or(ExecError::UndefinedValue(*v))
            };

            let result: Option<Value> = match kind {
                InstKind::Param(_) | InstKind::Phi { .. } => unreachable!(),
                InstKind::Const(c) => Some(Value::of_const(*c)),
                InstKind::Binary { op, lhs, rhs } => {
                    Some(apply_binop(*op, &get(lhs)?, &get(rhs)?)?)
                }
                InstKind::BinaryLanewise { ops, lhs, rhs } => {
                    Some(apply_binop_lanewise(ops, &get(lhs)?, &get(rhs)?)?)
                }
                InstKind::Unary { op, operand } => Some(apply_unop(*op, &get(operand)?)?),
                InstKind::Cast { kind, operand } => {
                    let to = f
                        .ty(id)
                        .elem_scalar()
                        .ok_or_else(|| ExecError::TypeMismatch("cast to non-numeric".into()))?;
                    Some(apply_cast(*kind, to, &get(operand)?)?)
                }
                InstKind::Cmp { pred, lhs, rhs } => Some(apply_cmp(*pred, &get(lhs)?, &get(rhs)?)?),
                InstKind::Select {
                    cond,
                    on_true,
                    on_false,
                } => match get(cond)? {
                    // A vector i32 mask selects lane-wise.
                    Value::Vector(mask) => {
                        let t = get(on_true)?;
                        let e = get(on_false)?;
                        let (tl, el) = (t.lanes()?, e.lanes()?);
                        if mask.len() != tl.len() || mask.len() != el.len() {
                            return Err(ExecError::TypeMismatch(
                                "select mask width mismatch".into(),
                            ));
                        }
                        let lanes: Result<Vec<Value>, ExecError> = mask
                            .iter()
                            .zip(tl.iter().zip(el))
                            .map(|(m, (tv, ev))| {
                                Ok(if m.is_truthy()? {
                                    tv.clone()
                                } else {
                                    ev.clone()
                                })
                            })
                            .collect();
                        Some(Value::Vector(lanes?))
                    }
                    c => {
                        if c.is_truthy()? {
                            Some(get(on_true)?)
                        } else {
                            Some(get(on_false)?)
                        }
                    }
                },
                InstKind::Load { ptr } => {
                    let addr = get(ptr)?.as_ptr()?;
                    Some(mem.load(f.ty(id), addr)?)
                }
                InstKind::Store { ptr, value } => {
                    let addr = get(ptr)?.as_ptr()?;
                    mem.store(&get(value)?, addr)?;
                    None
                }
                InstKind::PtrAdd { ptr, offset } => {
                    let base = get(ptr)?.as_ptr()?;
                    let off = get(offset)?.as_i64()?;
                    Some(Value::Ptr(base.wrapping_add(off as u64)))
                }
                InstKind::Splat { value, lanes } => {
                    let v = get(value)?;
                    Some(Value::Vector(vec![v; *lanes as usize]))
                }
                InstKind::BuildVector { elems } => {
                    let lanes: Result<Vec<Value>, ExecError> = elems.iter().map(&get).collect();
                    Some(Value::Vector(lanes?))
                }
                InstKind::ExtractElement { vector, lane } => {
                    let v = get(vector)?;
                    let lanes = v.lanes()?;
                    Some(
                        lanes
                            .get(*lane as usize)
                            .cloned()
                            .ok_or_else(|| ExecError::TypeMismatch("lane out of range".into()))?,
                    )
                }
                InstKind::InsertElement {
                    vector,
                    value,
                    lane,
                } => {
                    let v = get(vector)?;
                    let mut lanes = v.lanes()?.to_vec();
                    let slot = lanes
                        .get_mut(*lane as usize)
                        .ok_or_else(|| ExecError::TypeMismatch("lane out of range".into()))?;
                    *slot = get(value)?;
                    Some(Value::Vector(lanes))
                }
                InstKind::Shuffle { a, b, mask } => {
                    let va = get(a)?;
                    let vb = get(b)?;
                    let (la, lb) = (va.lanes()?, vb.lanes()?);
                    let n = la.len();
                    let lanes: Result<Vec<Value>, ExecError> = mask
                        .iter()
                        .map(|&m| {
                            let m = m as usize;
                            if m < n {
                                Ok(la[m].clone())
                            } else if m - n < lb.len() {
                                Ok(lb[m - n].clone())
                            } else {
                                Err(ExecError::TypeMismatch("shuffle index out of range".into()))
                            }
                        })
                        .collect();
                    Some(Value::Vector(lanes?))
                }
                InstKind::Jump { target } => {
                    prev_block = Some(block);
                    block = *target;
                    continue 'blocks;
                }
                InstKind::Branch {
                    cond,
                    on_true,
                    on_false,
                } => {
                    prev_block = Some(block);
                    block = if get(cond)?.is_truthy()? {
                        *on_true
                    } else {
                        *on_false
                    };
                    continue 'blocks;
                }
                InstKind::Ret { value } => {
                    let ret = match value {
                        Some(v) => Some(get(v)?),
                        None => None,
                    };
                    return Ok(ExecResult {
                        function: f.name().to_string(),
                        ret,
                        cycles,
                        dyn_insts,
                        profile,
                    });
                }
            };
            values[id.index()] = result;
        }
        // A verifier-clean block always ends in a terminator; reaching here
        // means malformed IR.
        return Err(ExecError::TypeMismatch(format!(
            "block {block} fell through without a terminator"
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_cost::TargetDesc;
    use snslp_ir::{FunctionBuilder, Param, ScalarType};

    fn model() -> CostModel {
        CostModel::new(TargetDesc::sse2_like())
    }

    #[test]
    fn run_straight_line_store() {
        // a[0] = b[0] + b[1]
        let mut fb = FunctionBuilder::new(
            "sum2",
            vec![Param::noalias_ptr("a"), Param::noalias_ptr("b")],
            Type::Void,
        );
        let (a, b) = (fb.func().param(0), fb.func().param(1));
        let b0 = fb.load(ScalarType::F64, b);
        let p1 = fb.ptradd_const(b, 8);
        let b1 = fb.load(ScalarType::F64, p1);
        let s = fb.add(b0, b1);
        fb.store(a, s);
        fb.ret(None);
        let f = fb.finish();

        let mut mem = Memory::new();
        let bb = mem.alloc_slice_f64(&[3.0, 4.0]);
        let aa = mem.alloc_slice_f64(&[0.0]);
        let r = run(
            &f,
            &[Value::Ptr(aa), Value::Ptr(bb)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(mem.read_slice_f64(aa, 1), vec![7.0]);
        assert!(r.cycles > 0);
        assert_eq!(r.ret, None);
    }

    #[test]
    fn run_counted_loop() {
        // for i in 0..n: a[i] *= 2
        let mut fb = FunctionBuilder::new(
            "dbl",
            vec![
                Param::noalias_ptr("a"),
                Param::new("n", Type::scalar(ScalarType::I64)),
            ],
            Type::Void,
        );
        let a = fb.func().param(0);
        let n = fb.func().param(1);
        fb.counted_loop(n, |fb, i| {
            let eight = fb.const_i64(8);
            let off = fb.mul(i, eight);
            let p = fb.ptradd(a, off);
            let v = fb.load(ScalarType::F64, p);
            let two = fb.const_f64(2.0);
            let s = fb.mul(v, two);
            fb.store(p, s);
        });
        fb.ret(None);
        let f = fb.finish();
        snslp_ir::verify(&f).unwrap();

        let mut mem = Memory::new();
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let aa = mem.alloc_slice_f64(&data);
        run(
            &f,
            &[Value::Ptr(aa), Value::I64(10)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(
            mem.read_slice_f64(aa, 10),
            (0..10).map(|i| 2.0 * i as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn returns_value() {
        let mut fb = FunctionBuilder::new("k", vec![], Type::scalar(ScalarType::I64));
        let c = fb.const_i64(41);
        let one = fb.const_i64(1);
        let s = fb.add(c, one);
        fb.ret(Some(s));
        let f = fb.finish();
        let mut mem = Memory::new();
        let r = run(&f, &[], &mut mem, &model(), &ExecOptions::default()).unwrap();
        assert_eq!(r.ret, Some(Value::I64(42)));
    }

    #[test]
    fn fuel_limits_infinite_loops() {
        let mut fb = FunctionBuilder::new("inf", vec![], Type::Void);
        let body = fb.create_block("body");
        fb.jump(body);
        fb.switch_to(body);
        fb.jump(body);
        let f = fb.finish();
        let mut mem = Memory::new();
        let e = run(&f, &[], &mut mem, &model(), &ExecOptions { fuel: 1000 }).unwrap_err();
        assert_eq!(e, ExecError::Trap(Trap::FuelExhausted));
        assert_eq!(e.as_trap(), Some(Trap::FuelExhausted));
    }

    #[test]
    fn bad_argument_count_and_type() {
        let mut fb = FunctionBuilder::new(
            "f",
            vec![Param::new("x", Type::scalar(ScalarType::I64))],
            Type::Void,
        );
        fb.ret(None);
        let f = fb.finish();
        let mut mem = Memory::new();
        assert!(matches!(
            run(&f, &[], &mut mem, &model(), &ExecOptions::default()),
            Err(ExecError::BadArguments(_))
        ));
        assert!(matches!(
            run(
                &f,
                &[Value::F64(1.0)],
                &mut mem,
                &model(),
                &ExecOptions::default()
            ),
            Err(ExecError::BadArguments(_))
        ));
    }

    #[test]
    fn vector_instructions_execute() {
        let mut fb = FunctionBuilder::new("v", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let vt = snslp_ir::VectorType::new(ScalarType::F64, 2);
        let v = fb.load_vector(vt, p);
        let sh = fb.shuffle(v, v, vec![1, 0]);
        let r = fb.binary_lanewise(vec![snslp_ir::BinOp::Add, snslp_ir::BinOp::Sub], v, sh);
        let q = fb.ptradd_const(p, 16);
        fb.store(q, r);
        fb.ret(None);
        let f = fb.finish();
        snslp_ir::verify(&f).unwrap();

        let mut mem = Memory::new();
        let base = mem.alloc_slice_f64(&[10.0, 3.0, 0.0, 0.0]);
        run(
            &f,
            &[Value::Ptr(base)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap();
        // lane0: 10 + 3 = 13; lane1: 3 - 10 = -7
        assert_eq!(mem.read_slice_f64(base + 16, 2), vec![13.0, -7.0]);
    }

    #[test]
    fn profile_buckets_sum_to_totals() {
        // Same shape as `vector_instructions_execute`: one vector load,
        // a shuffle, a lanewise op, address math, and a vector store.
        let mut fb = FunctionBuilder::new("v", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let vt = snslp_ir::VectorType::new(ScalarType::F64, 2);
        let v = fb.load_vector(vt, p);
        let sh = fb.shuffle(v, v, vec![1, 0]);
        let r = fb.binary_lanewise(vec![snslp_ir::BinOp::Add, snslp_ir::BinOp::Sub], v, sh);
        let q = fb.ptradd_const(p, 16);
        fb.store(q, r);
        fb.ret(None);
        let f = fb.finish();

        let mut mem = Memory::new();
        let base = mem.alloc_slice_f64(&[10.0, 3.0, 0.0, 0.0]);
        let res = run(
            &f,
            &[Value::Ptr(base)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap();
        let prof = &res.profile;
        assert_eq!(prof.total_ops(), res.dyn_insts);
        assert_eq!(prof.total_cycles(), res.cycles);
        assert_eq!(prof.loads, 1);
        assert_eq!(prof.stores, 1);
        // One f64x2 load + one f64x2 store = 16 bytes each way.
        assert_eq!(prof.bytes_loaded, 16);
        assert_eq!(prof.bytes_stored, 16);
        assert_eq!(prof.shuffles, 1);
        // Vector ops: load, shuffle, lanewise, store — all 2-lane.
        assert_eq!(prof.vector_ops, 4);
        assert_eq!(prof.lanes_hist[2], 4);
        assert_eq!(prof.mean_lanes(), Some(2.0));
        assert_eq!(prof.gathers, 0);
    }

    #[test]
    fn scalar_function_profiles_zero_vector_ops() {
        let mut fb = FunctionBuilder::new("d", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::I64, p);
        let c = fb.const_i64(3);
        let q = fb.div(x, c);
        fb.store(p, q);
        fb.ret(None);
        let f = fb.finish();
        let mut mem = Memory::new();
        let base = mem.alloc_slice_i64(&[9]);
        let res = run(
            &f,
            &[Value::Ptr(base)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap();
        let prof = &res.profile;
        assert_eq!(prof.vector_ops, 0);
        assert_eq!(prof.scalar_ops, res.dyn_insts);
        assert_eq!(prof.ops_of(crate::profile::OpClass::DivRem), 1);
        assert_eq!(prof.cycles_of(crate::profile::OpClass::DivRem), 8);
        assert_eq!(prof.mean_lanes(), None);
        assert_eq!(prof.packing_ops(), 0);
        assert_eq!(prof.mem_ops(), 2);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(ExecError::Trap(Trap::OutOfBounds(0x40))
            .to_string()
            .contains("0x40"));
        assert!(ExecError::Trap(Trap::DivisionByZero)
            .to_string()
            .contains("division"));
        assert!(ExecError::Trap(Trap::FuelExhausted)
            .to_string()
            .contains("budget"));
        assert_eq!(Trap::OutOfBounds(0x40).kind(), "out_of_bounds");
        assert_eq!(Trap::DivisionByZero.kind(), "division_by_zero");
        assert_eq!(Trap::FuelExhausted.kind(), "fuel_exhausted");
        assert!(ExecError::BadArguments("x".into())
            .to_string()
            .contains("x"));
        assert!(ExecError::UndefinedValue(snslp_ir::InstId(3))
            .to_string()
            .contains("%3"));
    }

    #[test]
    fn vector_mask_select_executes() {
        let mut fb = FunctionBuilder::new("v", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let vt = snslp_ir::VectorType::new(ScalarType::I64, 2);
        let a = fb.load_vector(vt, p);
        let q = fb.ptradd_const(p, 16);
        let b = fb.load_vector(vt, q);
        let m = fb.cmp(snslp_ir::CmpPred::Gt, a, b);
        let r = fb.select(m, a, b);
        let o = fb.ptradd_const(p, 32);
        fb.store(o, r);
        fb.ret(None);
        let f = fb.finish();
        snslp_ir::verify(&f).unwrap();
        let mut mem = Memory::new();
        let base = mem.alloc_slice_i64(&[5, -7, 3, 12, 0, 0]);
        run(
            &f,
            &[Value::Ptr(base)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap();
        assert_eq!(mem.read_slice_i64(base + 32, 2), vec![5, 12]);
    }

    #[test]
    fn int_div_by_zero_aborts_execution() {
        let mut fb = FunctionBuilder::new("d", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::I64, p);
        let z = fb.const_i64(0);
        let q = fb.div(x, z);
        fb.store(p, q);
        fb.ret(None);
        let f = fb.finish();
        let mut mem = Memory::new();
        let base = mem.alloc_slice_i64(&[9]);
        let e = run(
            &f,
            &[Value::Ptr(base)],
            &mut mem,
            &model(),
            &ExecOptions::default(),
        )
        .unwrap_err();
        assert_eq!(e, ExecError::Trap(Trap::DivisionByZero));
        // Memory untouched.
        assert_eq!(mem.read_slice_i64(base, 1), vec![9]);
    }
}
