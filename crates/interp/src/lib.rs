//! # snslp-interp
//!
//! Reference interpreter for the SN-SLP IR: flat bounds-checked
//! [`Memory`], dynamic [`Value`]s, an executor with cost-model cycle
//! accounting ([`run`]), and differential-testing helpers ([`diff`])
//! used to validate that vectorization preserves semantics.
//!
//! # Examples
//!
//! ```
//! use snslp_cost::{CostModel, TargetDesc};
//! use snslp_interp::{run, ExecOptions, Memory, Value};
//! use snslp_ir::{FunctionBuilder, Param, ScalarType, Type};
//!
//! // a[0] = a[0] + a[1]
//! let mut fb = FunctionBuilder::new("f", vec![Param::noalias_ptr("a")], Type::Void);
//! let a = fb.func().param(0);
//! let x = fb.load(ScalarType::F64, a);
//! let p = fb.ptradd_const(a, 8);
//! let y = fb.load(ScalarType::F64, p);
//! let s = fb.add(x, y);
//! fb.store(a, s);
//! fb.ret(None);
//! let f = fb.finish();
//!
//! let mut mem = Memory::new();
//! let base = mem.alloc_slice_f64(&[1.0, 2.0]);
//! let model = CostModel::new(TargetDesc::sse2_like());
//! run(&f, &[Value::Ptr(base)], &mut mem, &model, &ExecOptions::default())?;
//! assert_eq!(mem.read_slice_f64(base, 1), vec![3.0]);
//! # Ok::<(), snslp_interp::ExecError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod exec;
pub mod memory;
pub mod profile;
pub mod value;

pub use diff::{
    check_equivalent, outcomes_match, parse_inputs_line, run_with_args, ArgSpec, ArrayData,
    RunOutcome,
};
pub use exec::{run, ExecError, ExecOptions, ExecResult, Trap};
pub use memory::Memory;
pub use profile::{classify, DynProfile, OpClass};
pub use value::Value;
