//! Runtime values and scalar/vector operator semantics.

use std::fmt;

use snslp_ir::{BinOp, CastKind, CmpPred, Constant, ScalarType, UnOp};

use crate::exec::{ExecError, Trap};

/// A dynamic value produced by interpreting the IR.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
    /// Byte address into the interpreter [`Memory`](crate::Memory).
    Ptr(u64),
    /// Vector of scalar values (all of the same scalar type).
    Vector(Vec<Value>),
}

impl Value {
    /// Builds a constant value.
    pub fn of_const(c: Constant) -> Value {
        match c {
            Constant::I32(v) => Value::I32(v),
            Constant::I64(v) => Value::I64(v),
            Constant::F32(v) => Value::F32(v),
            Constant::F64(v) => Value::F64(v),
        }
    }

    /// The scalar type of a scalar value.
    pub fn scalar_type(&self) -> Option<ScalarType> {
        Some(match self {
            Value::I32(_) => ScalarType::I32,
            Value::I64(_) => ScalarType::I64,
            Value::F32(_) => ScalarType::F32,
            Value::F64(_) => ScalarType::F64,
            _ => return None,
        })
    }

    /// Interprets the value as an address.
    pub fn as_ptr(&self) -> Result<u64, ExecError> {
        match self {
            Value::Ptr(p) => Ok(*p),
            v => Err(ExecError::TypeMismatch(format!("expected ptr, got {v:?}"))),
        }
    }

    /// Interprets the value as `i64`.
    pub fn as_i64(&self) -> Result<i64, ExecError> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::I32(v) => Ok(i64::from(*v)),
            v => Err(ExecError::TypeMismatch(format!("expected int, got {v:?}"))),
        }
    }

    /// Whether a scalar condition is "true" (non-zero).
    pub fn is_truthy(&self) -> Result<bool, ExecError> {
        Ok(self.as_i64()? != 0)
    }

    /// Vector lanes, if this is a vector.
    pub fn lanes(&self) -> Result<&[Value], ExecError> {
        match self {
            Value::Vector(l) => Ok(l),
            v => Err(ExecError::TypeMismatch(format!(
                "expected vector, got {v:?}"
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Ptr(p) => write!(f, "ptr:{p:#x}"),
            Value::Vector(l) => {
                write!(f, "<")?;
                for (i, v) in l.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    v.fmt(f)?;
                }
                write!(f, ">")
            }
        }
    }
}

/// Applies a binary op to two scalar values of the same type.
pub fn apply_binop_scalar(op: BinOp, a: &Value, b: &Value) -> Result<Value, ExecError> {
    match (a, b) {
        (Value::I32(x), Value::I32(y)) => {
            int_binop(op, i64::from(*x), i64::from(*y)).map(|v| Value::I32(v as i32))
        }
        (Value::I64(x), Value::I64(y)) => int_binop(op, *x, *y).map(Value::I64),
        (Value::F32(x), Value::F32(y)) => {
            float_binop(op, f64::from(*x), f64::from(*y)).map(|v| Value::F32(v as f32))
        }
        (Value::F64(x), Value::F64(y)) => float_binop(op, *x, *y).map(Value::F64),
        _ => Err(ExecError::TypeMismatch(format!(
            "binop {op} on {a:?} / {b:?}"
        ))),
    }
}

fn int_binop(op: BinOp, x: i64, y: i64) -> Result<i64, ExecError> {
    Ok(match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::Div => {
            if y == 0 {
                return Err(Trap::DivisionByZero.into());
            }
            x.wrapping_div(y)
        }
        BinOp::Rem => {
            if y == 0 {
                return Err(Trap::DivisionByZero.into());
            }
            x.wrapping_rem(y)
        }
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32),
        BinOp::Shr => x.wrapping_shr(y as u32),
    })
}

fn float_binop(op: BinOp, x: f64, y: f64) -> Result<f64, ExecError> {
    Ok(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Rem => x % y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        op => {
            return Err(ExecError::TypeMismatch(format!(
                "float operands for integer-only op {op}"
            )))
        }
    })
}

/// Applies a binary op lane-wise on scalars or vectors.
pub fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, ExecError> {
    match (a, b) {
        (Value::Vector(xs), Value::Vector(ys)) => {
            if xs.len() != ys.len() {
                return Err(ExecError::TypeMismatch("vector width mismatch".into()));
            }
            let lanes: Result<Vec<Value>, ExecError> = xs
                .iter()
                .zip(ys)
                .map(|(x, y)| apply_binop_scalar(op, x, y))
                .collect();
            Ok(Value::Vector(lanes?))
        }
        _ => apply_binop_scalar(op, a, b),
    }
}

/// Applies per-lane ops (`ops[i]` on lane `i`) to two vectors.
pub fn apply_binop_lanewise(ops: &[BinOp], a: &Value, b: &Value) -> Result<Value, ExecError> {
    let (xs, ys) = (a.lanes()?, b.lanes()?);
    if xs.len() != ys.len() || xs.len() != ops.len() {
        return Err(ExecError::TypeMismatch("lanewise width mismatch".into()));
    }
    let lanes: Result<Vec<Value>, ExecError> = ops
        .iter()
        .zip(xs.iter().zip(ys))
        .map(|(&op, (x, y))| apply_binop_scalar(op, x, y))
        .collect();
    Ok(Value::Vector(lanes?))
}

/// Applies a unary op lane-wise on scalars or vectors.
pub fn apply_unop(op: UnOp, a: &Value) -> Result<Value, ExecError> {
    match a {
        Value::Vector(xs) => {
            let lanes: Result<Vec<Value>, ExecError> =
                xs.iter().map(|x| apply_unop(op, x)).collect();
            Ok(Value::Vector(lanes?))
        }
        Value::I32(x) => Ok(Value::I32(match op {
            UnOp::Neg => x.wrapping_neg(),
            UnOp::Not => !x,
            UnOp::Abs => x.wrapping_abs(),
            UnOp::Sqrt => {
                return Err(ExecError::TypeMismatch("sqrt on integer".into()));
            }
        })),
        Value::I64(x) => Ok(Value::I64(match op {
            UnOp::Neg => x.wrapping_neg(),
            UnOp::Not => !x,
            UnOp::Abs => x.wrapping_abs(),
            UnOp::Sqrt => {
                return Err(ExecError::TypeMismatch("sqrt on integer".into()));
            }
        })),
        Value::F32(x) => Ok(Value::F32(match op {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
            UnOp::Not => return Err(ExecError::TypeMismatch("not on float".into())),
        })),
        Value::F64(x) => Ok(Value::F64(match op {
            UnOp::Neg => -x,
            UnOp::Abs => x.abs(),
            UnOp::Sqrt => x.sqrt(),
            UnOp::Not => return Err(ExecError::TypeMismatch("not on float".into())),
        })),
        Value::Ptr(_) => Err(ExecError::TypeMismatch("unary op on pointer".into())),
    }
}

/// Applies a type conversion to target element type `to` (lane-wise on
/// vectors). Float → int conversions saturate like Rust's `as`.
pub fn apply_cast(kind: CastKind, to: ScalarType, v: &Value) -> Result<Value, ExecError> {
    match v {
        Value::Vector(xs) => {
            let lanes: Result<Vec<Value>, ExecError> =
                xs.iter().map(|x| apply_cast(kind, to, x)).collect();
            Ok(Value::Vector(lanes?))
        }
        _ => {
            let from = v
                .scalar_type()
                .ok_or_else(|| ExecError::TypeMismatch("cast on non-scalar".into()))?;
            if !kind.valid_for(from, to) {
                return Err(ExecError::TypeMismatch(format!(
                    "cast {kind} invalid for {from} -> {to}"
                )));
            }
            Ok(match (kind, v) {
                (CastKind::Sitofp, Value::I32(x)) => float_of(to, f64::from(*x)),
                (CastKind::Sitofp, Value::I64(x)) => float_of(to, *x as f64),
                (CastKind::Fptosi, Value::F32(x)) => int_of(to, f64::from(*x)),
                (CastKind::Fptosi, Value::F64(x)) => int_of(to, *x),
                (CastKind::Fpext, Value::F32(x)) => Value::F64(f64::from(*x)),
                (CastKind::Fptrunc, Value::F64(x)) => Value::F32(*x as f32),
                (CastKind::Sext, Value::I32(x)) => Value::I64(i64::from(*x)),
                (CastKind::Trunc, Value::I64(x)) => Value::I32(*x as i32),
                _ => return Err(ExecError::TypeMismatch(format!("cast {kind} on {v:?}"))),
            })
        }
    }
}

fn float_of(to: ScalarType, x: f64) -> Value {
    match to {
        ScalarType::F32 => Value::F32(x as f32),
        _ => Value::F64(x),
    }
}

fn int_of(to: ScalarType, x: f64) -> Value {
    match to {
        ScalarType::I32 => Value::I32(x as i32),
        _ => Value::I64(x as i64),
    }
}

/// Applies a comparison, producing `i32` 0/1 (lane-wise for vectors).
pub fn apply_cmp(pred: CmpPred, a: &Value, b: &Value) -> Result<Value, ExecError> {
    match (a, b) {
        (Value::Vector(xs), Value::Vector(ys)) => {
            if xs.len() != ys.len() {
                return Err(ExecError::TypeMismatch("vector width mismatch".into()));
            }
            let lanes: Result<Vec<Value>, ExecError> = xs
                .iter()
                .zip(ys)
                .map(|(x, y)| apply_cmp(pred, x, y))
                .collect();
            Ok(Value::Vector(lanes?))
        }
        _ => {
            let ord = match (a, b) {
                (Value::I32(x), Value::I32(y)) => x.partial_cmp(y),
                (Value::I64(x), Value::I64(y)) => x.partial_cmp(y),
                (Value::F32(x), Value::F32(y)) => x.partial_cmp(y),
                (Value::F64(x), Value::F64(y)) => x.partial_cmp(y),
                (Value::Ptr(x), Value::Ptr(y)) => x.partial_cmp(y),
                _ => return Err(ExecError::TypeMismatch(format!("cmp on {a:?} / {b:?}"))),
            };
            let r = match (pred, ord) {
                (CmpPred::Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                (CmpPred::Ne, Some(o)) => o != std::cmp::Ordering::Equal,
                (CmpPred::Lt, Some(o)) => o == std::cmp::Ordering::Less,
                (CmpPred::Le, Some(o)) => o != std::cmp::Ordering::Greater,
                (CmpPred::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                (CmpPred::Ge, Some(o)) => o != std::cmp::Ordering::Less,
                // Unordered (NaN) comparisons are false except `ne`.
                (CmpPred::Ne, None) => true,
                (_, None) => false,
            };
            Ok(Value::I32(i32::from(r)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ops_wrap() {
        let v = apply_binop(BinOp::Add, &Value::I32(i32::MAX), &Value::I32(1)).unwrap();
        assert_eq!(v, Value::I32(i32::MIN));
        let v = apply_binop(BinOp::Mul, &Value::I64(i64::MAX), &Value::I64(2)).unwrap();
        assert_eq!(v, Value::I64(-2));
    }

    #[test]
    fn int_div_by_zero_traps() {
        let e = apply_binop(BinOp::Div, &Value::I32(1), &Value::I32(0)).unwrap_err();
        assert!(matches!(e, ExecError::Trap(Trap::DivisionByZero)));
        let e = apply_binop(BinOp::Rem, &Value::I64(1), &Value::I64(0)).unwrap_err();
        assert!(matches!(e, ExecError::Trap(Trap::DivisionByZero)));
    }

    #[test]
    fn float_div_by_zero_is_inf() {
        let v = apply_binop(BinOp::Div, &Value::F64(1.0), &Value::F64(0.0)).unwrap();
        assert_eq!(v, Value::F64(f64::INFINITY));
    }

    #[test]
    fn vector_ops_are_lanewise() {
        let a = Value::Vector(vec![Value::F64(1.0), Value::F64(2.0)]);
        let b = Value::Vector(vec![Value::F64(10.0), Value::F64(20.0)]);
        let v = apply_binop(BinOp::Add, &a, &b).unwrap();
        assert_eq!(v, Value::Vector(vec![Value::F64(11.0), Value::F64(22.0)]));
        let v = apply_binop_lanewise(&[BinOp::Add, BinOp::Sub], &a, &b).unwrap();
        assert_eq!(v, Value::Vector(vec![Value::F64(11.0), Value::F64(-18.0)]));
    }

    #[test]
    fn cmp_semantics() {
        assert_eq!(
            apply_cmp(CmpPred::Lt, &Value::I64(1), &Value::I64(2)).unwrap(),
            Value::I32(1)
        );
        assert_eq!(
            apply_cmp(CmpPred::Ge, &Value::F64(1.0), &Value::F64(2.0)).unwrap(),
            Value::I32(0)
        );
        // NaN is unordered: only `ne` holds.
        assert_eq!(
            apply_cmp(CmpPred::Eq, &Value::F64(f64::NAN), &Value::F64(f64::NAN)).unwrap(),
            Value::I32(0)
        );
        assert_eq!(
            apply_cmp(CmpPred::Ne, &Value::F64(f64::NAN), &Value::F64(f64::NAN)).unwrap(),
            Value::I32(1)
        );
    }

    #[test]
    fn unops() {
        assert_eq!(
            apply_unop(UnOp::Neg, &Value::F32(2.0)).unwrap(),
            Value::F32(-2.0)
        );
        assert_eq!(
            apply_unop(UnOp::Abs, &Value::I64(-5)).unwrap(),
            Value::I64(5)
        );
        assert_eq!(
            apply_unop(UnOp::Sqrt, &Value::F64(9.0)).unwrap(),
            Value::F64(3.0)
        );
        assert!(apply_unop(UnOp::Sqrt, &Value::I32(9)).is_err());
        assert!(apply_unop(UnOp::Not, &Value::F64(1.0)).is_err());
    }
}
