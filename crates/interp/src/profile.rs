//! Dynamic execution profiles: per-run observability for the code the
//! vectorizer emits.
//!
//! While [`crate::exec::run`] already counts dynamic instructions and
//! simulated cycles, a [`DynProfile`] breaks both down by opcode class,
//! splits scalar from vector work, records how many lanes every vector
//! operation actually used, and tallies the packing overhead (inserts,
//! extracts, gathers, shuffles) plus the memory traffic in bytes. This is
//! the data the calibration layer in `snslp-bench` joins against the
//! static cost model's predicted savings.

use snslp_ir::{BinOp, Function, InstId, InstKind};

/// Widest vector the lane histogram resolves exactly; wider operations
/// are clamped into the last bucket (none of the modelled targets go
/// past 8 lanes).
pub const MAX_LANES: usize = 8;

/// Coarse dynamic opcode classes. Every executed instruction falls in
/// exactly one class, so per-class op counts sum to the run's
/// `dyn_insts` (an invariant the fuzz oracle checks on every case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Plain arithmetic/logic: binary ops, unaries, casts, compares,
    /// selects, constant materialization, and address arithmetic.
    Alu,
    /// Integer or float division/remainder (the expensive ALU tail the
    /// cost model prices separately).
    DivRem,
    /// Loads and stores.
    Memory,
    /// Vector packing/unpacking: splats, build-vectors (gathers),
    /// element inserts/extracts, shuffles.
    Packing,
    /// Jumps, branches, returns.
    Control,
}

impl OpClass {
    /// All classes, in report order.
    pub const ALL: [OpClass; 5] = [
        OpClass::Alu,
        OpClass::DivRem,
        OpClass::Memory,
        OpClass::Packing,
        OpClass::Control,
    ];

    /// Stable snake_case name used in JSON reports and machine lines.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Alu => "alu",
            OpClass::DivRem => "div_rem",
            OpClass::Memory => "memory",
            OpClass::Packing => "packing",
            OpClass::Control => "control",
        }
    }

    /// Position of this class in [`OpClass::ALL`] (and in the `ops` /
    /// `cycles` arrays of a [`DynProfile`]).
    pub fn index(self) -> usize {
        match self {
            OpClass::Alu => 0,
            OpClass::DivRem => 1,
            OpClass::Memory => 2,
            OpClass::Packing => 3,
            OpClass::Control => 4,
        }
    }
}

/// Per-run dynamic execution profile, collected by the interpreter
/// alongside `cycles`/`dyn_insts`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DynProfile {
    /// Dynamic instruction count per [`OpClass`] (indexed by
    /// [`OpClass::ALL`] order). Sums to the run's `dyn_insts`.
    pub ops: [u64; 5],
    /// Simulated cycles per [`OpClass`]. Sums to the run's `cycles`.
    pub cycles: [u64; 5],
    /// Instructions that produced or consumed only scalars.
    pub scalar_ops: u64,
    /// Instructions that produced or consumed a vector.
    pub vector_ops: u64,
    /// Total vector lane slots across all vector operations (a 4-lane op
    /// contributes 4); `lane_slots / vector_ops` is the mean width.
    pub lane_slots: u64,
    /// Histogram of vector operation widths: `lanes_hist[w]` counts the
    /// vector ops that used exactly `w` lanes (clamped to [`MAX_LANES`]).
    pub lanes_hist: [u64; MAX_LANES + 1],
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Bytes read by loads.
    pub bytes_loaded: u64,
    /// Bytes written by stores.
    pub bytes_stored: u64,
    /// Lane inserts (`insertelement`).
    pub inserts: u64,
    /// Lane extracts (`extractelement`).
    pub extracts: u64,
    /// Build-vector gathers (packing N scalars into a vector).
    pub gathers: u64,
    /// Shuffles.
    pub shuffles: u64,
    /// Splats.
    pub splats: u64,
}

impl DynProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed instruction with its simulated cost. Called
    /// by the interpreter once per dynamic instruction (phis and
    /// parameters are free and never reach the execution loop).
    pub fn record(&mut self, f: &Function, id: InstId, cost: u64) {
        let kind = f.kind(id);
        let class = classify(kind);
        self.ops[class.index()] += 1;
        self.cycles[class.index()] += cost;

        match lanes_of(f, id, kind) {
            Some(lanes) => {
                self.vector_ops += 1;
                self.lane_slots += u64::from(lanes);
                self.lanes_hist[(lanes as usize).min(MAX_LANES)] += 1;
            }
            None => self.scalar_ops += 1,
        }

        match kind {
            InstKind::Load { .. } => {
                self.loads += 1;
                self.bytes_loaded += u64::from(f.ty(id).size_bytes());
            }
            InstKind::Store { value, .. } => {
                self.stores += 1;
                self.bytes_stored += u64::from(f.ty(*value).size_bytes());
            }
            InstKind::InsertElement { .. } => self.inserts += 1,
            InstKind::ExtractElement { .. } => self.extracts += 1,
            InstKind::BuildVector { .. } => self.gathers += 1,
            InstKind::Shuffle { .. } => self.shuffles += 1,
            InstKind::Splat { .. } => self.splats += 1,
            _ => {}
        }
    }

    /// Dynamic instruction count for one class.
    pub fn ops_of(&self, class: OpClass) -> u64 {
        self.ops[class.index()]
    }

    /// Simulated cycles for one class.
    pub fn cycles_of(&self, class: OpClass) -> u64 {
        self.cycles[class.index()]
    }

    /// Sum of all per-class op counts; equals the run's `dyn_insts`.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Sum of all per-class cycles; equals the run's `cycles`.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Dynamic memory operations (loads + stores).
    pub fn mem_ops(&self) -> u64 {
        self.loads + self.stores
    }

    /// Total packing overhead (inserts + extracts + gathers + shuffles +
    /// splats); equals the `packing` class count.
    pub fn packing_ops(&self) -> u64 {
        self.inserts + self.extracts + self.gathers + self.shuffles + self.splats
    }

    /// Mean lanes per vector operation, or `None` if nothing vectorized.
    pub fn mean_lanes(&self) -> Option<f64> {
        if self.vector_ops == 0 {
            None
        } else {
            Some(self.lane_slots as f64 / self.vector_ops as f64)
        }
    }

    /// Accumulates `other` into `self` (for aggregating runs).
    pub fn merge(&mut self, other: &DynProfile) {
        for i in 0..self.ops.len() {
            self.ops[i] += other.ops[i];
            self.cycles[i] += other.cycles[i];
        }
        for i in 0..self.lanes_hist.len() {
            self.lanes_hist[i] += other.lanes_hist[i];
        }
        self.scalar_ops += other.scalar_ops;
        self.vector_ops += other.vector_ops;
        self.lane_slots += other.lane_slots;
        self.loads += other.loads;
        self.stores += other.stores;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
        self.inserts += other.inserts;
        self.extracts += other.extracts;
        self.gathers += other.gathers;
        self.shuffles += other.shuffles;
        self.splats += other.splats;
    }

    /// Multi-line human rendering (used by `snslpc --dyn-profile`).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "dynamic ops: {} ({} scalar, {} vector)",
            self.total_ops(),
            self.scalar_ops,
            self.vector_ops
        );
        for class in OpClass::ALL {
            let _ = writeln!(
                s,
                "  {:<8} ops={:<8} cycles={}",
                class.name(),
                self.ops_of(class),
                self.cycles_of(class)
            );
        }
        let _ = writeln!(
            s,
            "memory: {} loads / {} stores, {} B read / {} B written",
            self.loads, self.stores, self.bytes_loaded, self.bytes_stored
        );
        let _ = writeln!(
            s,
            "packing: {} inserts, {} extracts, {} gathers, {} shuffles, {} splats",
            self.inserts, self.extracts, self.gathers, self.shuffles, self.splats
        );
        match self.mean_lanes() {
            Some(mean) => {
                let hist: Vec<String> = (1..=MAX_LANES)
                    .filter(|&w| self.lanes_hist[w] > 0)
                    .map(|w| format!("{w}x{}", self.lanes_hist[w]))
                    .collect();
                let _ = writeln!(
                    s,
                    "lanes: mean {:.2} per vector op [{}]",
                    mean,
                    hist.join(" ")
                );
            }
            None => {
                let _ = writeln!(s, "lanes: no vector ops");
            }
        }
        s
    }
}

/// Coarse class of one instruction kind.
///
/// Public so the native backend's hotness accounting buckets each lowered
/// instruction with exactly the same rule the interpreter uses — the
/// per-class reconciliation invariant depends on the two sides agreeing.
pub fn classify(kind: &InstKind) -> OpClass {
    match kind {
        // Never executed by the loop (parameters are bound up front, phis
        // resolve in their own phase), but classified for completeness.
        InstKind::Param(_) | InstKind::Phi { .. } => OpClass::Alu,
        InstKind::Const(_) | InstKind::PtrAdd { .. } => OpClass::Alu,
        InstKind::Binary { op, .. } => match op {
            BinOp::Div | BinOp::Rem => OpClass::DivRem,
            _ => OpClass::Alu,
        },
        InstKind::BinaryLanewise { ops, .. } => {
            if ops.iter().any(|o| matches!(o, BinOp::Div | BinOp::Rem)) {
                OpClass::DivRem
            } else {
                OpClass::Alu
            }
        }
        InstKind::Unary { .. }
        | InstKind::Cast { .. }
        | InstKind::Cmp { .. }
        | InstKind::Select { .. } => OpClass::Alu,
        InstKind::Load { .. } | InstKind::Store { .. } => OpClass::Memory,
        InstKind::Splat { .. }
        | InstKind::BuildVector { .. }
        | InstKind::ExtractElement { .. }
        | InstKind::InsertElement { .. }
        | InstKind::Shuffle { .. } => OpClass::Packing,
        InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Ret { .. } => OpClass::Control,
    }
}

/// Vector width of one instruction, or `None` for purely scalar work.
/// Judged by the widest vector the instruction touches: a store of a
/// vector and an extract *from* a vector are vector operations even
/// though their own result is `void`/scalar.
fn lanes_of(f: &Function, id: InstId, kind: &InstKind) -> Option<u8> {
    let own = f.ty(id).as_vector().map(|v| v.lanes);
    let operand = match kind {
        InstKind::Store { value, .. } => f.ty(*value).as_vector().map(|v| v.lanes),
        InstKind::ExtractElement { vector, .. } => f.ty(*vector).as_vector().map(|v| v.lanes),
        _ => None,
    };
    match (own, operand) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_names_are_unique_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        for (i, class) in OpClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i);
            assert!(seen.insert(class.name()));
        }
    }

    #[test]
    fn merge_accumulates_everything() {
        let mut a = DynProfile::new();
        a.ops[0] = 3;
        a.cycles[0] = 3;
        a.scalar_ops = 3;
        a.loads = 1;
        a.bytes_loaded = 8;
        let mut b = DynProfile::new();
        b.ops[0] = 2;
        b.cycles[0] = 4;
        b.vector_ops = 2;
        b.lane_slots = 8;
        b.lanes_hist[4] = 2;
        a.merge(&b);
        assert_eq!(a.total_ops(), 5);
        assert_eq!(a.total_cycles(), 7);
        assert_eq!(a.vector_ops, 2);
        assert_eq!(a.lanes_hist[4], 2);
        assert_eq!(a.mean_lanes(), Some(4.0));
    }

    #[test]
    fn render_mentions_all_classes() {
        let text = DynProfile::new().render();
        for class in OpClass::ALL {
            assert!(text.contains(class.name()), "{text}");
        }
        assert!(text.contains("no vector ops"));
    }
}
