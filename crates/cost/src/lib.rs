//! # snslp-cost
//!
//! Target descriptions and the instruction cost model shared by the
//! SN-SLP vectorizer (profitability decisions) and the interpreter
//! (cycle accounting). See [`TargetDesc`] and [`CostModel`].
//!
//! # Examples
//!
//! ```
//! use snslp_cost::{CostModel, TargetDesc};
//! use snslp_ir::ScalarType;
//!
//! let model = CostModel::new(TargetDesc::sse2_like());
//! assert_eq!(model.target().max_lanes(ScalarType::F64), 2);
//! assert_eq!(model.gather_cost(2), 2); // paper Fig. 2 units
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod model;
pub mod target;

pub use model::{CostModel, CostParams};
pub use target::TargetDesc;
