//! Target machine descriptions.

use snslp_ir::ScalarType;

/// A (simplified) SIMD target description: what the vectorizer is allowed
/// to generate and how wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetDesc {
    name: String,
    register_bits: u32,
    lanewise_altop: bool,
}

impl TargetDesc {
    /// Creates a custom target.
    ///
    /// # Panics
    ///
    /// Panics if `register_bits` is not a power of two ≥ 64.
    pub fn new(name: impl Into<String>, register_bits: u32, lanewise_altop: bool) -> Self {
        assert!(
            register_bits >= 64 && register_bits.is_power_of_two(),
            "register width must be a power of two ≥ 64"
        );
        TargetDesc {
            name: name.into(),
            register_bits,
            lanewise_altop,
        }
    }

    /// A 128-bit SSE2-class target with `addsub`-style lane-alternating
    /// instructions (the paper's evaluation machine supports SSE3
    /// `addsubps`/`addsubpd`).
    pub fn sse2_like() -> Self {
        TargetDesc::new("sse2-like", 128, true)
    }

    /// A 256-bit AVX2-class target.
    pub fn avx2_like() -> Self {
        TargetDesc::new("avx2-like", 256, true)
    }

    /// A 128-bit target *without* lane-alternating instructions; mixed
    /// add/sub groups must be emulated with two ops and a shuffle.
    pub fn no_altop_128() -> Self {
        TargetDesc::new("no-altop-128", 128, false)
    }

    /// Target name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// SIMD register width in bits.
    pub fn register_bits(&self) -> u32 {
        self.register_bits
    }

    /// Whether the target has single-instruction lane-alternating binary
    /// ops (x86 `addsub` family).
    pub fn has_lanewise_altop(&self) -> bool {
        self.lanewise_altop
    }

    /// The maximum number of lanes of `elem` that fit in one register.
    pub fn max_lanes(&self, elem: ScalarType) -> u8 {
        (self.register_bits / (elem.size_bytes() * 8)) as u8
    }

    /// All vector factors worth trying for `elem`, widest first
    /// (e.g. `[2]` for `f64` at 128 bits, `[4, 2]` for `f32`).
    pub fn vector_factors(&self, elem: ScalarType) -> Vec<u8> {
        let mut out = Vec::new();
        let mut vf = self.max_lanes(elem);
        while vf >= 2 {
            out.push(vf);
            vf /= 2;
        }
        out
    }
}

impl Default for TargetDesc {
    fn default() -> Self {
        TargetDesc::sse2_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_math() {
        let t = TargetDesc::sse2_like();
        assert_eq!(t.max_lanes(ScalarType::F64), 2);
        assert_eq!(t.max_lanes(ScalarType::F32), 4);
        assert_eq!(t.max_lanes(ScalarType::I32), 4);
        let t = TargetDesc::avx2_like();
        assert_eq!(t.max_lanes(ScalarType::F64), 4);
        assert_eq!(t.max_lanes(ScalarType::I32), 8);
    }

    #[test]
    fn vector_factors_widest_first() {
        let t = TargetDesc::avx2_like();
        assert_eq!(t.vector_factors(ScalarType::F32), vec![8, 4, 2]);
        assert_eq!(t.vector_factors(ScalarType::F64), vec![4, 2]);
        let t = TargetDesc::sse2_like();
        assert_eq!(t.vector_factors(ScalarType::F64), vec![2]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_width() {
        let _ = TargetDesc::new("bad", 96, false);
    }
}
