//! The instruction cost model.
//!
//! Two views of cost are provided:
//!
//! * **compile-time cost** ([`CostModel::compile_cost`]) — the static
//!   estimate the SLP vectorizer uses for profitability, in the paper's
//!   units (a vectorizable node of width 2 saves 1, a gather of 2 scalars
//!   costs 2, an alternating add/sub node costs +1 relative to scalar);
//! * **execution cost** ([`CostModel::exec_cost`]) — the per-dynamic-
//!   instruction cycle estimate used by the interpreter. It deliberately
//!   differs from the compile-time view in a few places (e.g. `addsub`
//!   executes in one cycle even though the static model is conservative),
//!   reproducing the paper's observation (§V-A) that the static cost model
//!   is not a perfect predictor of real performance.

use snslp_ir::{BinOp, Function, InstId, InstKind, Type, UnOp};

use crate::target::TargetDesc;

/// Tunable cost parameters (compile-time view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostParams {
    /// Cost of a simple scalar or vector ALU op.
    pub binop: i32,
    /// Cost of a division (scalar or vector).
    pub div: i32,
    /// Cost of a square root.
    pub sqrt: i32,
    /// Cost of a load (scalar or full-width vector).
    pub load: i32,
    /// Cost of a store (scalar or full-width vector).
    pub store: i32,
    /// Cost of inserting one scalar into a vector lane.
    pub insert: i32,
    /// Cost of extracting one scalar from a vector lane.
    pub extract: i32,
    /// Cost of a shuffle/splat.
    pub shuffle: i32,
    /// Extra cost of a lane-alternating binary op over a plain one when
    /// the target supports it natively.
    pub altop_penalty: i32,
    /// Extra cost when it must be emulated (two ops + blend).
    pub altop_emulation_penalty: i32,
}

impl Default for CostParams {
    fn default() -> Self {
        // Calibrated so the worked examples of the paper hold exactly:
        // Fig. 2: (L)SLP graph cost 0, SN-SLP graph cost -6.
        // Fig. 3: (L)SLP graph cost +4, SN-SLP graph cost -6.
        CostParams {
            binop: 1,
            div: 8,
            sqrt: 8,
            load: 1,
            store: 1,
            insert: 1,
            extract: 1,
            shuffle: 1,
            altop_penalty: 2,
            altop_emulation_penalty: 3,
        }
    }
}

/// Target description plus cost parameters.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    target: TargetDesc,
    params: CostParams,
}

impl CostModel {
    /// Creates a cost model with default parameters for `target`.
    pub fn new(target: TargetDesc) -> Self {
        CostModel {
            target,
            params: CostParams::default(),
        }
    }

    /// Creates a cost model with explicit parameters.
    pub fn with_params(target: TargetDesc, params: CostParams) -> Self {
        CostModel { target, params }
    }

    /// The target description.
    pub fn target(&self) -> &TargetDesc {
        &self.target
    }

    /// The cost parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    fn binop_cost(&self, op: BinOp) -> i32 {
        match op {
            BinOp::Div | BinOp::Rem => self.params.div,
            _ => self.params.binop,
        }
    }

    /// Whether a lane-wise op pattern maps onto the target's `addsub`
    /// instruction family (add/sub lanes only).
    fn lanewise_is_native(&self, ops: &[BinOp]) -> bool {
        self.target.has_lanewise_altop() && ops.iter().all(|o| matches!(o, BinOp::Add | BinOp::Sub))
    }

    /// Compile-time cost of one instruction (scalar or vector).
    ///
    /// Used by the vectorizer to price both the scalar code it removes and
    /// the vector code it inserts.
    pub fn compile_cost(&self, f: &Function, id: InstId) -> i32 {
        self.compile_cost_of(f, f.kind(id), f.ty(id))
    }

    /// Compile-time cost of a hypothetical instruction of kind `kind` and
    /// type `ty` (the instruction need not exist yet).
    pub fn compile_cost_of(&self, f: &Function, kind: &InstKind, ty: Type) -> i32 {
        let p = &self.params;
        match kind {
            InstKind::Param(_) | InstKind::Const(_) => 0,
            InstKind::Binary { op, .. } => self.binop_cost(*op),
            InstKind::BinaryLanewise { ops, .. } => {
                let worst = ops
                    .iter()
                    .map(|&o| self.binop_cost(o))
                    .max()
                    .unwrap_or(p.binop);
                // The x86 `addsub` family only covers add/sub lanes;
                // other alternating ops are emulated (two ops + blend).
                if self.lanewise_is_native(ops) {
                    worst + p.altop_penalty
                } else {
                    worst + p.altop_emulation_penalty
                }
            }
            InstKind::Unary { op, .. } => match op {
                UnOp::Sqrt => p.sqrt,
                _ => p.binop,
            },
            InstKind::Cast { .. } => p.binop,
            InstKind::Cmp { .. } | InstKind::Select { .. } => p.binop,
            InstKind::Load { .. } => p.load,
            InstKind::Store { value, .. } => {
                let _ = f.ty(*value);
                p.store
            }
            InstKind::PtrAdd { .. } => 0,
            InstKind::Splat { .. } => p.shuffle,
            InstKind::BuildVector { elems } => p.insert * elems.len() as i32,
            InstKind::ExtractElement { .. } => p.extract,
            InstKind::InsertElement { .. } => p.insert,
            InstKind::Shuffle { .. } => p.shuffle,
            InstKind::Phi { .. } => 0,
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Ret { .. } => {
                let _ = ty;
                0
            }
        }
    }

    /// Cost of gathering `lanes` scalars into a vector (a non-vectorizable
    /// SLP node): one insert per lane.
    pub fn gather_cost(&self, lanes: u8) -> i32 {
        self.params.insert * i32::from(lanes)
    }

    /// Cost of extracting a lane for an external (scalar) user of a
    /// vectorized value.
    pub fn extract_cost(&self) -> i32 {
        self.params.extract
    }

    /// Execution (cycle) cost of one dynamic instruction. Used by the
    /// interpreter's cycle accounting.
    pub fn exec_cost(&self, f: &Function, id: InstId) -> u64 {
        let kind = f.kind(id);
        match kind {
            InstKind::Param(_) | InstKind::Const(_) | InstKind::Phi { .. } => 0,
            InstKind::Binary { op, .. } => match op {
                BinOp::Div | BinOp::Rem => 8,
                _ => 1,
            },
            // Real hardware executes addsub at plain-op cost, but a
            // lane-wise op containing divisions pays the divider latency;
            // non-native patterns pay a blend overhead.
            InstKind::BinaryLanewise { ops, .. } => {
                let worst = ops
                    .iter()
                    .map(|&o| match o {
                        BinOp::Div | BinOp::Rem => 8,
                        _ => 1,
                    })
                    .max()
                    .unwrap_or(1);
                worst + if self.lanewise_is_native(ops) { 0 } else { 2 }
            }
            InstKind::Unary { op, .. } => match op {
                UnOp::Sqrt => 12,
                _ => 1,
            },
            InstKind::Cast { .. } => 1,
            InstKind::Cmp { .. } | InstKind::Select { .. } => 1,
            InstKind::Load { .. } => 3,
            InstKind::Store { .. } => 3,
            InstKind::PtrAdd { .. } => 0,
            InstKind::Splat { .. } => 1,
            InstKind::BuildVector { elems } => elems.len() as u64,
            InstKind::ExtractElement { .. } => 1,
            InstKind::InsertElement { .. } => 1,
            InstKind::Shuffle { .. } => 1,
            InstKind::Jump { .. } | InstKind::Branch { .. } | InstKind::Ret { .. } => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{FunctionBuilder, Param, ScalarType};

    fn model() -> CostModel {
        CostModel::new(TargetDesc::sse2_like())
    }

    #[test]
    fn paper_unit_calibration_vectorizable_node() {
        // A vectorizable group of 2 adds: vector cost 1, scalar cost 2,
        // node delta = -1 (the paper's per-node saving in Figs. 2/3).
        let m = model();
        assert_eq!(m.params().binop, 1);
        // delta = vec - scalar = 1 - 2 = -1
        assert_eq!(m.params().binop - 2 * m.params().binop, -1);
    }

    #[test]
    fn paper_unit_calibration_gather() {
        // A gather of 2 scalars costs +2 (paper Fig. 2).
        assert_eq!(model().gather_cost(2), 2);
        assert_eq!(model().gather_cost(4), 4);
    }

    #[test]
    fn paper_unit_calibration_altop_node() {
        // An alternating [add,sub] node of width 2: vector cost 3,
        // scalar cost 2, node delta = +1 (paper Fig. 3).
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F64, p);
        let v = fb.splat(x, 2);
        let a = fb.binary_lanewise(vec![BinOp::Add, BinOp::Sub], v, v);
        fb.store(p, a);
        fb.ret(None);
        let f = fb.finish();
        let m = model();
        assert_eq!(m.compile_cost(&f, a), 3);
        assert_eq!(m.compile_cost(&f, a) - 2 * m.params().binop, 1);
    }

    #[test]
    fn altop_costs_more_without_hw_support() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F64, p);
        let v = fb.splat(x, 2);
        let a = fb.binary_lanewise(vec![BinOp::Add, BinOp::Sub], v, v);
        fb.store(p, a);
        fb.ret(None);
        let f = fb.finish();
        let hw = CostModel::new(TargetDesc::sse2_like());
        let sw = CostModel::new(TargetDesc::no_altop_128());
        assert!(sw.compile_cost(&f, a) > hw.compile_cost(&f, a));
    }

    #[test]
    fn div_is_expensive_in_both_views() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F64, p);
        let d = fb.div(x, x);
        let s = fb.add(x, x);
        fb.store(p, d);
        fb.store(p, s);
        fb.ret(None);
        let f = fb.finish();
        let m = model();
        assert!(m.compile_cost(&f, d) > m.compile_cost(&f, s));
        assert!(m.exec_cost(&f, d) > m.exec_cost(&f, s));
    }

    #[test]
    fn ptradd_and_consts_are_free() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let q = fb.ptradd_const(p, 8);
        let x = fb.load(ScalarType::F64, q);
        fb.store(q, x);
        fb.ret(None);
        let f = fb.finish();
        let m = model();
        assert_eq!(m.compile_cost(&f, q), 0);
        assert_eq!(m.exec_cost(&f, q), 0);
    }

    #[test]
    fn build_vector_prices_per_lane() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F32, p);
        let bv = fb.build_vector(vec![x, x, x, x]);
        fb.store(p, bv);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(model().compile_cost(&f, bv), 4);
    }

    #[test]
    fn muldiv_lanewise_is_never_native() {
        // x86 has addsubps/addsubpd but no mul/div alternating op: even on
        // an altop-capable target the mul/div pattern pays emulation.
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F64, p);
        let v = fb.splat(x, 2);
        let a = fb.binary_lanewise(vec![BinOp::Mul, BinOp::Div], v, v);
        fb.store(p, a);
        fb.ret(None);
        let f = fb.finish();
        let m = model();
        // worst op (div 8) + emulation penalty (3)
        assert_eq!(m.compile_cost(&f, a), 11);
        // exec: div latency 8 + blend 2
        assert_eq!(m.exec_cost(&f, a), 10);
    }

    #[test]
    fn addsub_lanewise_executes_at_unit_cost_with_hw() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::F64, p);
        let v = fb.splat(x, 2);
        let a = fb.binary_lanewise(vec![BinOp::Add, BinOp::Sub], v, v);
        fb.store(p, a);
        fb.ret(None);
        let f = fb.finish();
        assert_eq!(CostModel::new(TargetDesc::sse2_like()).exec_cost(&f, a), 1);
        assert_eq!(
            CostModel::new(TargetDesc::no_altop_128()).exec_cost(&f, a),
            3
        );
    }

    #[test]
    fn cast_costs_are_modest() {
        let mut fb = FunctionBuilder::new("t", vec![Param::noalias_ptr("p")], Type::Void);
        let p = fb.func().param(0);
        let x = fb.load(ScalarType::I32, p);
        let c = fb.cast(snslp_ir::CastKind::Sitofp, ScalarType::F32, x);
        fb.store(p, c);
        fb.ret(None);
        let f = fb.finish();
        let m = model();
        assert_eq!(m.compile_cost(&f, c), m.params().binop);
        assert_eq!(m.exec_cost(&f, c), 1);
    }
}
