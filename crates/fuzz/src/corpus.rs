//! Corpus management: failing cases are written out as self-contained
//! `.snir` fixtures in the filecheck dialect used by
//! `crates/core/tests/snir/`, so a reproducer dropped into
//! `crates/core/tests/snir/fuzz/` immediately becomes a regression test
//! (the harness re-runs every mode and, when an `INPUTS:` line is
//! present, the differential equivalence check as well).

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use snslp_interp::ArgSpec;

use crate::gen::Case;
use crate::oracle::Divergence;

/// Renders one argument in the harness `INPUTS:` dialect
/// (`ty[v,v,...]` for arrays, `ty:v` for scalars).
fn render_arg(a: &ArgSpec) -> String {
    fn join<T: std::fmt::Debug>(xs: &[T]) -> String {
        let mut s = String::new();
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{x:?}");
        }
        s
    }
    match a {
        ArgSpec::F64Array(v) => format!("f64[{}]", join(v)),
        ArgSpec::F32Array(v) => format!("f32[{}]", join(v)),
        ArgSpec::I32Array(v) => format!("i32[{}]", join(v)),
        ArgSpec::I64Array(v) => format!("i64[{}]", join(v)),
        ArgSpec::I64(v) => format!("i64:{v}"),
        ArgSpec::I32(v) => format!("i32:{v}"),
        ArgSpec::F64(v) => format!("f64:{v:?}"),
        ArgSpec::F32(v) => format!("f32:{v:?}"),
    }
}

/// The `INPUTS:` payload for a case's arguments.
pub fn inputs_line(args: &[ArgSpec]) -> String {
    args.iter().map(render_arg).collect::<Vec<_>>().join(" ")
}

/// Stable fixture file name for a case.
pub fn fixture_name(case: &Case, reduced: bool) -> String {
    let suffix = if reduced { "_min" } else { "" };
    format!("fuzz_s{:x}_i{}{suffix}.snir", case.seed, case.index)
}

/// Renders a case as a filecheck fixture.
///
/// `include_inputs` must be `false` for cases whose baseline execution
/// traps: the harness treats a failing original run as a test error, so
/// trap reproducers are checked in as compile-and-verify-only fixtures.
pub fn render_fixture(
    case: &Case,
    divergence: Option<&Divergence>,
    include_inputs: bool,
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; Reproducer found by snslp-fuzz (seed={:#x}, index={}).",
        case.seed, case.index
    );
    if let Some(d) = divergence {
        let first = d.detail.lines().next().unwrap_or("");
        let _ = writeln!(out, "; stage: {} — {}", d.stage, first);
    }
    let _ = writeln!(out, "; RUN: slp lslp snslp");
    if include_inputs {
        let _ = writeln!(out, "; INPUTS: {}", inputs_line(&case.args));
    }
    let _ = write!(out, "{}", case.function);
    out
}

/// Writes the fixture into `dir` (created if needed); returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_fixture(
    dir: &Path,
    case: &Case,
    divergence: Option<&Divergence>,
    include_inputs: bool,
    reduced: bool,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(fixture_name(case, reduced));
    fs::write(&path, render_fixture(case, divergence, include_inputs))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use snslp_ir::parse_function_str;

    #[test]
    fn rendered_fixture_reparses() {
        for i in 0..25 {
            let case = generate(11, i);
            let text = render_fixture(&case, None, true);
            // `;` lines are comments to the parser; the function must
            // survive the round trip.
            let stripped: String = text
                .lines()
                .filter(|l| !l.trim_start().starts_with(';'))
                .collect::<Vec<_>>()
                .join("\n");
            parse_function_str(&stripped)
                .unwrap_or_else(|e| panic!("fixture {i} does not reparse: {e}\n{text}"));
        }
    }

    #[test]
    fn inputs_line_uses_harness_dialect() {
        let args = vec![
            ArgSpec::F64Array(vec![1.0, -0.25]),
            ArgSpec::I32Array(vec![3, -4]),
            ArgSpec::I64(7),
        ];
        assert_eq!(inputs_line(&args), "f64[1.0,-0.25] i32[3,-4] i64:7");
    }
}
