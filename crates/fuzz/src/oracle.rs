//! Differential execution oracle.
//!
//! For one generated case, the oracle runs the original function as the
//! ground truth, then pushes clones through the scalar O3 cleanup
//! pipeline and through [`run_slp`] at each requested mode, executing
//! every variant on identical inputs. Results must agree bit-for-bit
//! (floats within the reassociation tolerance of
//! [`snslp_interp::outcomes_match`]); traps count as comparable outcomes
//! and must agree in kind. On top of execution equivalence, a set of
//! structural invariants is cross-checked on every [`FunctionReport`].
//!
//! A second, stricter differential axis runs per function: the native
//! x86-64 JIT backend executes the *same* function as the interpreter
//! via [`snslp_jit::check_backends`], where every observable (return
//! bits, trap kind, remaining fuel, the whole memory image) must match
//! **bit-exactly** — there is no reassociation tolerance because both
//! backends run identical IR. Functions the JIT declines are fallback,
//! not divergence.

use std::sync::Mutex;

use snslp_core::{optimize_o3, run_slp, FunctionReport, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::{outcomes_match, run_with_args, ExecOptions, RunOutcome, Trap};
use snslp_ir::{verify, Function};
use snslp_trace::{Counter, Facet, Profile};

use crate::gen::Case;

/// Serializes the profiled pass window: the profiler's facet mask and
/// flushed-track store are process-global, so two concurrent cases must
/// not interleave their clear/run/take sections or one would observe the
/// other's decision spans.
static PROF_GATE: Mutex<()> = Mutex::new(());

/// Runs the pass with the profiler enabled on a clean store and returns
/// the spans recorded for exactly this run, restoring the previous facet
/// mask afterwards.
fn run_slp_profiled(f: &mut Function, cfg: &SlpConfig) -> (FunctionReport, Profile) {
    let _gate = PROF_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let prev = snslp_trace::set_facets(snslp_trace::facets() | Facet::Prof as u32);
    snslp_trace::prof::clear();
    let report = run_slp(f, cfg);
    let profile = snslp_trace::prof::take_profile();
    snslp_trace::set_facets(prev);
    (report, profile)
}

/// The observable result of one execution: either it ran to completion
/// or it trapped. Non-trap interpreter errors (type mismatches, undefined
/// values) never occur on verifier-clean IR and are reported as
/// divergences by the oracle.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Ran to completion.
    Ran(Box<RunOutcome>),
    /// Trapped (out-of-bounds access, division by zero, fuel).
    Trapped(Trap),
}

impl Outcome {
    fn describe(&self) -> String {
        match self {
            Outcome::Ran(_) => "completed".to_string(),
            Outcome::Trapped(t) => format!("trap:{}", t.kind()),
        }
    }
}

/// One confirmed disagreement between the original function and a
/// transformed variant (or a broken pass invariant).
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Batch seed of the failing case.
    pub seed: u64,
    /// Case index within the batch.
    pub index: u64,
    /// Stage that failed: `o3`, a mode label (`slp`, `lslp`, `snslp`),
    /// `<stage>-verify` / `<stage>-invariant` variants, or `jit` /
    /// `<mode>-jit` for interpreter-vs-native differential failures.
    pub stage: String,
    /// Human-readable description of the mismatch.
    pub detail: String,
    /// Printed IR of the (original) failing function.
    pub function: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at seed={:#x} index={} stage={}: {}",
            self.seed, self.index, self.stage, self.detail
        )
    }
}

/// Runs `f` on `args` and classifies the result.
///
/// # Errors
///
/// Returns a description for non-trap interpreter errors, which indicate
/// a bug somewhere (the IR is verifier-clean by construction).
pub fn execute(
    f: &Function,
    args: &[snslp_interp::ArgSpec],
    model: &CostModel,
) -> Result<Outcome, String> {
    let _p = snslp_trace::ProfSpan::enter("oracle.execute");
    match run_with_args(f, args, model, &ExecOptions::default()) {
        Ok(o) => Ok(Outcome::Ran(Box::new(o))),
        Err(e) => match e.as_trap() {
            Some(t) => Ok(Outcome::Trapped(t)),
            None => Err(format!("non-trap interpreter error: {e}")),
        },
    }
}

/// Compares two outcomes: completed runs via [`outcomes_match`], traps by
/// kind (the trapping address may legitimately differ once stores are
/// widened). Memory is not compared across traps — the vectorizer may
/// reorder a trapping operation relative to neighbouring stores.
pub fn compare(a: &Outcome, b: &Outcome) -> Result<(), String> {
    match (a, b) {
        (Outcome::Ran(x), Outcome::Ran(y)) => outcomes_match(x, y),
        (Outcome::Trapped(x), Outcome::Trapped(y)) => {
            if x.kind() == y.kind() {
                Ok(())
            } else {
                Err(format!("trap kinds differ: {} vs {}", x.kind(), y.kind()))
            }
        }
        (x, y) => Err(format!(
            "outcome shapes differ: {} vs {}",
            x.describe(),
            y.describe()
        )),
    }
}

/// Structural cross-checks on a pass report, independent of execution.
fn check_invariants(report: &FunctionReport, threshold: i32) -> Result<(), String> {
    let v = report.vectorized_graphs();
    let counted = report.metrics.get(Counter::GraphsVectorized);
    if counted != v as u64 {
        return Err(format!(
            "metrics claim {counted} vectorized graphs, report has {v}"
        ));
    }
    let emitted = report.metrics.get(Counter::RemarksEmitted);
    if emitted != report.remarks.len() as u64 {
        return Err(format!(
            "metrics claim {emitted} remarks, report has {}",
            report.remarks.len()
        ));
    }
    let remark_v = report.remarks.iter().filter(|r| r.vectorized).count();
    if remark_v != v {
        return Err(format!(
            "{remark_v} remarks claim vectorization, report has {v} vectorized graphs"
        ));
    }
    // Cache accounting: the pass scores exclusively through the memoized
    // path, which bumps the eval counter and then exactly one of
    // hits/misses per request. A gap means a scoring call site bypassed
    // the cache (or double-counted).
    let evals = report.metrics.get(Counter::LookaheadScoreEvals);
    let hits = report.metrics.get(Counter::LookaheadCacheHits);
    let misses = report.metrics.get(Counter::LookaheadCacheMisses);
    if hits + misses != evals {
        return Err(format!(
            "cache accounting broken: {hits} hits + {misses} misses != {evals} score evals"
        ));
    }
    for (i, g) in report.graphs.iter().enumerate() {
        if g.vectorized && g.cost >= threshold {
            return Err(format!(
                "graph {i} vectorized with cost {} >= threshold {threshold}",
                g.cost
            ));
        }
        if g.num_vector_nodes + g.num_gather_nodes > g.num_nodes {
            return Err(format!(
                "graph {i} node counts inconsistent: {} vector + {} gather > {} total",
                g.num_vector_nodes, g.num_gather_nodes, g.num_nodes
            ));
        }
    }
    Ok(())
}

/// Decision-anchor integrity — the contract the `snslp-report` join
/// depends on: every remark's [`DecisionId`](snslp_trace::DecisionId) is
/// unique within the run and anchored to the function it was minted in;
/// every remark that committed a cost resolves to exactly one graph
/// snapshot carrying the same id; and every remark resolves to exactly
/// one `decision` profiler span in the same run.
fn check_decision_attribution(report: &FunctionReport, profile: &Profile) -> Result<(), String> {
    let mut seen = std::collections::BTreeSet::new();
    for r in &report.remarks {
        let id = r.decision.render();
        if r.decision.function != report.function {
            return Err(format!(
                "remark at {} anchored to foreign function: {id}",
                r.site
            ));
        }
        if r.decision.inst != r.inst {
            return Err(format!(
                "remark at {} has inst {} but its anchor says {}",
                r.site, r.inst, r.decision.inst
            ));
        }
        if !seen.insert(id.clone()) {
            return Err(format!("duplicate decision id {id}"));
        }
    }
    // Costed remarks and graph snapshots must be the same decisions 1:1
    // (equal counts plus exactly-one per remark makes it a bijection,
    // since remark ids are unique).
    let costed = report.remarks.iter().filter(|r| r.cost.is_some());
    for r in costed.clone() {
        let n = report
            .graphs
            .iter()
            .filter(|g| g.decision == r.decision)
            .count();
        if n != 1 {
            return Err(format!(
                "decision {} resolves to {n} graph snapshots, want exactly 1",
                r.decision.render()
            ));
        }
    }
    let (costed, graphs) = (costed.count(), report.graphs.len());
    if graphs != costed {
        return Err(format!(
            "{graphs} graph snapshots for {costed} costed remarks"
        ));
    }
    let mut span_count: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for track in &profile.tracks {
        for ev in &track.events {
            if ev.name == "decision" {
                if let Some(label) = &ev.label {
                    *span_count.entry(label).or_default() += 1;
                }
            }
        }
    }
    for r in &report.remarks {
        let id = r.decision.render();
        let n = span_count.get(id.as_str()).copied().unwrap_or(0);
        if n != 1 {
            return Err(format!(
                "decision {id} resolves to {n} profiler spans, want exactly 1"
            ));
        }
    }
    Ok(())
}

/// Dynamic-profile self-consistency: every executed instruction lands in
/// exactly one opcode class, so the profile's category totals must
/// reproduce the interpreter's own `dyn_insts`/`cycles` counters exactly.
/// Trapped runs carry no profile and pass vacuously.
fn check_profile_totals(out: &Outcome) -> Result<(), String> {
    let Outcome::Ran(run) = out else {
        return Ok(());
    };
    let p = &run.exec.profile;
    if p.total_ops() != run.exec.dyn_insts {
        return Err(format!(
            "profile op classes sum to {} but the interpreter executed {} instructions",
            p.total_ops(),
            run.exec.dyn_insts
        ));
    }
    if p.total_cycles() != run.exec.cycles {
        return Err(format!(
            "profile class cycles sum to {} but the interpreter charged {}",
            p.total_cycles(),
            run.exec.cycles
        ));
    }
    Ok(())
}

/// A run of never-vectorized IR must report zero dynamic vector ops: the
/// baseline and the scalar O3 pipeline cannot touch a vector type.
fn check_scalar_profile(out: &Outcome) -> Result<(), String> {
    let Outcome::Ran(run) = out else {
        return Ok(());
    };
    let p = &run.exec.profile;
    if p.vector_ops != 0 {
        return Err(format!(
            "scalar pipeline executed {} dynamic vector ops",
            p.vector_ops
        ));
    }
    Ok(())
}

/// Vectorization packs memory accesses — it must never *add* dynamic
/// memory operations over the scalar baseline on the same inputs (a
/// gathered graph keeps the scalar loads; a widened one merges them).
fn check_mem_traffic(baseline: &Outcome, after: &Outcome) -> Result<(), String> {
    if let (Outcome::Ran(b), Outcome::Ran(a)) = (baseline, after) {
        let (bm, am) = (b.exec.profile.mem_ops(), a.exec.profile.mem_ops());
        if am > bm {
            return Err(format!(
                "vectorized variant executes {am} dynamic memory ops, scalar baseline only {bm}"
            ));
        }
    }
    Ok(())
}

/// Lower-case stage label for a mode.
pub fn mode_key(mode: SlpMode) -> &'static str {
    match mode {
        SlpMode::Slp => "slp",
        SlpMode::Lslp => "lslp",
        SlpMode::SnSlp => "snslp",
    }
}

/// Everything learned from a clean (non-diverging) case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// One pass report per requested mode, in request order.
    pub reports: Vec<FunctionReport>,
    /// The trap the baseline run hit, if any (all variants then trapped
    /// with the same kind).
    pub baseline_trap: Option<Trap>,
}

/// Checks one case at every requested mode. Returns the per-mode pass
/// reports on success (for metrics aggregation).
///
/// # Errors
///
/// Returns the first [`Divergence`] found.
pub fn check_case(
    case: &Case,
    model: &CostModel,
    modes: &[SlpMode],
) -> Result<CaseOutcome, Box<Divergence>> {
    let _p = snslp_trace::ProfSpan::enter_with("oracle.check_case", || {
        format!("seed={:#x} index={}", case.seed, case.index)
    });
    let fail = |stage: &str, detail: String| {
        Box::new(Divergence {
            seed: case.seed,
            index: case.index,
            stage: stage.to_string(),
            detail,
            function: case.function.to_string(),
        })
    };

    if let Err(e) = verify(&case.function) {
        return Err(fail(
            "generator",
            format!("original fails verification: {e}"),
        ));
    }
    let baseline = execute(&case.function, &case.args, model).map_err(|e| fail("baseline", e))?;
    check_profile_totals(&baseline)
        .and_then(|()| check_scalar_profile(&baseline))
        .map_err(|e| fail("baseline-dyn-invariant", e))?;

    // Interpreter vs native JIT on the untransformed function: every
    // observable must match bit-exactly (a declined function is not a
    // divergence).
    snslp_jit::check_backends(&case.function, &case.args, model, &ExecOptions::default())
        .map_err(|e| fail("jit", e))?;
    // Instrumented hotness on the same inputs: per-class native
    // execution counts must reconcile exactly with the interpreter's
    // DynProfile (a declined function is not a divergence).
    snslp_jit::check_hotness(&case.function, &case.args, model, &ExecOptions::default())
        .map_err(|e| fail("jit-hot", e))?;

    // Scalar O3 cleanup alone must already be semantics-preserving.
    let mut o3 = case.function.clone();
    optimize_o3(&mut o3);
    if let Err(e) = verify(&o3) {
        return Err(fail("o3-verify", format!("{e}\n{o3}")));
    }
    let after_o3 = execute(&o3, &case.args, model).map_err(|e| fail("o3", e))?;
    compare(&baseline, &after_o3).map_err(|e| fail("o3", e))?;
    check_profile_totals(&after_o3)
        .and_then(|()| check_scalar_profile(&after_o3))
        .map_err(|e| fail("o3-dyn-invariant", e))?;

    let mut reports = Vec::with_capacity(modes.len());
    for &mode in modes {
        let key = mode_key(mode);
        let mut f = case.function.clone();
        // verify_after stays off: the pass would panic on broken IR,
        // while the oracle wants to report it as a divergence instead.
        let cfg = SlpConfig::new(mode).with_model(model.clone());
        let (report, profile) = run_slp_profiled(&mut f, &cfg);
        if let Err(e) = verify(&f) {
            return Err(fail(&format!("{key}-verify"), format!("{e}\n{f}")));
        }
        if let Err(e) = check_invariants(&report, cfg.threshold) {
            return Err(fail(&format!("{key}-invariant"), e));
        }
        if let Err(e) = check_decision_attribution(&report, &profile) {
            return Err(fail(&format!("{key}-decision-invariant"), e));
        }
        let after = execute(&f, &case.args, model).map_err(|e| fail(key, e))?;
        compare(&baseline, &after).map_err(|e| {
            fail(
                key,
                format!(
                    "{e}\n--- after {key} ({} graphs vectorized) ---\n{f}",
                    report.vectorized_graphs()
                ),
            )
        })?;
        check_profile_totals(&after)
            .and_then(|()| check_mem_traffic(&baseline, &after))
            .map_err(|e| fail(&format!("{key}-dyn-invariant"), e))?;
        // The vectorized variant must also execute identically under the
        // native backend — this is the path where a miscompiled SSE
        // lowering of a committed SN-SLP graph would surface.
        snslp_jit::check_backends(&f, &case.args, model, &ExecOptions::default())
            .map_err(|e| fail(&format!("{key}-jit"), e))?;
        snslp_jit::check_hotness(&f, &case.args, model, &ExecOptions::default())
            .map_err(|e| fail(&format!("{key}-jit-hot"), e))?;
        reports.push(report);
    }
    let baseline_trap = match baseline {
        Outcome::Trapped(t) => Some(t),
        Outcome::Ran(_) => None,
    };
    Ok(CaseOutcome {
        reports,
        baseline_trap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    const ALL_MODES: [SlpMode; 3] = [SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp];

    #[test]
    fn small_batch_has_no_divergences() {
        let model = CostModel::default();
        for i in 0..150 {
            let case = generate(0xFA22, i);
            if let Err(d) = check_case(&case, &model, &ALL_MODES) {
                panic!("unexpected divergence: {d}\n{}", d.function);
            }
        }
    }

    #[test]
    fn jit_axis_is_exercised_non_vacuously() {
        // The `jit` / `<mode>-jit` stages must not be permanently
        // NotCovered: on a native host, a healthy share of generated
        // cases actually runs under both backends.
        if !snslp_jit::native_supported() {
            return;
        }
        let model = CostModel::default();
        let opts = ExecOptions::default();
        let covered = (0..40)
            .filter(|&i| {
                let case = generate(0xFA22, i);
                matches!(
                    snslp_jit::check_backends(&case.function, &case.args, &model, &opts),
                    Ok(snslp_jit::BackendDiff::Agreed)
                )
            })
            .count();
        assert!(covered > 0, "no generated case was JIT-covered");
    }

    #[test]
    fn dyn_invariants_catch_broken_profiles() {
        use snslp_interp::ExecResult;

        let ran = |cycles, dyn_insts, profile| {
            Outcome::Ran(Box::new(RunOutcome {
                exec: ExecResult {
                    function: "t".to_string(),
                    ret: None,
                    cycles,
                    dyn_insts,
                    profile,
                },
                arrays: Vec::new(),
            }))
        };

        // An empty profile only matches an empty run.
        let empty = ran(0, 0, Default::default());
        assert!(check_profile_totals(&empty).is_ok());
        assert!(check_scalar_profile(&empty).is_ok());
        let hollow = ran(3, 1, Default::default());
        assert!(check_profile_totals(&hollow).is_err());

        // Vector activity flunks the scalar-pipeline check ...
        let mut p = snslp_interp::DynProfile::new();
        p.vector_ops = 2;
        let vectorish = ran(0, 0, p.clone());
        assert!(check_scalar_profile(&vectorish).is_err());

        // ... and extra dynamic memory ops flunk the traffic check.
        let mut more = snslp_interp::DynProfile::new();
        more.loads = 4;
        let mut fewer = snslp_interp::DynProfile::new();
        fewer.loads = 2;
        assert!(check_mem_traffic(&ran(0, 0, fewer.clone()), &ran(0, 0, more.clone())).is_err());
        assert!(check_mem_traffic(&ran(0, 0, more), &ran(0, 0, fewer)).is_ok());

        // Traps carry no profile: vacuously fine on either side.
        let trap = Outcome::Trapped(Trap::DivisionByZero);
        assert!(check_profile_totals(&trap).is_ok());
        assert!(check_mem_traffic(&trap, &vectorish).is_ok());
    }

    #[test]
    fn decision_attribution_is_cross_checked() {
        // Find a generated case that actually makes decisions, so the
        // invariant is exercised non-vacuously.
        let cfg = SlpConfig::new(SlpMode::SnSlp);
        let (case, report, profile) = (0..80)
            .find_map(|i| {
                let case = generate(0xDEC1, i);
                let mut f = case.function.clone();
                let (report, profile) = run_slp_profiled(&mut f, &cfg);
                (!report.remarks.is_empty()).then_some((case, report, profile))
            })
            .expect("no case in the batch produced a remark");
        drop(case);
        check_decision_attribution(&report, &profile).unwrap();

        // A duplicated remark re-uses an anchor: rejected.
        let mut dup = report.clone();
        let r = dup.remarks[0].clone();
        dup.remarks.push(r);
        assert!(check_decision_attribution(&dup, &profile)
            .unwrap_err()
            .contains("duplicate decision id"));

        // A lost graph snapshot breaks the remark<->graph bijection.
        if !report.graphs.is_empty() {
            let mut lost = report.clone();
            lost.graphs.pop();
            assert!(check_decision_attribution(&lost, &profile).is_err());
        }

        // A run with no recorded spans cannot attribute compile time.
        let empty = Profile { tracks: Vec::new() };
        assert!(check_decision_attribution(&report, &empty)
            .unwrap_err()
            .contains("0 profiler spans"));
    }

    #[test]
    fn trap_kinds_compare_strictly() {
        let a = Outcome::Trapped(Trap::DivisionByZero);
        let b = Outcome::Trapped(Trap::OutOfBounds(64));
        assert!(compare(&a, &b).is_err());
        let c = Outcome::Trapped(Trap::OutOfBounds(128));
        assert!(compare(&b, &c).is_ok());
    }
}
