//! Deterministic PRNG for the fuzzer: SplitMix64 seeding xoshiro256**.
//!
//! The fuzzer must be reproducible from a single CLI seed with zero
//! external dependencies, so we carry our own generator. xoshiro256**
//! (Blackman & Vigna) is the standard choice for non-cryptographic
//! simulation work; SplitMix64 turns an arbitrary 64-bit seed into a
//! well-mixed 256-bit state (and also derives independent per-case
//! streams from `(seed, index)` pairs).

/// One step of SplitMix64 over `*state`, returning the output word.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** generator with SplitMix64 seeding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives the independent stream for case `index` of batch `seed`.
    /// Mixing through SplitMix64 keeps nearby `(seed, index)` pairs
    /// uncorrelated.
    pub fn for_case(seed: u64, index: u64) -> Self {
        let mut sm = seed;
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
        Rng::new(splitmix64(&mut sm2))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform value in `0..n` (`n > 0`), via 128-bit widening multiply.
    /// The tiny modulo bias of this method is irrelevant for fuzzing.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly picks an element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(0xC60);
        let mut b = Rng::new(0xC60);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn case_streams_are_independent() {
        let mut a = Rng::for_case(0xC60, 0);
        let mut b = Rng::for_case(0xC60, 1);
        assert_ne!(a.next_u64(), b.next_u64());
        // And reproducible.
        let mut a2 = Rng::for_case(0xC60, 0);
        assert_eq!(Rng::for_case(0xC60, 0).next_u64(), a2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::new(9);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }
}
