//! ddmin-style test-case reducer.
//!
//! Given a failing [`Case`] and a predicate that re-checks failure, the
//! reducer greedily applies shrinking mutations — dropping stores,
//! short-circuiting instructions to one of their operands, degrading
//! loads and constants to simple immediates — keeping a mutation only if
//! the result (a) still verifies, (b) still round-trips through the
//! printer and parser, and (c) still fails the predicate. Iterates to a
//! fixpoint, so the survivor is 1-minimal with respect to the mutation
//! set: no single remaining mutation can be applied without losing the
//! failure.

use snslp_ir::{parse_function_str, verify, Constant, Function, InstId, InstKind, Type};

use crate::gen::Case;

/// Statistics from one reduction run.
#[derive(Debug, Clone, Default)]
pub struct ReduceStats {
    /// Fixpoint rounds executed.
    pub rounds: usize,
    /// Candidate mutations tried.
    pub attempts: usize,
    /// Mutations accepted.
    pub accepted: usize,
    /// Linked instructions before reduction.
    pub insts_before: usize,
    /// Linked instructions after reduction.
    pub insts_after: usize,
}

/// One shrinking mutation candidate.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Unlink a store (dead code behind it goes too).
    DropStore(InstId),
    /// Replace all uses of an instruction with one same-typed operand.
    ShortCircuit(InstId, InstId),
    /// Replace all uses of a load with a constant of its type.
    LoadToConst(InstId),
    /// Degrade a constant to `0` (ints) / `1.0` (floats).
    SimplifyConst(InstId),
}

fn candidates(f: &Function) -> Vec<Mutation> {
    let mut out = Vec::new();
    // Stores first (largest cuts), then value short-circuits, then
    // constant degradation (cosmetic, helps readability of survivors).
    let mut shorts = Vec::new();
    let mut consts = Vec::new();
    for b in f.block_ids() {
        for &id in f.block(b).insts() {
            match f.kind(id) {
                InstKind::Store { .. } => out.push(Mutation::DropStore(id)),
                InstKind::Binary { lhs, .. } => shorts.push(Mutation::ShortCircuit(id, *lhs)),
                InstKind::BinaryLanewise { lhs, .. } => {
                    shorts.push(Mutation::ShortCircuit(id, *lhs))
                }
                InstKind::Unary { operand, .. } => {
                    shorts.push(Mutation::ShortCircuit(id, *operand))
                }
                InstKind::Select { on_true, .. } => {
                    shorts.push(Mutation::ShortCircuit(id, *on_true))
                }
                InstKind::Load { .. } => {
                    if matches!(f.ty(id), Type::Scalar(_)) {
                        shorts.push(Mutation::LoadToConst(id));
                    }
                }
                InstKind::Const(c) => {
                    let already = match c {
                        Constant::I32(v) => *v == 0,
                        Constant::I64(v) => *v == 0,
                        Constant::F32(v) => *v == 1.0,
                        Constant::F64(v) => *v == 1.0,
                    };
                    if !already {
                        consts.push(Mutation::SimplifyConst(id));
                    }
                }
                _ => {}
            }
        }
    }
    out.extend(shorts);
    out.extend(consts);
    out
}

fn default_const(ty: Type) -> Option<Constant> {
    match ty {
        Type::Scalar(st) => Some(match st {
            snslp_ir::ScalarType::I32 => Constant::I32(0),
            snslp_ir::ScalarType::I64 => Constant::I64(0),
            snslp_ir::ScalarType::F32 => Constant::F32(1.0),
            snslp_ir::ScalarType::F64 => Constant::F64(1.0),
        }),
        _ => None,
    }
}

/// Applies `m` to a clone of `f`; returns `None` when the mutation does
/// not apply (e.g. the instruction is already unlinked).
fn apply(f: &Function, m: Mutation) -> Option<Function> {
    let mut g = f.clone();
    match m {
        Mutation::DropStore(id) => {
            let b = g.block_of(id)?;
            g.unlink_inst(b, id);
        }
        Mutation::ShortCircuit(id, operand) => {
            g.block_of(id)?;
            g.replace_all_uses(id, operand);
        }
        Mutation::LoadToConst(id) => {
            let b = g.block_of(id)?;
            let c = default_const(g.ty(id))?;
            let pos = g.block(b).insts().iter().position(|&i| i == id)?;
            let k = g.insert_inst(b, pos, InstKind::Const(c), g.ty(id));
            g.replace_all_uses(id, k);
        }
        Mutation::SimplifyConst(id) => {
            let c = default_const(g.ty(id))?;
            *g.kind_mut(id) = InstKind::Const(c);
        }
    }
    g.remove_dead_code();
    Some(g)
}

/// Checks the mutated function is still a well-formed, re-parseable
/// reproducer.
fn well_formed(f: &Function) -> bool {
    if verify(f).is_err() {
        return false;
    }
    match parse_function_str(&f.to_string()) {
        Ok(re) => verify(&re).is_ok(),
        Err(_) => false,
    }
}

/// Re-prints and re-parses so value names are dense and textual again
/// (mutations leave arena gaps; the survivor should read cleanly).
fn normalize(f: &Function) -> Function {
    parse_function_str(&f.to_string()).unwrap_or_else(|_| f.clone())
}

/// Shrinks `case` while `still_fails` keeps returning `true` for the
/// shrunk variants. Returns the minimal case and reduction statistics.
///
/// `still_fails` must return `true` for `case` itself; if it does not,
/// the case is returned unchanged.
pub fn reduce(case: &Case, mut still_fails: impl FnMut(&Case) -> bool) -> (Case, ReduceStats) {
    let mut stats = ReduceStats {
        insts_before: case.function.num_linked_insts(),
        ..ReduceStats::default()
    };
    let mut current = case.clone();
    if !still_fails(&current) {
        stats.insts_after = stats.insts_before;
        return (current, stats);
    }
    loop {
        stats.rounds += 1;
        let mut changed = false;
        for m in candidates(&current.function) {
            stats.attempts += 1;
            let Some(g) = apply(&current.function, m) else {
                continue;
            };
            if g.num_linked_insts() >= current.function.num_linked_insts()
                && !matches!(m, Mutation::SimplifyConst(_))
            {
                continue;
            }
            if !well_formed(&g) {
                continue;
            }
            let candidate = Case {
                function: g,
                ..current.clone()
            };
            if still_fails(&candidate) {
                current = candidate;
                stats.accepted += 1;
                changed = true;
            }
        }
        // Renumber between rounds: accepted mutations leave arena gaps,
        // and candidate ids must be regenerated against the new arena.
        current.function = normalize(&current.function);
        if !changed {
            break;
        }
    }
    stats.insts_after = current.function.num_linked_insts();
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_interp::ArgSpec;
    use snslp_ir::{FunctionBuilder, Param, ScalarType};

    /// A function with two store runs and a div buried in one of them.
    fn sample_case() -> Case {
        let mut fb = FunctionBuilder::new(
            "red",
            vec![Param::noalias_ptr("dst"), Param::noalias_ptr("s0")],
            Type::Void,
        );
        let dst = fb.func().param(0);
        let s0 = fb.func().param(1);
        for lane in 0..4 {
            let p = fb.ptradd_const(s0, lane * 8);
            let x = fb.load(ScalarType::F64, p);
            let c = fb.const_f64(2.5);
            let m = fb.mul(x, c);
            let d = fb.binary(snslp_ir::BinOp::Div, m, c);
            let q = fb.ptradd_const(dst, lane * 8);
            fb.store(q, d);
        }
        for lane in 0..4 {
            let p = fb.ptradd_const(s0, lane * 8);
            let x = fb.load(ScalarType::F64, p);
            let q = fb.ptradd_const(dst, (8 + lane) * 8);
            fb.store(q, x);
        }
        fb.ret(None);
        Case {
            function: fb.finish(),
            args: vec![
                ArgSpec::F64Array(vec![0.0; 16]),
                ArgSpec::F64Array(vec![1.0; 8]),
            ],
            seed: 0,
            index: 0,
        }
    }

    #[test]
    fn shrinks_to_minimal_div_reproducer() {
        let case = sample_case();
        let before = case.function.num_linked_insts();
        let (min, stats) = reduce(&case, |c| c.function.to_string().contains("div"));
        assert!(min.function.to_string().contains("div"));
        assert!(stats.insts_after < before, "reducer made no progress");
        // Everything not needed to keep a div alive (the whole second
        // store run, the mul, the loads) must be gone: one store of one
        // div of constants, plus addressing and ret.
        assert!(
            min.function.num_linked_insts() <= 8,
            "survivor not minimal:\n{}",
            min.function
        );
        verify(&min.function).unwrap();
    }

    #[test]
    fn shrinks_a_jit_differential_reproducer() {
        use snslp_cost::CostModel;
        use snslp_interp::ExecOptions;
        use snslp_ir::CastKind;

        // The fuzz driver shrinks a `jit`-stage divergence with a
        // predicate that re-runs the backend differential. Exercise the
        // same plumbing against the JIT coverage boundary: one lane of a
        // vectorizable function smuggles in `fptosi`, which the JIT
        // declines, and the reducer must strip everything else while the
        // differential keeps reporting that exact reason.
        let mut fb = FunctionBuilder::new(
            "jitred",
            vec![Param::noalias_ptr("dst"), Param::noalias_ptr("s0")],
            Type::Void,
        );
        let dst = fb.func().param(0);
        let s0 = fb.func().param(1);
        for lane in 0..4 {
            let p = fb.ptradd_const(s0, lane * 8);
            let x = fb.load(ScalarType::F64, p);
            let c = fb.const_f64(2.5);
            let m = fb.mul(x, c);
            let q = fb.ptradd_const(dst, lane * 8);
            fb.store(q, m);
        }
        let p = fb.ptradd_const(s0, 0);
        let x = fb.load(ScalarType::F64, p);
        let i = fb.cast(CastKind::Fptosi, ScalarType::I64, x);
        let q = fb.ptradd_const(dst, 64);
        fb.store(q, i);
        fb.ret(None);
        let case = Case {
            function: fb.finish(),
            args: vec![
                ArgSpec::F64Array(vec![0.0; 16]),
                ArgSpec::F64Array(vec![1.0; 8]),
            ],
            seed: 0,
            index: 0,
        };

        let model = CostModel::default();
        let opts = ExecOptions::default();
        let still_uncovered = |c: &Case| {
            matches!(
                snslp_jit::check_backends(&c.function, &c.args, &model, &opts),
                Ok(snslp_jit::BackendDiff::NotCovered { ref reason }) if reason.contains("fptosi")
            )
        };
        let before = case.function.num_linked_insts();
        let (min, stats) = reduce(&case, still_uncovered);
        assert!(stats.insts_after < before, "reducer made no progress");
        assert!(
            min.function.to_string().contains("fptosi"),
            "survivor lost the reproducer:\n{}",
            min.function
        );
        verify(&min.function).unwrap();
    }

    #[test]
    fn unreproducible_case_is_returned_unchanged() {
        let case = sample_case();
        let (same, stats) = reduce(&case, |_| false);
        assert_eq!(same.function.to_string(), case.function.to_string());
        assert_eq!(stats.accepted, 0);
    }
}
