//! Deterministic typed-IR generator biased toward SLP-rich shapes.
//!
//! Each `(seed, index)` pair maps to one verifier-clean function plus
//! matching interpreter arguments. The generator leans on the shapes the
//! paper cares about: consecutive store runs feeding isomorphic (or
//! alternating add/sub, mul/div) expression trees with randomized
//! association and leaf placement, reduction chains, casts, cmp/select,
//! aliasing and `noalias` pointer setups, and counted loops / diamonds
//! for phi coverage.
//!
//! Numeric ranges are chosen so fast-math reassociation noise stays well
//! inside the differential oracle's float tolerance: float pools exclude
//! zero (no inf/NaN from division) and bound magnitudes, and value-
//! changing casts are applied only to raw loads (never to reassociated
//! intermediates).

use snslp_interp::ArgSpec;
use snslp_ir::{
    BinOp, CastKind, CmpPred, Constant, Function, FunctionBuilder, InstId, Param, ScalarType, Type,
    UnOp,
};

use crate::rng::Rng;

/// One generated fuzz case: a verifier-clean function and arguments that
/// match its parameter list.
#[derive(Debug, Clone)]
pub struct Case {
    /// The generated function.
    pub function: Function,
    /// Interpreter arguments (one per parameter, arrays for pointers).
    pub args: Vec<ArgSpec>,
    /// Batch seed this case came from.
    pub seed: u64,
    /// Case index within the batch.
    pub index: u64,
}

/// Per-lane addressing pattern of a load leaf.
#[derive(Debug, Clone, Copy)]
enum AddrPat {
    /// `base + lane` — consecutive, the vectorizer's favourite.
    Consec,
    /// `base + (lanes-1-lane)` — reversed run.
    Rev,
    /// `base` — same element in every lane (broadcast).
    Broadcast,
    /// `base + 2*lane` — strided gather.
    Stride2,
}

/// How the binary opcode varies across lanes.
#[derive(Debug, Clone)]
enum OpPat {
    /// Same opcode in every lane (isomorphic).
    Same(BinOp),
    /// Even lanes use the first opcode, odd lanes its inverse partner
    /// (the Super-Node alternating add/sub, mul/div case).
    Alt(BinOp, BinOp),
    /// Arbitrary per-lane opcode from one family.
    PerLane(Vec<BinOp>),
}

impl OpPat {
    fn at(&self, lane: usize) -> BinOp {
        match self {
            OpPat::Same(op) => *op,
            OpPat::Alt(a, b) => {
                if lane.is_multiple_of(2) {
                    *a
                } else {
                    *b
                }
            }
            OpPat::PerLane(ops) => ops[lane % ops.len()],
        }
    }
}

/// Expression template, instantiated once per lane of the store run.
#[derive(Debug, Clone)]
enum Shape {
    /// Load from source param `src` (cast to the case element type when
    /// the source array has a different element type).
    Load { src: usize, base: i64, pat: AddrPat },
    /// Constant; `lane_delta` makes the value lane-dependent.
    Const { slot: usize, lane_delta: bool },
    /// The diamond join phi, broadcast across lanes (diamond layout only).
    PhiVal,
    /// Binary node; opcode may vary per lane (see [`OpPat`]).
    Bin {
        ops: OpPat,
        lhs: Box<Shape>,
        rhs: Box<Shape>,
    },
    /// Unary node.
    Un(UnOp, Box<Shape>),
    /// `select(cmp(pred, a, b), t, e)`.
    Select {
        pred: CmpPred,
        a: Box<Shape>,
        b: Box<Shape>,
        t: Box<Shape>,
        e: Box<Shape>,
    },
}

/// Top-level control-flow layout of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Single block.
    Straight,
    /// Store run inside a counted loop.
    Loop,
    /// Branch + join phi feeding the store run.
    Diamond,
}

/// Reduction plan: fold `leaves` loads of `src` with `op` (random
/// association), store the result to `dst[dst_idx]`.
#[derive(Debug, Clone)]
struct RedPlan {
    op: BinOp,
    leaves: usize,
    src: usize,
    base: i64,
    dst_idx: i64,
}

struct Plan {
    elem: ScalarType,
    fast_math: bool,
    lanes: usize,
    layout: Layout,
    trip: i64,
    src_types: Vec<ScalarType>,
    dst_noalias: bool,
    src_noalias: Vec<bool>,
    oob: bool,
    d0: i64,
    shape: Shape,
    extra_store: Option<(i64, Shape)>,
    reduction: Option<RedPlan>,
    ret_scalar: bool,
    const_ints: [i64; 4],
    const_floats: [f64; 4],
}

const F64_POOL: &[f64] = &[
    -4.0, -2.5, -2.0, -1.5, -1.0, -0.5, -0.25, 0.25, 0.5, 1.0, 1.5, 2.0, 2.5, 4.0,
];
const F32_POOL: &[f32] = &[
    -1.5, -1.25, -1.0, -0.75, -0.5, -0.25, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5,
];

struct Planner<'a> {
    rng: &'a mut Rng,
    elem: ScalarType,
    fast_math: bool,
    allow_div: bool,
    num_srcs: usize,
    lanes: usize,
    layout: Layout,
    /// Remaining multiplicative nesting budget (overflow control).
    mul_budget: u32,
}

impl Planner<'_> {
    fn leaf(&mut self) -> Shape {
        let r = self.rng.below(10);
        if r < 7 {
            let src = self.rng.below(self.num_srcs as u64) as usize;
            let base = self.rng.range_i64(0, 3);
            let pat = match self.rng.below(8) {
                0 => AddrPat::Rev,
                1 => AddrPat::Broadcast,
                2 => AddrPat::Stride2,
                _ => AddrPat::Consec,
            };
            Shape::Load { src, base, pat }
        } else if r < 9 || self.layout != Layout::Diamond {
            Shape::Const {
                slot: self.rng.below(4) as usize,
                lane_delta: self.rng.chance(1, 2),
            }
        } else {
            Shape::PhiVal
        }
    }

    /// Opcode pool for plain (non-chain) binary nodes.
    fn plain_ops(&self) -> Vec<BinOp> {
        if self.elem.is_float() {
            // Div only as a chain op (its rhs there is a leaf, which the
            // value pools keep away from zero).
            vec![BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max]
        } else {
            let mut ops = vec![
                BinOp::Add,
                BinOp::Sub,
                BinOp::Mul,
                BinOp::Min,
                BinOp::Max,
                BinOp::And,
                BinOp::Or,
                BinOp::Xor,
                BinOp::Shl,
                BinOp::Shr,
            ];
            if self.allow_div {
                ops.push(BinOp::Div);
                ops.push(BinOp::Rem);
            }
            ops
        }
    }

    fn op_pat(&mut self, family: (BinOp, BinOp)) -> OpPat {
        match self.rng.below(3) {
            0 => OpPat::Same(if self.rng.chance(1, 2) {
                family.0
            } else {
                family.1
            }),
            1 => OpPat::Alt(family.0, family.1),
            _ => {
                let ops = (0..self.lanes)
                    .map(|_| {
                        if self.rng.chance(1, 2) {
                            family.0
                        } else {
                            family.1
                        }
                    })
                    .collect();
                OpPat::PerLane(ops)
            }
        }
    }

    /// Random-association fold of `k` leaves with opcodes from one
    /// operator family — the paper's operator/inverse chains.
    ///
    /// `leaf_only` keeps the fold's leaves to raw loads/constants. It is
    /// set for mul/div chains so a float division never sees a
    /// reassociated subtree as its denominator: a subtree that cancels
    /// to an exact zero in one association can leave rounding residue in
    /// another, turning `x/0 = inf` against `x/eps = huge` into a false
    /// divergence.
    fn chain(&mut self, family: (BinOp, BinOp), k: usize, depth: u32, leaf_only: bool) -> Shape {
        if k == 1 {
            return if leaf_only {
                self.leaf()
            } else {
                self.shape(depth.saturating_sub(1))
            };
        }
        let split = 1 + self.rng.below(k as u64 - 1) as usize;
        let lhs = self.chain(family, split, depth, leaf_only);
        let rhs = self.chain(family, k - split, depth, leaf_only);
        Shape::Bin {
            ops: self.op_pat(family),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn shape(&mut self, depth: u32) -> Shape {
        if depth == 0 || self.rng.chance(1, 5) {
            return self.leaf();
        }
        let muldiv_ok = self.mul_budget > 0
            && (self.elem.is_int() && self.allow_div || self.elem.is_float() && self.fast_math);
        match self.rng.below(10) {
            0..=3 => {
                // Operator/inverse chain.
                let family = if muldiv_ok && self.rng.chance(1, 3) {
                    self.mul_budget -= 1;
                    (BinOp::Mul, BinOp::Div)
                } else {
                    (BinOp::Add, BinOp::Sub)
                };
                let k = 2 + self.rng.below(5) as usize; // 2..=6 leaves
                let leaf_only = family.0 == BinOp::Mul && self.elem.is_float();
                let sh = self.chain(family, k, depth, leaf_only);
                if family.0 == BinOp::Mul {
                    self.mul_budget += 1;
                }
                sh
            }
            4..=6 => {
                let ops = self.plain_ops();
                let op = *self.rng.pick(&ops);
                let budget_hit = matches!(op, BinOp::Mul | BinOp::Div) && self.elem.is_float();
                if budget_hit && self.mul_budget == 0 {
                    return self.leaf();
                }
                if budget_hit {
                    self.mul_budget -= 1;
                }
                let sh = Shape::Bin {
                    ops: OpPat::Same(op),
                    lhs: Box::new(self.shape(depth - 1)),
                    rhs: Box::new(self.shape(depth - 1)),
                };
                if budget_hit {
                    self.mul_budget += 1;
                }
                sh
            }
            7 => {
                let op = if self.elem.is_float() && self.rng.chance(1, 3) {
                    if self.rng.chance(1, 2) {
                        UnOp::Abs
                    } else {
                        UnOp::Sqrt
                    }
                } else if self.elem.is_int() && self.rng.chance(1, 4) {
                    UnOp::Not
                } else {
                    UnOp::Neg
                };
                Shape::Un(op, Box::new(self.shape(depth - 1)))
            }
            8 => {
                // cmp operands must be exact (not reassociated) for
                // floats under fast-math, or a hair of rounding noise
                // could flip the select and blow past the tolerance.
                let exact_only = self.elem.is_float() && self.fast_math;
                let (a, b) = if exact_only {
                    (self.leaf(), self.leaf())
                } else {
                    (self.shape(depth - 1), self.shape(depth - 1))
                };
                let pred = *self.rng.pick(&[
                    CmpPred::Eq,
                    CmpPred::Ne,
                    CmpPred::Lt,
                    CmpPred::Le,
                    CmpPred::Gt,
                    CmpPred::Ge,
                ]);
                Shape::Select {
                    pred,
                    a: Box::new(a),
                    b: Box::new(b),
                    t: Box::new(self.shape(depth - 1)),
                    e: Box::new(self.shape(depth - 1)),
                }
            }
            _ => self.leaf(),
        }
    }
}

fn plan(rng: &mut Rng) -> Plan {
    let elem = *rng.pick(&[
        ScalarType::F64,
        ScalarType::F64,
        ScalarType::F32,
        ScalarType::I32,
        ScalarType::I64,
    ]);
    let fast_math = if elem.is_float() {
        rng.chance(3, 4)
    } else {
        rng.chance(1, 4)
    };
    let layout = match rng.below(20) {
        0..=10 => Layout::Straight,
        11..=15 => Layout::Loop,
        _ => Layout::Diamond,
    };
    let oob = layout == Layout::Straight && rng.chance(1, 32);
    // Int division traps; keep it out of deliberate-OOB cases so the
    // oracle can compare trap kinds strictly.
    let allow_div = elem.is_int() && !oob && rng.chance(1, 2);
    let lanes = *rng.pick(&[2usize, 2, 3, 4, 4, 6, 8]);
    let num_srcs = 1 + rng.below(3) as usize;
    let src_types = (0..num_srcs)
        .map(|_| {
            if rng.chance(7, 10) {
                elem
            } else {
                *rng.pick(&[
                    ScalarType::I32,
                    ScalarType::I64,
                    ScalarType::F32,
                    ScalarType::F64,
                ])
            }
        })
        .collect();
    let mul_budget = if elem == ScalarType::F32 { 1 } else { 2 };
    let mut planner = Planner {
        rng,
        elem,
        fast_math,
        allow_div,
        num_srcs,
        lanes,
        layout,
        mul_budget,
    };
    let depth = 2 + planner.rng.below(2) as u32;
    let shape = planner.shape(depth);
    let extra_store = if layout != Layout::Loop && planner.rng.chance(1, 5) {
        let idx = planner.rng.range_i64(0, lanes as i64 + 3);
        let sh = planner.shape(1);
        Some((idx, sh))
    } else {
        None
    };
    let reduction = if layout == Layout::Straight && planner.rng.chance(3, 10) {
        let op = if elem.is_float() {
            if fast_math {
                *planner
                    .rng
                    .pick(&[BinOp::Add, BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max])
            } else {
                // Without fast-math only exact (min/max) reductions keep
                // the seed collector interested; still worth generating.
                *planner.rng.pick(&[BinOp::Min, BinOp::Max])
            }
        } else {
            *planner
                .rng
                .pick(&[BinOp::Add, BinOp::Mul, BinOp::Min, BinOp::Max])
        };
        Some(RedPlan {
            op,
            leaves: 4 + planner.rng.below(5) as usize,
            src: planner.rng.below(num_srcs as u64) as usize,
            base: planner.rng.range_i64(0, 2),
            dst_idx: lanes as i64 + 4 + planner.rng.range_i64(0, 2),
        })
    } else {
        None
    };
    let d0 = rng.range_i64(0, 2);
    let trip = rng.range_i64(2, 4);
    let dst_noalias = rng.chance(3, 4);
    let src_noalias = (0..num_srcs).map(|_| rng.chance(3, 4)).collect();
    let ret_scalar = layout != Layout::Loop && rng.chance(1, 5);
    let const_ints = [
        rng.range_i64(-4, 6),
        rng.range_i64(-4, 6),
        rng.range_i64(-4, 6),
        rng.range_i64(-4, 6),
    ];
    let const_floats = if elem == ScalarType::F32 {
        [
            f64::from(*rng.pick(F32_POOL)),
            f64::from(*rng.pick(F32_POOL)),
            f64::from(*rng.pick(F32_POOL)),
            f64::from(*rng.pick(F32_POOL)),
        ]
    } else {
        [
            *rng.pick(F64_POOL),
            *rng.pick(F64_POOL),
            *rng.pick(F64_POOL),
            *rng.pick(F64_POOL),
        ]
    };
    Plan {
        elem,
        fast_math,
        lanes,
        layout,
        trip,
        src_types,
        dst_noalias,
        src_noalias,
        oob,
        d0,
        shape,
        extra_store,
        reduction,
        ret_scalar,
        const_ints,
        const_floats,
    }
}

/// Instantiates the plan: emits IR and tracks the maximum element index
/// touched per pointer parameter (for array sizing).
struct Emitter<'a> {
    fb: &'a mut FunctionBuilder,
    plan: &'a Plan,
    /// Base pointer to address from, per pointer param (param itself in
    /// straight-line layouts, the per-iteration pointer inside loops).
    bases: Vec<InstId>,
    /// Extra element offset already applied to `bases` (loop iteration
    /// window), in elements.
    window: i64,
    phi_val: Option<InstId>,
    max_idx: &'a mut Vec<i64>,
}

impl Emitter<'_> {
    /// dst is pointer param 0; sources are params 1..  (`src` is a
    /// source index, so param `src + 1`).
    fn load_leaf(&mut self, src: usize, base: i64, pat: AddrPat, lane: usize) -> InstId {
        let plan = self.plan;
        let local = base
            + match pat {
                AddrPat::Consec => lane as i64,
                AddrPat::Rev => (plan.lanes - 1 - lane) as i64,
                AddrPat::Broadcast => 0,
                AddrPat::Stride2 => 2 * lane as i64,
            };
        let pidx = src + 1;
        let st = plan.src_types[src];
        let worst = self.window
            + base
            + match pat {
                AddrPat::Stride2 => 2 * (plan.lanes as i64 - 1),
                _ => plan.lanes as i64 - 1,
            };
        self.max_idx[pidx] = self.max_idx[pidx].max(worst);
        let p = self
            .fb
            .ptradd_const(self.bases[pidx], local * i64::from(st.size_bytes()));
        let raw = self.fb.load(st, p);
        if st == plan.elem {
            raw
        } else {
            let kind = [
                CastKind::Sitofp,
                CastKind::Fptosi,
                CastKind::Fpext,
                CastKind::Fptrunc,
                CastKind::Sext,
                CastKind::Trunc,
            ]
            .into_iter()
            .find(|k| k.valid_for(st, plan.elem))
            .expect("every scalar type pair has a cast");
            self.fb.cast(kind, plan.elem, raw)
        }
    }

    fn const_leaf(&mut self, slot: usize, lane_delta: bool, lane: usize) -> InstId {
        let plan = self.plan;
        let d = if lane_delta { lane as i64 } else { 0 };
        let c = match plan.elem {
            ScalarType::I32 => Constant::I32((plan.const_ints[slot] + d) as i32),
            ScalarType::I64 => Constant::I64(plan.const_ints[slot] + d),
            ScalarType::F32 => Constant::F32((plan.const_floats[slot] + 0.25 * d as f64) as f32),
            ScalarType::F64 => Constant::F64(plan.const_floats[slot] + 0.25 * d as f64),
        };
        self.fb.constant(c)
    }

    fn emit(&mut self, sh: &Shape, lane: usize) -> InstId {
        match sh {
            Shape::Load { src, base, pat } => self.load_leaf(*src, *base, *pat, lane),
            Shape::Const { slot, lane_delta } => self.const_leaf(*slot, *lane_delta, lane),
            Shape::PhiVal => self
                .phi_val
                .expect("PhiVal shapes only occur in diamond layouts"),
            Shape::Bin { ops, lhs, rhs } => {
                let l = self.emit(lhs, lane);
                let r = self.emit(rhs, lane);
                self.fb.binary(ops.at(lane), l, r)
            }
            Shape::Un(op, inner) => {
                let v = self.emit(inner, lane);
                self.fb.unary(*op, v)
            }
            Shape::Select { pred, a, b, t, e } => {
                let av = self.emit(a, lane);
                let bv = self.emit(b, lane);
                let c = self.fb.cmp(*pred, av, bv);
                let tv = self.emit(t, lane);
                let ev = self.emit(e, lane);
                self.fb.select(c, tv, ev)
            }
        }
    }

    /// Emits the consecutive store run, returning the last stored value.
    fn store_run(&mut self) -> InstId {
        let plan = self.plan;
        let esz = i64::from(plan.elem.size_bytes());
        let mut last = InstId(0);
        if let Some((idx, sh)) = &plan.extra_store {
            if matches!(plan.layout, Layout::Straight | Layout::Diamond) {
                let v = self.emit(&sh.clone(), 0);
                let p = self.fb.ptradd_const(self.bases[0], idx * esz);
                self.max_idx[0] = self.max_idx[0].max(*idx);
                self.fb.store(p, v);
            }
        }
        for lane in 0..plan.lanes {
            let v = self.emit(&plan.shape.clone(), lane);
            let off = plan.d0 + lane as i64;
            let p = self.fb.ptradd_const(self.bases[0], off * esz);
            self.max_idx[0] = self.max_idx[0].max(self.window + plan.d0 + plan.lanes as i64 - 1);
            self.fb.store(p, v);
            last = v;
        }
        last
    }

    fn reduction(&mut self) {
        let Some(red) = &self.plan.reduction else {
            return;
        };
        let red = red.clone();
        let leaves: Vec<InstId> = (0..red.leaves)
            .map(|i| self.load_leaf(red.src, red.base + i as i64, AddrPat::Broadcast, 0))
            .collect();
        // Left-fold; the pass re-associates it into a tree itself.
        let mut acc = leaves[0];
        for &v in &leaves[1..] {
            acc = self.fb.binary(red.op, acc, v);
        }
        let esz = i64::from(self.plan.elem.size_bytes());
        let p = self.fb.ptradd_const(self.bases[0], red.dst_idx * esz);
        self.max_idx[0] = self.max_idx[0].max(red.dst_idx);
        // Account for the non-broadcast worst index of the leaf loads.
        let pidx = red.src + 1;
        self.max_idx[pidx] = self.max_idx[pidx].max(red.base + red.leaves as i64 - 1);
        self.fb.store(p, acc);
    }
}

/// Generates case `index` of the batch with the given `seed`.
pub fn generate(seed: u64, index: u64) -> Case {
    let mut rng = Rng::for_case(seed, index);
    let plan = plan(&mut rng);
    let num_params = 1 + plan.src_types.len();

    let mut params = Vec::new();
    params.push(if plan.dst_noalias {
        Param::noalias_ptr("dst")
    } else {
        Param::new("dst", Type::Ptr)
    });
    for (i, &na) in plan.src_noalias.iter().enumerate() {
        let name = format!("s{i}");
        params.push(if na {
            Param::noalias_ptr(&name)
        } else {
            Param::new(&name, Type::Ptr)
        });
    }
    if plan.layout == Layout::Loop {
        params.push(Param::new("n", Type::scalar(ScalarType::I64)));
    }
    let ret_ty = if plan.ret_scalar {
        Type::scalar(plan.elem)
    } else {
        Type::Void
    };
    let mut fb = FunctionBuilder::new(format!("fuzz_{seed:x}_{index}"), params, ret_ty);
    fb.set_fast_math(plan.fast_math);

    let param_ids: Vec<InstId> = (0..num_params).map(|i| fb.func().param(i)).collect();
    let mut max_idx = vec![-1i64; num_params];

    let ret_val = match plan.layout {
        Layout::Straight => {
            let mut em = Emitter {
                fb: &mut fb,
                plan: &plan,
                bases: param_ids.clone(),
                window: 0,
                phi_val: None,
                max_idx: &mut max_idx,
            };
            let last = em.store_run();
            em.reduction();
            Some(last)
        }
        Layout::Loop => {
            let n = fb.func().param(num_params);
            fb.counted_loop(n, |fb, i| {
                // Per-iteration window: each pointer advances by
                // `lanes` elements of its own type per iteration.
                let mut bases = Vec::with_capacity(num_params);
                for (pi, &pid) in param_ids.iter().enumerate() {
                    let esz = if pi == 0 {
                        i64::from(plan.elem.size_bytes())
                    } else {
                        i64::from(plan.src_types[pi - 1].size_bytes())
                    };
                    let step = fb.const_i64(plan.lanes as i64 * esz);
                    let byte = fb.mul(i, step);
                    bases.push(fb.ptradd(pid, byte));
                }
                let mut em = Emitter {
                    fb,
                    plan: &plan,
                    bases,
                    window: (plan.trip - 1) * plan.lanes as i64,
                    phi_val: None,
                    max_idx: &mut max_idx,
                };
                em.store_run();
            });
            None
        }
        Layout::Diamond => {
            // cond on an exact (non-reassociated) value: a raw load vs a
            // constant.
            let then_b = fb.create_block("then");
            let else_b = fb.create_block("else");
            let join_b = fb.create_block("join");
            let mut em = Emitter {
                fb: &mut fb,
                plan: &plan,
                bases: param_ids.clone(),
                window: 0,
                phi_val: None,
                max_idx: &mut max_idx,
            };
            let x = em.load_leaf(0, 0, AddrPat::Broadcast, 0);
            let c = em.const_leaf(0, false, 0);
            let pred = *Rng::for_case(seed ^ 0x5EED, index).pick(&[
                CmpPred::Lt,
                CmpPred::Gt,
                CmpPred::Le,
                CmpPred::Ne,
            ]);
            let cond = fb.cmp(pred, x, c);
            fb.branch(cond, then_b, else_b);

            fb.switch_to(then_b);
            let mut em = Emitter {
                fb: &mut fb,
                plan: &plan,
                bases: param_ids.clone(),
                window: 0,
                phi_val: None,
                max_idx: &mut max_idx,
            };
            let v1 = em.load_leaf(0, 1, AddrPat::Broadcast, 0);
            fb.jump(join_b);

            fb.switch_to(else_b);
            let mut em = Emitter {
                fb: &mut fb,
                plan: &plan,
                bases: param_ids.clone(),
                window: 0,
                phi_val: None,
                max_idx: &mut max_idx,
            };
            let v2 = em.const_leaf(1, false, 0);
            fb.jump(join_b);

            fb.switch_to(join_b);
            let phi = fb.phi(Type::scalar(plan.elem));
            fb.add_phi_incoming(phi, then_b, v1);
            fb.add_phi_incoming(phi, else_b, v2);
            let mut em = Emitter {
                fb: &mut fb,
                plan: &plan,
                bases: param_ids,
                window: 0,
                phi_val: Some(phi),
                max_idx: &mut max_idx,
            };
            let last = em.store_run();
            Some(last)
        }
    };

    if plan.ret_scalar {
        fb.ret(ret_val);
    } else {
        fb.ret(None);
    }
    let function = fb.finish();

    // Materialize arguments. Array lengths cover every tracked access,
    // with a little slack — except in deliberate-OOB cases, where one
    // array is truncated so the highest-index access faults.
    let mut rng_vals = Rng::for_case(seed ^ 0xA11, index);
    let mut lens: Vec<usize> = max_idx
        .iter()
        .map(|&m| (m.max(0) as usize) + 1 + rng_vals.below(3) as usize)
        .collect();
    if plan.oob {
        let victim = rng_vals.below(num_params as u64) as usize;
        let cut = 1 + rng_vals.below(2) as usize;
        // Only a real fault if the function actually reaches past the
        // new length; the case just runs clean otherwise.
        lens[victim] = lens[victim].saturating_sub(cut).max(1);
    }
    let mut args: Vec<ArgSpec> = Vec::with_capacity(num_params + 1);
    for (pi, &len) in lens.iter().enumerate() {
        let st = if pi == 0 {
            plan.elem
        } else {
            plan.src_types[pi - 1]
        };
        args.push(random_array(&mut rng_vals, st, len));
    }
    if plan.layout == Layout::Loop {
        args.push(ArgSpec::I64(plan.trip));
    }

    Case {
        function,
        args,
        seed,
        index,
    }
}

fn random_array(rng: &mut Rng, st: ScalarType, len: usize) -> ArgSpec {
    match st {
        ScalarType::F64 => ArgSpec::F64Array((0..len).map(|_| *rng.pick(F64_POOL)).collect()),
        ScalarType::F32 => ArgSpec::F32Array((0..len).map(|_| *rng.pick(F32_POOL)).collect()),
        ScalarType::I32 => {
            ArgSpec::I32Array((0..len).map(|_| rng.range_i64(-5, 8) as i32).collect())
        }
        ScalarType::I64 => ArgSpec::I64Array((0..len).map(|_| rng.range_i64(-5, 8)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snslp_ir::{parse_function_str, verify};

    #[test]
    fn generated_functions_are_verifier_clean() {
        for i in 0..300 {
            let case = generate(0xC60, i);
            verify(&case.function)
                .unwrap_or_else(|e| panic!("case {i} fails verification: {e}\n{}", case.function));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for i in 0..20 {
            let a = generate(42, i);
            let b = generate(42, i);
            assert_eq!(a.function.to_string(), b.function.to_string());
            assert_eq!(a.args, b.args);
        }
    }

    #[test]
    fn generated_functions_round_trip_through_the_printer() {
        for i in 0..100 {
            let case = generate(7, i);
            let text = case.function.to_string();
            let re = parse_function_str(&text)
                .unwrap_or_else(|e| panic!("case {i} does not re-parse: {e}\n{text}"));
            // The first print may use non-textual-order value names (the
            // loop builder links a pre-created increment late), so the
            // fixpoint is only required after one parse→print
            // normalization.
            let normal = re.to_string();
            let re2 = parse_function_str(&normal).unwrap_or_else(|e| {
                panic!("case {i} normal form does not re-parse: {e}\n{normal}")
            });
            assert_eq!(re2.to_string(), normal, "case {i} print is not a fixpoint");
            verify(&re2).unwrap_or_else(|e| panic!("case {i} reparse fails verification: {e}"));
        }
    }

    #[test]
    fn args_match_parameters() {
        for i in 0..100 {
            let case = generate(3, i);
            assert_eq!(case.args.len(), case.function.params().len());
        }
    }

    #[test]
    fn distinct_cases_differ() {
        let a = generate(1, 0);
        let b = generate(1, 1);
        assert_ne!(a.function.to_string(), b.function.to_string());
    }
}
