//! # snslp-fuzz
//!
//! Offline differential fuzzing for the SN-SLP pipeline: a deterministic
//! typed-IR [generator](gen), an execution [oracle](oracle) that runs
//! every module through the scalar O3 pipeline and through the
//! vectorizer at each mode on identical inputs, and a ddmin-style
//! [reducer](reduce) that shrinks failures to minimal re-parseable
//! reproducers for the [corpus](corpus).
//!
//! Everything is reproducible from a single CLI seed (the crate carries
//! its own [PRNG](rng)) and runs fully offline — no external crates, no
//! network, no wall-clock dependence.
//!
//! # Examples
//!
//! ```
//! use snslp_fuzz::{run_fuzz, FuzzConfig};
//!
//! let report = run_fuzz(&FuzzConfig::new(0xC60, 25));
//! assert!(report.is_clean());
//! assert_eq!(report.cases, 25);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod corpus;
pub mod gen;
pub mod oracle;
pub mod reduce;
pub mod rng;

use std::path::PathBuf;

use snslp_core::SlpMode;
use snslp_cost::CostModel;
use snslp_trace::{MetricsSnapshot, Span};

pub use corpus::{fixture_name, inputs_line, render_fixture, write_fixture};
pub use gen::{generate, Case};
pub use oracle::{check_case, compare, execute, CaseOutcome, Divergence, Outcome};
pub use reduce::{reduce, ReduceStats};
pub use rng::Rng;

/// All three vectorizer modes, in ascending power.
pub const ALL_MODES: [SlpMode; 3] = [SlpMode::Slp, SlpMode::Lslp, SlpMode::SnSlp];

/// Configuration for one fuzzing batch.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Batch seed; together with a case index it determines a case.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub count: u64,
    /// Modes to differentiate against the scalar baseline.
    pub modes: Vec<SlpMode>,
    /// Shrink each failing case to a minimal reproducer.
    pub reduce: bool,
    /// Directory to write reproducer fixtures into (raw and, with
    /// [`FuzzConfig::reduce`], minimized).
    pub corpus_dir: Option<PathBuf>,
    /// Cost model shared by the pass and the interpreter.
    pub model: CostModel,
    /// Stop after this many divergences (a miscompile that fires on many
    /// cases would otherwise flood the corpus).
    pub max_findings: usize,
}

impl FuzzConfig {
    /// A default configuration: all modes, no reduction, no corpus.
    pub fn new(seed: u64, count: u64) -> Self {
        FuzzConfig {
            seed,
            count,
            modes: ALL_MODES.to_vec(),
            reduce: false,
            corpus_dir: None,
            model: CostModel::default(),
            max_findings: 8,
        }
    }
}

/// One divergence plus the artifacts produced for it.
#[derive(Debug)]
pub struct Finding {
    /// The divergence as reported by the oracle.
    pub divergence: Divergence,
    /// Where the raw reproducer was written, when a corpus is configured.
    pub fixture: Option<PathBuf>,
    /// Where the minimized reproducer was written.
    pub reduced_fixture: Option<PathBuf>,
    /// Reduction statistics, when reduction ran.
    pub reduce_stats: Option<ReduceStats>,
}

/// Result of a fuzzing batch.
#[derive(Debug)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: u64,
    /// Cases whose baseline execution trapped (traps are compared as
    /// outcomes, not skipped).
    pub trapped_cases: u64,
    /// Total graphs vectorized per mode, across all clean cases.
    pub vectorized_per_mode: Vec<(SlpMode, u64)>,
    /// Pass metrics accumulated over the whole batch (delta).
    pub metrics: MetricsSnapshot,
    /// Divergences found, with their artifacts.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// `true` when no divergence was found.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Multi-line human-readable summary (used verbatim by the CLI).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cases: {} ({} trapped in baseline)",
            self.cases, self.trapped_cases
        );
        for (mode, v) in &self.vectorized_per_mode {
            let _ = writeln!(s, "vectorized[{}]: {v} graphs", oracle::mode_key(*mode));
        }
        let _ = writeln!(s, "metrics delta: {}", self.metrics.machine());
        let _ = write!(s, "divergences: {}", self.findings.len());
        s
    }
}

/// Runs one fuzzing batch: generate, differentially check, and (when
/// configured) reduce and persist every failing case.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let span = Span::enter("fuzz.batch");
    span.note("seed", cfg.seed as i64);
    span.note("count", cfg.count as i64);
    let before = MetricsSnapshot::current();

    let mut vectorized_per_mode: Vec<(SlpMode, u64)> = cfg.modes.iter().map(|&m| (m, 0)).collect();
    let mut findings = Vec::new();
    let mut trapped_cases = 0u64;
    let mut cases = 0u64;

    for index in 0..cfg.count {
        cases += 1;
        let case = gen::generate(cfg.seed, index);
        match oracle::check_case(&case, &cfg.model, &cfg.modes) {
            Ok(outcome) => {
                if outcome.baseline_trap.is_some() {
                    trapped_cases += 1;
                }
                for (slot, rep) in vectorized_per_mode.iter_mut().zip(&outcome.reports) {
                    slot.1 += rep.vectorized_graphs() as u64;
                }
            }
            Err(divergence) => {
                snslp_trace::trace_event!(
                    "fuzz.divergence",
                    "stage" => divergence.stage.as_str(),
                    "index" => index as i64,
                );
                findings.push(persist_finding(cfg, &case, *divergence));
                if findings.len() >= cfg.max_findings {
                    break;
                }
            }
        }
    }

    FuzzReport {
        cases,
        trapped_cases,
        vectorized_per_mode,
        metrics: MetricsSnapshot::current().delta_since(&before),
        findings,
    }
}

/// Writes corpus artifacts for one divergence and optionally reduces it.
fn persist_finding(cfg: &FuzzConfig, case: &Case, divergence: Divergence) -> Finding {
    // Only non-trapping cases get an `INPUTS:` line: the filecheck
    // harness treats a trapping original run as a test error.
    let runs_clean = |c: &Case| {
        matches!(
            oracle::execute(&c.function, &c.args, &cfg.model),
            Ok(Outcome::Ran(_))
        )
    };
    let fixture = cfg
        .corpus_dir
        .as_ref()
        .and_then(|dir| write_fixture(dir, case, Some(&divergence), runs_clean(case), false).ok());
    let (reduced_fixture, reduce_stats) = if cfg.reduce {
        let (min, stats) = reduce::reduce(case, |c| {
            oracle::check_case(c, &cfg.model, &cfg.modes).is_err()
        });
        let path = cfg.corpus_dir.as_ref().and_then(|dir| {
            write_fixture(dir, &min, Some(&divergence), runs_clean(&min), true).ok()
        });
        (path, Some(stats))
    } else {
        (None, None)
    };
    Finding {
        divergence,
        fixture,
        reduced_fixture,
        reduce_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_batch_reports_aggregates() {
        let report = run_fuzz(&FuzzConfig::new(0xC60, 60));
        assert!(
            report.is_clean(),
            "unexpected findings: {:?}",
            report.findings
        );
        assert_eq!(report.cases, 60);
        assert_eq!(report.vectorized_per_mode.len(), 3);
        // The generator is biased toward vectorizable shapes; a batch of
        // 60 where nothing vectorizes would mean the bias is broken.
        let total: u64 = report.vectorized_per_mode.iter().map(|(_, v)| v).sum();
        assert!(total > 0, "no graphs vectorized in the whole batch");
        let summary = report.summary();
        assert!(summary.contains("divergences: 0"));
    }

    #[test]
    fn batches_are_reproducible() {
        let a = run_fuzz(&FuzzConfig::new(9, 40));
        let b = run_fuzz(&FuzzConfig::new(9, 40));
        assert_eq!(a.trapped_cases, b.trapped_cases);
        assert_eq!(a.vectorized_per_mode, b.vectorized_per_mode);
    }
}
