//! Offline differential fuzzer CLI.
//!
//! ```text
//! snslp-fuzz run --seed 0xC60 --count 2000 --mode all [--reduce] \
//!     [--corpus DIR] [--max-findings K]
//! snslp-fuzz gen --seed 0xC60 --index 7
//! ```
//!
//! `run` generates `count` cases from `seed`, differentially checks each
//! one (scalar O3 and every requested vectorizer mode against the raw
//! original on identical inputs), and exits 1 if any divergence is
//! found; `gen` prints a single generated case for inspection. Usage
//! errors exit 2. Fully offline and deterministic.

use std::path::PathBuf;
use std::process::ExitCode;

use snslp_core::SlpMode;
use snslp_fuzz::{generate, inputs_line, run_fuzz, FuzzConfig, ALL_MODES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: snslp-fuzz run --seed N --count M [--mode all|slp|lslp|snslp] \
         [--reduce] [--corpus DIR] [--max-findings K]\n       \
         snslp-fuzz gen --seed N --index I"
    );
    ExitCode::from(2)
}

/// Parses `N` or `0xN`.
fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_modes(s: &str) -> Option<Vec<SlpMode>> {
    match s {
        "all" => Some(ALL_MODES.to_vec()),
        "slp" => Some(vec![SlpMode::Slp]),
        "lslp" => Some(vec![SlpMode::Lslp]),
        "snslp" => Some(vec![SlpMode::SnSlp]),
        _ => None,
    }
}

fn main() -> ExitCode {
    if let Err(e) = snslp_trace::init_from_env() {
        eprintln!("snslp-fuzz: bad SNSLP_TRACE spec: {e}");
        return ExitCode::from(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };

    let mut seed = 0xC60u64;
    let mut count = 1000u64;
    let mut index = 0u64;
    let mut modes = ALL_MODES.to_vec();
    let mut do_reduce = false;
    let mut corpus_dir: Option<PathBuf> = None;
    let mut max_findings = 8usize;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match flag {
            "--seed" => match value(&mut i).as_deref().and_then(parse_u64) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--count" => match value(&mut i).as_deref().and_then(parse_u64) {
                Some(v) => count = v,
                None => return usage(),
            },
            "--index" => match value(&mut i).as_deref().and_then(parse_u64) {
                Some(v) => index = v,
                None => return usage(),
            },
            "--mode" => match value(&mut i).as_deref().and_then(parse_modes) {
                Some(v) => modes = v,
                None => return usage(),
            },
            "--max-findings" => match value(&mut i).as_deref().and_then(parse_u64) {
                Some(v) => max_findings = v as usize,
                None => return usage(),
            },
            "--corpus" => match value(&mut i) {
                Some(v) => corpus_dir = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--reduce" => do_reduce = true,
            _ => return usage(),
        }
        i += 1;
    }

    match command.as_str() {
        "gen" => {
            let case = generate(seed, index);
            println!("; seed={seed:#x} index={index}");
            println!("; INPUTS: {}", inputs_line(&case.args));
            print!("{}", case.function);
            ExitCode::SUCCESS
        }
        "run" => {
            let cfg = FuzzConfig {
                seed,
                count,
                modes,
                reduce: do_reduce,
                corpus_dir,
                max_findings,
                ..FuzzConfig::new(seed, count)
            };
            let report = run_fuzz(&cfg);
            for finding in &report.findings {
                eprintln!("FAIL: {}", finding.divergence);
                if let Some(p) = &finding.fixture {
                    eprintln!("  reproducer: {}", p.display());
                }
                if let Some(p) = &finding.reduced_fixture {
                    let detail = finding
                        .reduce_stats
                        .as_ref()
                        .map(|s| format!(" ({} -> {} insts)", s.insts_before, s.insts_after))
                        .unwrap_or_default();
                    eprintln!("  minimized:  {}{detail}", p.display());
                }
                if finding.fixture.is_none() {
                    eprintln!("--- failing function ---\n{}", finding.divergence.function);
                }
            }
            println!("{}", report.summary());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => usage(),
    }
}
