//! PC-map partition property over generated programs: 1,000 fuzz cases
//! (the oracle's deterministic generator), each lowered plain and
//! instrumented under every pipeline, must yield a [`PcMap`] that
//! covers the emitted bytes exactly once. On native hosts the
//! instrumented lowering is additionally executed and its per-class
//! totals reconciled against the interpreter's `DynProfile` via
//! [`check_hotness`] — the same invariant the continuous fuzz oracle
//! enforces per case.

use std::collections::BTreeMap;

use snslp_core::{run_slp, SlpConfig, SlpMode};
use snslp_cost::CostModel;
use snslp_interp::ExecOptions;
use snslp_jit::{check_hotness, compile_with, JitError, LowerOptions};

const SEED: u64 = 0x5eed_90b5;
const CASES: u64 = 1_000;

fn validate_both_lowerings(what: &str, f: &snslp_ir::Function) {
    for instrument in [false, true] {
        let opts = LowerOptions {
            instrument,
            decisions: BTreeMap::new(),
        };
        let compiled = match compile_with(f, &opts) {
            Ok(c) => c,
            Err(JitError::Unsupported { .. }) => return,
            Err(JitError::Platform(e)) => panic!("{what}: platform error: {e}"),
        };
        compiled
            .pc_map()
            .validate(compiled.code().len())
            .unwrap_or_else(|e| {
                panic!("{what}: pc map partition violated (instrument={instrument}): {e}")
            });
    }
}

#[test]
fn generated_programs_partition_and_reconcile() {
    let model = CostModel::default();
    let exec = ExecOptions::default();
    for i in 0..CASES {
        let case = snslp_fuzz::generate(SEED, i);
        validate_both_lowerings(&format!("case {SEED:#x}/{i}"), &case.function);

        let mut v = case.function.clone();
        run_slp(&mut v, &SlpConfig::new(SlpMode::SnSlp));
        validate_both_lowerings(&format!("case {SEED:#x}/{i} (snslp)"), &v);

        // Exact-hotness reconciliation: instrumented native per-class
        // counts must equal the interpreter's. Declines return Ok(None)
        // and are fine; an Err is a real counter bug.
        for (label, f) in [("scalar", &case.function), ("snslp", &v)] {
            check_hotness(f, &case.args, &model, &exec)
                .unwrap_or_else(|e| panic!("case {SEED:#x}/{i} ({label}): hotness diverged: {e}"));
        }
    }
}
