//! Property tests for the compile-time fast paths: every memoized or
//! indexed query must agree with its straightforward reference
//! implementation on realistic IR.
//!
//! Inputs are (a) every checked-in `.snir` fixture of the core test
//! suite, and (b) 1,000 deterministic cases from the fuzz generator —
//! the same distribution the differential oracle runs, so the fast
//! paths are exercised on exactly the IR shapes the pass sees.
//!
//! Three query families are compared per block:
//! * `LruScoreCache`-memoized look-ahead scores vs uncached
//!   [`score_pair`](snslp_core::lookahead::score_pair) (pairs at depths
//!   0..=3, each asked twice so the second ask is a pure cache hit);
//! * bitset [`BlockCtx::depends_on`] vs the DFS
//!   [`BlockCtx::depends_on_scan`];
//! * interval-indexed [`BlockCtx::aliasing_store_within`] /
//!   [`BlockCtx::aliasing_mem_within`] vs their linear `_scan` twins over
//!   `(lo, hi)` position windows.
//!
//! The small fixtures are swept exhaustively. Generated blocks can reach
//! several hundred instructions, where exhaustive pair × window × depth
//! enumeration is quartic — there the sweeps sample deterministically
//! (fixed stride, no randomness) so all 1,000 cases stay affordable
//! while every case still contributes hundreds of checked queries.

use snslp_core::ctx::BlockCtx;
use snslp_core::lookahead::{score_pair, score_pair_with};
use snslp_core::LruScoreCache;
use snslp_fuzz::generate;
use snslp_ir::analysis::MemLoc;
use snslp_ir::{parse_function_str, Function};

const FUZZ_SEED: u64 = 0x9E9E;
const FUZZ_CASES: u64 = 1000;
const DEPTHS: std::ops::RangeInclusive<u32> = 0..=3;

/// Per-block sampling caps for the generated-case run.
const MAX_SCORE_INSTS: usize = 24;
const MAX_DEP_INSTS: usize = 24;
const MAX_ALIAS_ANCHORS: usize = 16;
const MAX_ALIAS_LOCS: usize = 8;

/// Deterministic stride sample of at most `cap` elements, always
/// including the first and (via stride arithmetic) spread to the end.
fn sample<T: Copy>(items: &[T], cap: usize) -> Vec<T> {
    if items.len() <= cap {
        return items.to_vec();
    }
    let stride = items.len().div_ceil(cap);
    items.iter().copied().step_by(stride).collect()
}

/// All checked-in `.snir` fixtures (the core filecheck corpus).
fn fixtures() -> Vec<(String, Function)> {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../core/tests/snir");
    let mut files = Vec::new();
    collect(&root, &mut files);
    assert!(!files.is_empty(), "no .snir fixtures under {root:?}");
    files.sort();
    files
        .into_iter()
        .map(|p| {
            let src = std::fs::read_to_string(&p).unwrap();
            // Fixtures may carry `; CHECK` comment directives; the parser
            // skips comments.
            let f = parse_function_str(&src)
                .unwrap_or_else(|e| panic!("fixture {p:?} does not parse: {e}"));
            (p.display().to_string(), f)
        })
        .collect()
}

fn collect(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().map(|e| e == "snir").unwrap_or(false) {
            out.push(path);
        }
    }
}

/// Checks every fast-path query against its reference on one function.
///
/// `exhaustive` sweeps every pair, depth, and alias window (affordable on
/// the handful of small fixtures); the generated-case run stride-samples
/// instructions for scoring and dependence and anchors alias windows at a
/// sample of memory-op positions — the only places the answer can
/// change — to stay affordable over 1,000 cases.
fn check_function(label: &str, f: &Function, exhaustive: bool) {
    let cache = LruScoreCache::default();
    for block in f.block_ids() {
        let ctx = BlockCtx::compute(f, block);
        let insts = f.block(block).insts().to_vec();

        // Memoized look-ahead scores: ask twice, so pass 2 is all hits.
        let score_insts = if exhaustive {
            insts.clone()
        } else {
            sample(&insts, MAX_SCORE_INSTS)
        };
        for _ in 0..2 {
            for &a in &score_insts {
                for &b in &score_insts {
                    for depth in DEPTHS {
                        let reference = score_pair(f, a, b, depth);
                        let memoized = score_pair_with(f, Some(&cache), a, b, depth);
                        assert_eq!(
                            memoized, reference,
                            "{label}: score({a:?}, {b:?}, {depth}) diverged"
                        );
                    }
                }
            }
        }

        // Dependence: indexed bitset vs DFS scan. The samples are offset
        // by one so `a` and `b` rarely coincide, and adjacent positions
        // (direct def-use edges) are still covered.
        let dep_insts = if exhaustive {
            insts.clone()
        } else {
            sample(&insts, MAX_DEP_INSTS)
        };
        for (i, &a) in dep_insts.iter().enumerate() {
            for &b in dep_insts.iter().skip(i / 2) {
                assert_eq!(
                    ctx.depends_on(f, a, b),
                    ctx.depends_on_scan(f, a, b),
                    "{label}: depends_on({a:?}, {b:?}) diverged"
                );
                assert_eq!(
                    ctx.depends_on(f, b, a),
                    ctx.depends_on_scan(f, b, a),
                    "{label}: depends_on({b:?}, {a:?}) diverged"
                );
            }
        }

        // Aliasing: indexed interval queries vs linear scans, for every
        // memory location in the block over every position window.
        let mem_insts: Vec<_> = insts
            .iter()
            .copied()
            .filter(|&id| MemLoc::of_inst(f, id).is_some())
            .collect();
        let locs: Vec<MemLoc> = sample(
            &mem_insts,
            if exhaustive {
                usize::MAX
            } else {
                MAX_ALIAS_LOCS
            },
        )
        .iter()
        .filter_map(|&id| MemLoc::of_inst(f, id))
        .collect();
        let n = insts.len();
        let windows: Vec<usize> = if exhaustive {
            (0..n).collect()
        } else {
            let mut anchors: Vec<usize> = sample(&mem_insts, MAX_ALIAS_ANCHORS)
                .iter()
                .flat_map(|&id| {
                    let p = ctx.pos_of(id).unwrap();
                    // One position either side of the op: boundary cases
                    // of the strict `p > lo && p < hi` window.
                    [p.saturating_sub(1), p, (p + 1).min(n.saturating_sub(1))]
                })
                .chain([0, n.saturating_sub(1)])
                .collect();
            anchors.sort_unstable();
            anchors.dedup();
            anchors
        };
        for loc in &locs {
            for &lo in &windows {
                for &hi in windows.iter().filter(|&&hi| hi >= lo) {
                    assert_eq!(
                        ctx.aliasing_store_within(f, lo, hi, loc),
                        ctx.aliasing_store_within_scan(f, lo, hi, loc),
                        "{label}: aliasing_store_within({lo}, {hi}) diverged"
                    );
                    // Both with nothing excluded and with the block's
                    // memory ops excluded (the store-bundle use case).
                    for exclude in [&mem_insts[..0], &mem_insts[..]] {
                        assert_eq!(
                            ctx.aliasing_mem_within(f, lo, hi, loc, exclude),
                            ctx.aliasing_mem_within_scan(f, lo, hi, loc, exclude),
                            "{label}: aliasing_mem_within({lo}, {hi}) diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn fast_paths_match_references_on_fixtures() {
    for (path, f) in fixtures() {
        check_function(&path, &f, true);
    }
}

#[test]
fn fast_paths_match_references_on_generated_cases() {
    for i in 0..FUZZ_CASES {
        let case = generate(FUZZ_SEED, i);
        check_function(&format!("case {i}"), &case.function, false);
    }
}
