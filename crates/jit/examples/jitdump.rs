//! Prints the JIT lowering listing for a registry kernel under a chosen
//! pipeline — the quickest way to see what `--backend=jit` will execute.
//!
//! ```text
//! cargo run -p snslp-jit --example jitdump -- soplex_update snslp
//! ```
//!
//! The mode is one of `o3`, `slp`, `lslp`, `snslp` (default `snslp`).

use snslp_core::{optimize_o3, run_slp, SlpConfig, SlpMode};
use snslp_jit::compile;
use snslp_kernels::kernel_by_name;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "motiv_leaf".to_string());
    let mode = args.next().unwrap_or_else(|| "snslp".to_string());
    let k = kernel_by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown kernel `{name}`");
        std::process::exit(2);
    });
    let mut f = k.build();
    match mode.as_str() {
        "o3" => {
            optimize_o3(&mut f);
        }
        "slp" => {
            run_slp(&mut f, &SlpConfig::new(SlpMode::Slp));
        }
        "lslp" => {
            run_slp(&mut f, &SlpConfig::new(SlpMode::Lslp));
        }
        "snslp" => {
            run_slp(&mut f, &SlpConfig::new(SlpMode::SnSlp));
        }
        other => {
            eprintln!("unknown mode `{other}` (want o3|slp|lslp|snslp)");
            std::process::exit(2);
        }
    }
    match compile(&f) {
        Ok(c) => print!("{}", c.dump()),
        Err(e) => {
            eprintln!("`{name}` [{mode}] does not lower: {e}");
            std::process::exit(1);
        }
    }
}
