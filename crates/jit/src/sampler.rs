//! SIGPROF/itimer wall-clock sampler for native kernel runs.
//!
//! On x86-64 Linux, [`Sampler::start`] installs a `SIGPROF` handler and
//! arms `ITIMER_PROF`; each delivery records the interrupted RIP into a
//! fixed-size lock-free buffer (atomics only — the handler is
//! async-signal-safe). [`Sampler::stop`] disarms the timer, restores the
//! previous disposition, and drains the raw RIPs; callers filter them to
//! a code range and rebase to byte offsets for
//! [`PcMap::resolve`](crate::PcMap::resolve).
//!
//! Everywhere else ([`supported`] returns false) the sampler is a
//! graceful no-op that collects nothing.
//!
//! Like `exec_mem`, this module speaks raw syscalls — no libc. Two
//! wrinkles that makes visible: `rt_sigaction` on x86-64 requires a
//! `SA_RESTORER` trampoline (glibc normally supplies one; without it the
//! kernel refuses delivery), so a 7-byte `mov eax, __NR_rt_sigreturn;
//! syscall` stub is planted in an [`ExecMem`](crate::exec_mem::ExecMem)
//! page; and the handler digs the RIP straight out of the `ucontext_t`
//! at its ABI-stable byte offset rather than via libc types.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    use crate::exec_mem::ExecMem;

    mod sys {
        use std::arch::asm;

        pub const SYS_RT_SIGACTION: usize = 13;
        pub const SYS_SETITIMER: usize = 38;

        /// # Safety
        ///
        /// Caller must uphold the invoked syscall's contract.
        pub unsafe fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
            let ret: isize;
            unsafe {
                asm!(
                    "syscall",
                    inlateout("rax") n => ret,
                    in("rdi") a1,
                    in("rsi") a2,
                    in("rdx") a3,
                    in("r10") a4,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            ret
        }
    }

    const SIGPROF: usize = 27;
    const ITIMER_PROF: usize = 2;
    const SA_SIGINFO: u64 = 4;
    const SA_RESTART: u64 = 0x1000_0000;
    const SA_RESTORER: u64 = 0x0400_0000;
    /// `mov eax, 15` (`__NR_rt_sigreturn`) then `syscall`.
    const RESTORER_CODE: [u8; 7] = [0xb8, 0x0f, 0x00, 0x00, 0x00, 0x0f, 0x05];
    /// Byte offset of the saved RIP inside `ucontext_t` on x86-64 Linux:
    /// `uc_mcontext.gregs[REG_RIP]` — ABI-stable kernel layout.
    const UCONTEXT_RIP_OFFSET: usize = 168;

    /// The kernel's `struct sigaction` for `rt_sigaction` on x86-64
    /// (note: differs from glibc's layout — flags before restorer).
    #[repr(C)]
    #[derive(Debug, Clone, Copy, Default)]
    struct KernelSigaction {
        handler: usize,
        flags: u64,
        restorer: usize,
        mask: u64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct Timeval {
        tv_sec: i64,
        tv_usec: i64,
    }

    #[repr(C)]
    #[derive(Clone, Copy, Default)]
    struct Itimerval {
        it_interval: Timeval,
        it_value: Timeval,
    }

    /// Power-of-two sample buffer; excess samples are dropped, never
    /// reallocated — the handler must not touch the allocator.
    const BUF_LEN: usize = 1 << 14;
    static SAMPLES: [AtomicU64; BUF_LEN] = [const { AtomicU64::new(0) }; BUF_LEN];
    static SAMPLE_IDX: AtomicUsize = AtomicUsize::new(0);
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigprof(_sig: i32, _info: *mut u8, uctx: *mut u8) {
        // Async-signal-safe: one relaxed load of the interrupted RIP,
        // one fetch_add, one store. No locks, no allocation.
        let rip = unsafe { *(uctx.add(UCONTEXT_RIP_OFFSET) as *const u64) };
        let i = SAMPLE_IDX.fetch_add(1, Ordering::Relaxed);
        if i < BUF_LEN {
            SAMPLES[i].store(rip, Ordering::Relaxed);
        }
    }

    /// An armed profiling timer; dropping or stopping it disarms the
    /// timer and restores the previous `SIGPROF` disposition.
    #[derive(Debug)]
    pub struct Sampler {
        old_action: KernelSigaction,
        // Keeps the rt_sigreturn trampoline alive while armed.
        _restorer: ExecMem,
    }

    impl Sampler {
        /// Installs the handler and arms `ITIMER_PROF` with the given
        /// period. Only one sampler can be active per process.
        ///
        /// # Errors
        ///
        /// Fails if a sampler is already active or a syscall rejects.
        pub fn start(period_us: u64) -> Result<Sampler, String> {
            if ACTIVE.swap(true, Ordering::SeqCst) {
                return Err("a SIGPROF sampler is already active".to_string());
            }
            SAMPLE_IDX.store(0, Ordering::SeqCst);
            let restorer = match ExecMem::new(&RESTORER_CODE) {
                Ok(mem) => mem,
                Err(e) => {
                    ACTIVE.store(false, Ordering::SeqCst);
                    return Err(format!("map rt_sigreturn trampoline: {e}"));
                }
            };
            let action = KernelSigaction {
                handler: on_sigprof as *const () as usize,
                flags: SA_SIGINFO | SA_RESTART | SA_RESTORER,
                restorer: restorer.entry() as usize,
                mask: 0,
            };
            let mut old = KernelSigaction::default();
            let rc = unsafe {
                sys::syscall4(
                    sys::SYS_RT_SIGACTION,
                    SIGPROF,
                    std::ptr::from_ref(&action) as usize,
                    std::ptr::from_mut(&mut old) as usize,
                    8, // sigsetsize
                )
            };
            if rc != 0 {
                ACTIVE.store(false, Ordering::SeqCst);
                return Err(format!("rt_sigaction(SIGPROF) failed: {rc}"));
            }
            let period = Timeval {
                tv_sec: (period_us / 1_000_000) as i64,
                tv_usec: (period_us % 1_000_000) as i64,
            };
            let timer = Itimerval {
                it_interval: period,
                it_value: period,
            };
            let rc = unsafe {
                sys::syscall4(
                    sys::SYS_SETITIMER,
                    ITIMER_PROF,
                    std::ptr::from_ref(&timer) as usize,
                    0,
                    0,
                )
            };
            if rc != 0 {
                let _ = unsafe {
                    sys::syscall4(
                        sys::SYS_RT_SIGACTION,
                        SIGPROF,
                        std::ptr::from_ref(&old) as usize,
                        0,
                        8,
                    )
                };
                ACTIVE.store(false, Ordering::SeqCst);
                return Err(format!("setitimer(ITIMER_PROF) failed: {rc}"));
            }
            Ok(Sampler {
                old_action: old,
                _restorer: restorer,
            })
        }

        /// Disarms the timer, restores the old disposition, and returns
        /// the raw sampled RIPs (absolute addresses, unfiltered).
        pub fn stop(self) -> Vec<u64> {
            let zero = Itimerval::default();
            unsafe {
                sys::syscall4(
                    sys::SYS_SETITIMER,
                    ITIMER_PROF,
                    std::ptr::from_ref(&zero) as usize,
                    0,
                    0,
                );
                sys::syscall4(
                    sys::SYS_RT_SIGACTION,
                    SIGPROF,
                    std::ptr::from_ref(&self.old_action) as usize,
                    0,
                    8,
                );
            }
            let n = SAMPLE_IDX.load(Ordering::SeqCst).min(BUF_LEN);
            let rips = (0..n).map(|i| SAMPLES[i].load(Ordering::Relaxed)).collect();
            ACTIVE.store(false, Ordering::SeqCst);
            rips
        }
    }

    /// Wall-clock sampling is available on this target.
    pub fn supported() -> bool {
        true
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod imp {
    /// Graceful no-op stand-in on targets without the SIGPROF sampler.
    #[derive(Debug)]
    pub struct Sampler;

    impl Sampler {
        /// Always fails: sampling is unsupported on this target.
        ///
        /// # Errors
        ///
        /// Always.
        pub fn start(_period_us: u64) -> Result<Sampler, String> {
            Err("SIGPROF sampling requires x86-64 Linux".to_string())
        }

        /// No samples were ever collected.
        pub fn stop(self) -> Vec<u64> {
            Vec::new()
        }
    }

    /// Wall-clock sampling is unavailable on this target.
    pub fn supported() -> bool {
        false
    }
}

pub use imp::{supported, Sampler};

#[cfg(test)]
mod tests {
    use super::*;

    // Only one sampler may be active per process; serialize the tests.
    static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn sampler_collects_rips_from_a_spin_loop() {
        let _gate = GATE.lock().unwrap();
        if !supported() {
            // Graceful skip path: start must fail cleanly.
            assert!(Sampler::start(1000).is_err());
            return;
        }
        let sampler = Sampler::start(1000).expect("start sampler");
        // Burn CPU long enough for several 1ms profiling ticks.
        let mut acc = 0u64;
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(60) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        let rips = sampler.stop();
        assert!(
            !rips.is_empty(),
            "expected at least one SIGPROF sample from a 60ms spin"
        );
        assert!(rips.iter().all(|&r| r != 0));
    }

    #[test]
    fn second_sampler_is_rejected_while_active() {
        let _gate = GATE.lock().unwrap();
        if !supported() {
            return;
        }
        let s = Sampler::start(10_000).expect("start");
        assert!(Sampler::start(10_000).is_err());
        let _ = s.stop();
    }
}
