//! The runtime contract between generated code and the host.
//!
//! Generated functions have the C signature
//! `fn(ctx: *mut JitCtx, args: *const u64) -> i64` and return one of the
//! [`status`] codes. All state the code needs — guest memory bounds, the
//! fuel counter, the trap address and the return-value buffer — lives in
//! [`JitCtx`], whose address is pinned in `r15` for the whole activation.
//!
//! Float `min`/`max`/`rem` are not lowered to SSE sequences: SSE
//! `minsd`/`maxsd` disagree with Rust's `f64::min`/`f64::max` on NaN
//! operands, and there is no `frem` instruction at all. The lowering
//! instead calls back into the [`helpers`], which execute *literally the
//! interpreter's expression* for each op, so native results are bit-exact
//! by construction.

/// Status codes returned by generated code.
pub mod status {
    /// Normal completion; the return buffer is valid.
    pub const OK: i64 = 0;
    /// Out-of-bounds access; `JitCtx::trap_addr` holds the guest address.
    pub const OOB: i64 = 1;
    /// Integer division or remainder by zero.
    pub const DIV_ZERO: i64 = 2;
    /// Fuel exhausted before reaching `ret`.
    pub const FUEL: i64 = 3;
}

/// Per-activation state shared with generated code. Field offsets are
/// baked into the emitted instructions — keep layout changes in sync with
/// the `CTX_*` constants.
#[repr(C)]
#[derive(Debug)]
pub struct JitCtx {
    /// Host address of guest byte 0.
    pub mem_base: *mut u8,
    /// Guest memory size in bytes.
    pub mem_size: u64,
    /// Remaining fuel; decremented once per executed instruction, written
    /// back on every exit path.
    pub fuel: u64,
    /// Guest address of a faulting access (valid when status is `OOB`).
    pub trap_addr: u64,
    /// Return-value buffer (scalar or packed vector lanes, little-endian).
    pub ret: [u8; RET_BUF_BYTES],
    /// Instrumented-hotness block counters: one `u64` slot per basic
    /// block, bumped at each block entry when the function was lowered
    /// with hotness instrumentation. Null (and never dereferenced by the
    /// generated code) otherwise.
    pub hot_counts: *mut u64,
}

/// Size of the return-value buffer: covers the widest vector the verifier
/// accepts (the lowering refuses anything larger).
pub const RET_BUF_BYTES: usize = 128;

/// Byte offset of `mem_base` in [`JitCtx`].
pub const CTX_MEM_BASE: i32 = 0;
/// Byte offset of `mem_size`.
pub const CTX_MEM_SIZE: i32 = 8;
/// Byte offset of `fuel`.
pub const CTX_FUEL: i32 = 16;
/// Byte offset of `trap_addr`.
pub const CTX_TRAP_ADDR: i32 = 24;
/// Byte offset of the return buffer.
pub const CTX_RET: i32 = 32;
/// Byte offset of the instrumented-hotness counter pointer.
pub const CTX_HOT: i32 = 160;

/// Helper callbacks reproducing interpreter float semantics exactly.
///
/// The `f32` variants widen through `f64` and narrow the result, because
/// that is what `apply_binop_scalar` does; `%`, `min` and `max` on the
/// widened values round-trip exactly for `f32` inputs.
pub mod helpers {
    /// `f64::min` with Rust (not SSE) NaN semantics.
    pub extern "C" fn fmin64(a: f64, b: f64) -> f64 {
        a.min(b)
    }

    /// `f64::max` with Rust NaN semantics.
    pub extern "C" fn fmax64(a: f64, b: f64) -> f64 {
        a.max(b)
    }

    /// `f64 % f64` (Rust `Rem`, i.e. `fmod`).
    pub extern "C" fn frem64(a: f64, b: f64) -> f64 {
        a % b
    }

    /// `f32` min via the interpreter's widen-compute-narrow path.
    pub extern "C" fn fmin32(a: f32, b: f32) -> f32 {
        f64::from(a).min(f64::from(b)) as f32
    }

    /// `f32` max via the widen-compute-narrow path.
    pub extern "C" fn fmax32(a: f32, b: f32) -> f32 {
        f64::from(a).max(f64::from(b)) as f32
    }

    /// `f32` remainder via the widen-compute-narrow path.
    pub extern "C" fn frem32(a: f32, b: f32) -> f32 {
        (f64::from(a) % f64::from(b)) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_offsets_match_layout() {
        // The emitted code addresses JitCtx by these constants; a layout
        // drift would corrupt state at runtime, so pin it here.
        assert_eq!(
            std::mem::offset_of!(JitCtx, mem_base),
            CTX_MEM_BASE as usize
        );
        assert_eq!(
            std::mem::offset_of!(JitCtx, mem_size),
            CTX_MEM_SIZE as usize
        );
        assert_eq!(std::mem::offset_of!(JitCtx, fuel), CTX_FUEL as usize);
        assert_eq!(
            std::mem::offset_of!(JitCtx, trap_addr),
            CTX_TRAP_ADDR as usize
        );
        assert_eq!(std::mem::offset_of!(JitCtx, ret), CTX_RET as usize);
        assert_eq!(std::mem::offset_of!(JitCtx, hot_counts), CTX_HOT as usize);
    }

    #[test]
    fn helpers_match_interpreter_semantics() {
        use snslp_interp::value::apply_binop_scalar;
        use snslp_interp::Value;
        use snslp_ir::BinOp;

        let cases64 = [
            (1.5f64, 2.5f64),
            (f64::NAN, 1.0),
            (1.0, f64::NAN),
            (0.0, -0.0),
            (-7.25, 3.5),
        ];
        for (a, b) in cases64 {
            for (op, h) in [
                (
                    BinOp::Min,
                    helpers::fmin64 as extern "C" fn(f64, f64) -> f64,
                ),
                (BinOp::Max, helpers::fmax64),
                (BinOp::Rem, helpers::frem64),
            ] {
                let want = apply_binop_scalar(op, &Value::F64(a), &Value::F64(b)).unwrap();
                let Value::F64(w) = want else { unreachable!() };
                assert_eq!(h(a, b).to_bits(), w.to_bits(), "{op} {a} {b}");
            }
        }
        let cases32 = [(1.5f32, 2.5f32), (f32::NAN, 1.0), (0.0, -0.0), (-7.25, 3.5)];
        for (a, b) in cases32 {
            for (op, h) in [
                (
                    BinOp::Min,
                    helpers::fmin32 as extern "C" fn(f32, f32) -> f32,
                ),
                (BinOp::Max, helpers::fmax32),
                (BinOp::Rem, helpers::frem32),
            ] {
                let want = apply_binop_scalar(op, &Value::F32(a), &Value::F32(b)).unwrap();
                let Value::F32(w) = want else { unreachable!() };
                assert_eq!(h(a, b).to_bits(), w.to_bits(), "{op} {a} {b}");
            }
        }
    }
}
