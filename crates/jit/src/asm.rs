//! A minimal x86-64 instruction encoder.
//!
//! Only the encodings the lowering actually emits are implemented: 64-bit
//! GPR moves/ALU, `movsxd`, shifts by `cl`, `idiv`, `setcc`/`cmovcc`,
//! scalar and packed SSE2 arithmetic, the `cvt*` conversions the cast
//! semantics need, and rel32 control flow with label fixups. Memory
//! operands always use the `[base + disp32]` form: one code path, no
//! special-casing of short displacements, and the `rsp`/`r12` SIB and
//! `rbp`/`r13` quirks are handled once in [`Asm::modrm_mem`].

/// General-purpose register numbers (hardware encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gpr(pub u8);

/// `rax`: primary scratch / return status.
pub const RAX: Gpr = Gpr(0);
/// `rcx`: secondary scratch, shift counts, divisors.
pub const RCX: Gpr = Gpr(1);
/// `rdx`: high half for `idiv`.
pub const RDX: Gpr = Gpr(2);
/// `rsp`: stack pointer; base of the value-slot frame.
pub const RSP: Gpr = Gpr(4);
/// `rbp`: saved for frame-chain hygiene only; never referenced.
pub const RBP: Gpr = Gpr(5);
/// `rsi`: incoming argument-array pointer (prologue only).
pub const RSI: Gpr = Gpr(6);
/// `rdi`: incoming context pointer (prologue only).
pub const RDI: Gpr = Gpr(7);
/// `r12`: pinned guest-memory base pointer.
pub const R12: Gpr = Gpr(12);
/// `r13`: pinned guest-memory size in bytes.
pub const R13: Gpr = Gpr(13);
/// `r14`: pinned remaining-fuel counter.
pub const R14: Gpr = Gpr(14);
/// `r15`: pinned [`JitCtx`](crate::runtime::JitCtx) pointer.
pub const R15: Gpr = Gpr(15);

/// SSE register numbers. The lowering uses `xmm0`/`xmm1` as arithmetic
/// scratch, `xmm2`–`xmm5` for lane accumulation, and `xmm7` as the
/// wide-copy scratch; nothing is live across an instruction boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xmm(pub u8);

/// `xmm0`: primary float scratch / helper-call return.
pub const XMM0: Xmm = Xmm(0);
/// `xmm1`: secondary float scratch / helper-call argument.
pub const XMM1: Xmm = Xmm(1);
/// `xmm2`: lane accumulator (never live across a helper call).
pub const XMM2: Xmm = Xmm(2);
/// `xmm3`: lane accumulator.
pub const XMM3: Xmm = Xmm(3);
/// `xmm4`: lane accumulator.
pub const XMM4: Xmm = Xmm(4);
/// `xmm5`: lane accumulator.
pub const XMM5: Xmm = Xmm(5);
/// `xmm7`: dedicated 16-byte copy scratch.
pub const XMM7: Xmm = Xmm(7);

/// Condition codes for `jcc`/`setcc`/`cmovcc` (hardware encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cc {
    B = 0x2,
    Ae = 0x3,
    E = 0x4,
    Ne = 0x5,
    Be = 0x6,
    A = 0x7,
    S = 0x8,
    P = 0xA,
    Np = 0xB,
    L = 0xC,
    Ge = 0xD,
    Le = 0xE,
    G = 0xF,
}

/// A forward-referenceable code position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Code buffer with label fixups.
#[derive(Debug, Default)]
pub struct Asm {
    code: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, usize)>,
}

impl Asm {
    /// Empty buffer.
    pub fn new() -> Self {
        Asm::default()
    }

    /// Current code offset (next byte emitted lands here).
    pub fn here(&self) -> usize {
        self.code.len()
    }

    /// Creates an unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current offset.
    pub fn bind(&mut self, label: Label) {
        debug_assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.code.len());
    }

    /// Patches every rel32 fixup and returns the code bytes.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound (a lowering bug).
    pub fn finish(mut self) -> Vec<u8> {
        for &(pos, label) in &self.fixups {
            let target = self.labels[label].expect("unbound label");
            let rel = (target as i64 - (pos as i64 + 4)) as i32;
            self.code[pos..pos + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.code
    }

    fn byte(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.code.extend_from_slice(bs);
    }

    /// Emits mandatory prefixes, an optional REX, and the opcode bytes.
    fn prefix_rex_op(&mut self, prefixes: &[u8], w: bool, r: u8, b: u8, opcode: &[u8]) {
        self.bytes(prefixes);
        let rex = 0x40 | (u8::from(w) << 3) | ((r >> 3) << 2) | (b >> 3);
        if rex != 0x40 || w {
            self.byte(rex);
        }
        self.bytes(opcode);
    }

    /// reg-reg form: `modrm(11, reg, rm)`.
    fn op_rr(&mut self, prefixes: &[u8], w: bool, opcode: &[u8], reg: u8, rm: u8) {
        self.prefix_rex_op(prefixes, w, reg, rm, opcode);
        self.byte(0xC0 | ((reg & 7) << 3) | (rm & 7));
    }

    /// `[base + disp32]` memory form, with the SIB escape for `rsp`/`r12`.
    fn modrm_mem(&mut self, reg: u8, base: u8, disp: i32) {
        self.byte(0x80 | ((reg & 7) << 3) | (base & 7));
        if base & 7 == 4 {
            self.byte(0x24); // SIB: scale 1, no index, base = rsp/r12
        }
        self.bytes(&disp.to_le_bytes());
    }

    fn op_rm(&mut self, prefixes: &[u8], w: bool, opcode: &[u8], reg: u8, base: Gpr, disp: i32) {
        self.prefix_rex_op(prefixes, w, reg, base.0, opcode);
        self.modrm_mem(reg, base.0, disp);
    }

    // ---- GPR moves ----

    /// `mov dst, src` (64-bit).
    pub fn mov_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x8B], dst.0, src.0);
    }

    /// `mov dst, imm64`.
    pub fn mov_ri(&mut self, dst: Gpr, imm: u64) {
        self.prefix_rex_op(&[], true, 0, dst.0, &[]);
        self.byte(0xB8 + (dst.0 & 7));
        self.bytes(&imm.to_le_bytes());
    }

    /// `mov dst, qword [base + disp]`.
    pub fn mov_load(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.op_rm(&[], true, &[0x8B], dst.0, base, disp);
    }

    /// `mov qword [base + disp], src`.
    pub fn mov_store(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.op_rm(&[], true, &[0x89], src.0, base, disp);
    }

    /// `mov dst32, dword [base + disp]` (zero-extends).
    pub fn mov32_load(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.op_rm(&[], false, &[0x8B], dst.0, base, disp);
    }

    /// `mov dword [base + disp], src32`.
    pub fn mov32_store(&mut self, base: Gpr, disp: i32, src: Gpr) {
        self.op_rm(&[], false, &[0x89], src.0, base, disp);
    }

    /// `movsxd dst, dword [base + disp]` (sign-extends).
    pub fn movsxd_load(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        self.op_rm(&[], true, &[0x63], dst.0, base, disp);
    }

    /// `inc qword [base + disp]` — the instrumented-hotness block
    /// counter bump (FF /0).
    pub fn inc_mem(&mut self, base: Gpr, disp: i32) {
        self.op_rm(&[], true, &[0xFF], 0, base, disp);
    }

    /// `movsxd dst, src32`.
    pub fn movsxd_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x63], dst.0, src.0);
    }

    // ---- GPR ALU ----

    /// `add dst, src` (64-bit).
    pub fn add_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x03], dst.0, src.0);
    }

    /// `sub dst, src`.
    pub fn sub_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x2B], dst.0, src.0);
    }

    /// `and dst, src`.
    pub fn and_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x23], dst.0, src.0);
    }

    /// `or dst, src`.
    pub fn or_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x0B], dst.0, src.0);
    }

    /// `xor dst, src`.
    pub fn xor_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x33], dst.0, src.0);
    }

    /// `imul dst, src`.
    pub fn imul_rr(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x0F, 0xAF], dst.0, src.0);
    }

    /// `neg r`.
    pub fn neg_r(&mut self, r: Gpr) {
        self.op_rr(&[], true, &[0xF7], 3, r.0);
    }

    /// `not r`.
    pub fn not_r(&mut self, r: Gpr) {
        self.op_rr(&[], true, &[0xF7], 2, r.0);
    }

    /// `cqo` (sign-extend `rax` into `rdx`).
    pub fn cqo(&mut self) {
        self.bytes(&[0x48, 0x99]);
    }

    /// `idiv r` (`rdx:rax / r`).
    pub fn idiv_r(&mut self, r: Gpr) {
        self.op_rr(&[], true, &[0xF7], 7, r.0);
    }

    /// `shl r, cl`.
    pub fn shl_cl(&mut self, r: Gpr) {
        self.op_rr(&[], true, &[0xD3], 4, r.0);
    }

    /// `sar r, cl` (arithmetic, matching Rust `i64 >>`).
    pub fn sar_cl(&mut self, r: Gpr) {
        self.op_rr(&[], true, &[0xD3], 7, r.0);
    }

    /// `cmp a, b` (64-bit).
    pub fn cmp_rr(&mut self, a: Gpr, b: Gpr) {
        self.op_rr(&[], true, &[0x3B], a.0, b.0);
    }

    /// `cmp r, imm8` (sign-extended).
    pub fn cmp_ri8(&mut self, r: Gpr, imm: i8) {
        self.op_rr(&[], true, &[0x83], 7, r.0);
        self.byte(imm as u8);
    }

    /// `test a, a` (64-bit).
    pub fn test_rr(&mut self, a: Gpr, b: Gpr) {
        self.op_rr(&[], true, &[0x85], b.0, a.0);
    }

    /// `cmovcc dst, src`.
    pub fn cmov(&mut self, cc: Cc, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x0F, 0x40 + cc as u8], dst.0, src.0);
    }

    /// `setcc r8`. Only `al`/`cl`/`dl` are valid targets (no REX form).
    pub fn setcc(&mut self, cc: Cc, r: Gpr) {
        debug_assert!(r.0 < 4, "setcc target must avoid REX byte registers");
        self.op_rr(&[], false, &[0x0F, 0x90 + cc as u8], 0, r.0);
    }

    /// `movzx dst, src8` (byte to 64-bit).
    pub fn movzx_rb(&mut self, dst: Gpr, src: Gpr) {
        self.op_rr(&[], true, &[0x0F, 0xB6], dst.0, src.0);
    }

    /// `add rsp, imm32`.
    pub fn add_rsp(&mut self, imm: i32) {
        self.op_rr(&[], true, &[0x81], 0, RSP.0);
        self.bytes(&imm.to_le_bytes());
    }

    /// `sub rsp, imm32`.
    pub fn sub_rsp(&mut self, imm: i32) {
        self.op_rr(&[], true, &[0x81], 5, RSP.0);
        self.bytes(&imm.to_le_bytes());
    }

    /// `push r`.
    pub fn push_r(&mut self, r: Gpr) {
        if r.0 >= 8 {
            self.byte(0x41);
        }
        self.byte(0x50 + (r.0 & 7));
    }

    /// `pop r`.
    pub fn pop_r(&mut self, r: Gpr) {
        if r.0 >= 8 {
            self.byte(0x41);
        }
        self.byte(0x58 + (r.0 & 7));
    }

    /// `dec r`.
    pub fn dec_r(&mut self, r: Gpr) {
        self.op_rr(&[], true, &[0xFF], 1, r.0);
    }

    // ---- control flow ----

    /// `jmp label` (rel32).
    pub fn jmp(&mut self, label: Label) {
        self.byte(0xE9);
        self.fixups.push((self.code.len(), label.0));
        self.bytes(&[0; 4]);
    }

    /// `jcc label` (rel32).
    pub fn jcc(&mut self, cc: Cc, label: Label) {
        self.bytes(&[0x0F, 0x80 + cc as u8]);
        self.fixups.push((self.code.len(), label.0));
        self.bytes(&[0; 4]);
    }

    /// `call r`.
    pub fn call_r(&mut self, r: Gpr) {
        self.op_rr(&[], false, &[0xFF], 2, r.0);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.byte(0xC3);
    }

    // ---- SSE ----

    /// `movss dst, dword [base + disp]`.
    pub fn movss_load(&mut self, dst: Xmm, base: Gpr, disp: i32) {
        self.op_rm(&[0xF3], false, &[0x0F, 0x10], dst.0, base, disp);
    }

    /// `movss dword [base + disp], src`.
    pub fn movss_store(&mut self, base: Gpr, disp: i32, src: Xmm) {
        self.op_rm(&[0xF3], false, &[0x0F, 0x11], src.0, base, disp);
    }

    /// `movsd dst, qword [base + disp]`.
    pub fn movsd_load(&mut self, dst: Xmm, base: Gpr, disp: i32) {
        self.op_rm(&[0xF2], false, &[0x0F, 0x10], dst.0, base, disp);
    }

    /// `movsd qword [base + disp], src`.
    pub fn movsd_store(&mut self, base: Gpr, disp: i32, src: Xmm) {
        self.op_rm(&[0xF2], false, &[0x0F, 0x11], src.0, base, disp);
    }

    /// `movups dst, xmmword [base + disp]` (unaligned 16-byte load).
    pub fn movups_load(&mut self, dst: Xmm, base: Gpr, disp: i32) {
        self.op_rm(&[], false, &[0x0F, 0x10], dst.0, base, disp);
    }

    /// `movups xmmword [base + disp], src`.
    pub fn movups_store(&mut self, base: Gpr, disp: i32, src: Xmm) {
        self.op_rm(&[], false, &[0x0F, 0x11], src.0, base, disp);
    }

    /// `movlpd dst, qword [base + disp]` (low half; high half preserved).
    pub fn movlpd_load(&mut self, dst: Xmm, base: Gpr, disp: i32) {
        self.op_rm(&[0x66], false, &[0x0F, 0x12], dst.0, base, disp);
    }

    /// `movhpd dst, qword [base + disp]` (high half; low half preserved).
    pub fn movhpd_load(&mut self, dst: Xmm, base: Gpr, disp: i32) {
        self.op_rm(&[0x66], false, &[0x0F, 0x16], dst.0, base, disp);
    }

    /// `movhpd qword [base + disp], src` (stores the high half).
    pub fn movhpd_store(&mut self, base: Gpr, disp: i32, src: Xmm) {
        self.op_rm(&[0x66], false, &[0x0F, 0x17], src.0, base, disp);
    }

    /// `unpcklpd dst, src`: `dst = [dst.lo64, src.lo64]`.
    pub fn unpcklpd(&mut self, dst: Xmm, src: Xmm) {
        self.op_rr(&[0x66], false, &[0x0F, 0x14], dst.0, src.0);
    }

    /// `unpcklps dst, src`: `dst = [dst.0, src.0, dst.1, src.1]`.
    pub fn unpcklps(&mut self, dst: Xmm, src: Xmm) {
        self.op_rr(&[], false, &[0x0F, 0x14], dst.0, src.0);
    }

    /// `movlhps dst, src`: `dst.hi64 = src.lo64`.
    pub fn movlhps(&mut self, dst: Xmm, src: Xmm) {
        self.op_rr(&[], false, &[0x0F, 0x16], dst.0, src.0);
    }

    /// `pshufd dst, src, imm` (full 4x32 lane permute).
    pub fn pshufd(&mut self, dst: Xmm, src: Xmm, imm: u8) {
        self.op_rr(&[0x66], false, &[0x0F, 0x70], dst.0, src.0);
        self.byte(imm);
    }

    /// Scalar/packed SSE arithmetic, reg-reg: `prefix 0F op /r`.
    pub fn sse_rr(&mut self, prefix: &[u8], op: u8, dst: Xmm, src: Xmm) {
        self.op_rr(prefix, false, &[0x0F, op], dst.0, src.0);
    }

    /// Scalar/packed SSE arithmetic with a memory source operand.
    pub fn sse_rm(&mut self, prefix: &[u8], op: u8, dst: Xmm, base: Gpr, disp: i32) {
        self.op_rm(prefix, false, &[0x0F, op], dst.0, base, disp);
    }

    /// `cvtsi2sd dst, src64`.
    pub fn cvtsi2sd(&mut self, dst: Xmm, src: Gpr) {
        self.op_rr(&[0xF2], true, &[0x0F, 0x2A], dst.0, src.0);
    }

    /// `cvtsd2ss dst, src`.
    pub fn cvtsd2ss(&mut self, dst: Xmm, src: Xmm) {
        self.op_rr(&[0xF2], false, &[0x0F, 0x5A], dst.0, src.0);
    }

    /// `cvtss2sd dst, src`.
    pub fn cvtss2sd(&mut self, dst: Xmm, src: Xmm) {
        self.op_rr(&[0xF3], false, &[0x0F, 0x5A], dst.0, src.0);
    }

    /// `movq dst, src64` (GPR bits into an XMM register).
    pub fn movq_xr(&mut self, dst: Xmm, src: Gpr) {
        self.op_rr(&[0x66], true, &[0x0F, 0x6E], dst.0, src.0);
    }

    /// `movd dst, src32`.
    pub fn movd_xr(&mut self, dst: Xmm, src: Gpr) {
        self.op_rr(&[0x66], false, &[0x0F, 0x6E], dst.0, src.0);
    }

    /// `ucomisd a, b`.
    pub fn ucomisd(&mut self, a: Xmm, b: Xmm) {
        self.op_rr(&[0x66], false, &[0x0F, 0x2E], a.0, b.0);
    }

    /// `ucomiss a, b`.
    pub fn ucomiss(&mut self, a: Xmm, b: Xmm) {
        self.op_rr(&[], false, &[0x0F, 0x2E], a.0, b.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(f: impl FnOnce(&mut Asm)) -> Vec<u8> {
        let mut a = Asm::new();
        f(&mut a);
        a.finish()
    }

    #[test]
    fn gpr_encodings_match_reference() {
        // Spot-checked against a reference assembler.
        assert_eq!(enc(|a| a.mov_rr(RAX, RCX)), vec![0x48, 0x8B, 0xC1]);
        assert_eq!(
            enc(|a| a.mov_ri(RAX, 0x1122334455667788)),
            vec![0x48, 0xB8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11]
        );
        assert_eq!(
            enc(|a| a.mov_load(RAX, RSP, 8)),
            vec![0x48, 0x8B, 0x84, 0x24, 0x08, 0, 0, 0]
        );
        assert_eq!(
            enc(|a| a.mov_store(R13, 16, RCX)),
            vec![0x49, 0x89, 0x8D, 0x10, 0, 0, 0]
        );
        assert_eq!(
            enc(|a| a.movsxd_load(RCX, RAX, 4)),
            vec![0x48, 0x63, 0x88, 0x04, 0, 0, 0]
        );
        assert_eq!(enc(|a| a.idiv_r(RCX)), vec![0x48, 0xF7, 0xF9]);
        assert_eq!(enc(|a| a.push_r(R12)), vec![0x41, 0x54]);
        assert_eq!(enc(|a| a.setcc(Cc::E, RAX)), vec![0x0F, 0x94, 0xC0]);
        assert_eq!(enc(|a| a.dec_r(R14)), vec![0x49, 0xFF, 0xCE]);
        // inc qword [rax + 8] — REX.W FF /0 with a disp32 ModRM.
        assert_eq!(
            enc(|a| a.inc_mem(RAX, 8)),
            vec![0x48, 0xFF, 0x80, 0x08, 0, 0, 0]
        );
    }

    #[test]
    fn sse_encodings_match_reference() {
        assert_eq!(
            enc(|a| a.movsd_load(XMM0, RSP, 0)),
            vec![0xF2, 0x0F, 0x10, 0x84, 0x24, 0, 0, 0, 0]
        );
        // addsd xmm0, xmm1
        assert_eq!(
            enc(|a| a.sse_rr(&[0xF2], 0x58, XMM0, XMM1)),
            vec![0xF2, 0x0F, 0x58, 0xC1]
        );
        // movups load from r12 needs both the REX.B and the SIB byte.
        assert_eq!(
            enc(|a| a.movups_load(XMM0, R12, 0)),
            vec![0x41, 0x0F, 0x10, 0x84, 0x24, 0, 0, 0, 0]
        );
        assert_eq!(
            enc(|a| a.cvtsi2sd(XMM0, RAX)),
            vec![0xF2, 0x48, 0x0F, 0x2A, 0xC0]
        );
        assert_eq!(
            enc(|a| a.movq_xr(XMM1, RAX)),
            vec![0x66, 0x48, 0x0F, 0x6E, 0xC8]
        );
        assert_eq!(enc(|a| a.ucomisd(XMM0, XMM1)), vec![0x66, 0x0F, 0x2E, 0xC1]);
        assert_eq!(
            enc(|a| a.movlpd_load(XMM7, RSP, 8)),
            vec![0x66, 0x0F, 0x12, 0xBC, 0x24, 0x08, 0, 0, 0]
        );
        assert_eq!(
            enc(|a| a.movhpd_load(XMM7, RSP, 8)),
            vec![0x66, 0x0F, 0x16, 0xBC, 0x24, 0x08, 0, 0, 0]
        );
        assert_eq!(
            enc(|a| a.movhpd_store(RSP, 8, XMM7)),
            vec![0x66, 0x0F, 0x17, 0xBC, 0x24, 0x08, 0, 0, 0]
        );
        assert_eq!(
            enc(|a| a.unpcklpd(XMM0, XMM1)),
            vec![0x66, 0x0F, 0x14, 0xC1]
        );
        assert_eq!(enc(|a| a.unpcklps(XMM2, XMM3)), vec![0x0F, 0x14, 0xD3]);
        assert_eq!(enc(|a| a.movlhps(XMM2, XMM4)), vec![0x0F, 0x16, 0xD4]);
        assert_eq!(
            enc(|a| a.pshufd(XMM7, XMM7, 0)),
            vec![0x66, 0x0F, 0x70, 0xFF, 0x00]
        );
    }

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut a = Asm::new();
        let top = a.new_label();
        let end = a.new_label();
        a.bind(top);
        a.jcc(Cc::E, end); // forward
        a.jmp(top); // backward
        a.bind(end);
        let code = a.finish();
        // jcc rel32 = 6 bytes, jmp rel32 = 5 bytes; end is at 11.
        assert_eq!(&code[2..6], &5i32.to_le_bytes());
        assert_eq!(&code[7..11], &(-11i32).to_le_bytes());
    }
}
