//! Native hotness profiles: per-IR-instruction execution counts and
//! sampled wall-time, resolved through the [`PcMap`].
//!
//! Two acquisition modes share one profile shape:
//!
//! * **Instrumented** — the lowering bumps a per-block counter on every
//!   block entry ([`crate::LowerOptions::instrument`]). Because the fuel
//!   gate proves every non-phi instruction of an entered block executes
//!   (a trap aborts the whole activation), each instruction's native
//!   execution count *is* its block's counter, exactly and
//!   deterministically. Per-class totals must then [`reconcile`]
//!   (`HotProfile::reconcile`) with the interpreter's
//!   [`DynProfile`](snslp_interp::DynProfile) for the same run — the
//!   native backend's analogue of the oracle's `total_ops == dyn_insts`
//!   invariant.
//! * **Sampled** — a SIGPROF wall-clock sampler ([`crate::sampler`])
//!   collects RIPs, which resolve through the map into per-instruction
//!   sample counts and (scaled by measured wall time) nanoseconds.
//!
//! Serialization to the `snslp-hot/v1` artifact lives in `snslp-bench`;
//! this module owns the measurement and the invariants.

use snslp_interp::{DynProfile, OpClass};
use snslp_trace::DecisionId;

use crate::pcmap::{PcKind, PcMap};

/// How a [`HotProfile`] was acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotMode {
    /// Exact per-block counters from instrumented code.
    Instrumented,
    /// SIGPROF wall-clock samples resolved through the PC map.
    Sampled,
}

impl HotMode {
    /// Stable name used in the JSON artifact.
    pub fn name(self) -> &'static str {
        match self {
            HotMode::Instrumented => "instrumented",
            HotMode::Sampled => "sampled",
        }
    }
}

/// Hotness of one lowered IR instruction.
#[derive(Debug, Clone)]
pub struct InstHot {
    /// Arena index of the instruction.
    pub inst: u32,
    /// Owning block index.
    pub block: u32,
    /// Opcode class (the interpreter's `classify` rule).
    pub class: OpClass,
    /// Native byte range `[pc_start, pc_end)` implementing it.
    pub pc_start: u32,
    /// End of the byte range (exclusive).
    pub pc_end: u32,
    /// Exact native execution count (instrumented mode; 0 in sampled
    /// mode, where only `samples`/`ns` are meaningful).
    pub count: u64,
    /// SIGPROF samples that resolved into this range.
    pub samples: u64,
    /// Wall nanoseconds attributed to this instruction
    /// (`native_wall_ns * samples / samples_total`).
    pub ns: u64,
    /// The vectorization decision that emitted this instruction, if any.
    pub decision: Option<DecisionId>,
}

/// Hotness of one backend stub range (prologue, exits, counter bumps).
#[derive(Debug, Clone)]
pub struct StubHot {
    /// Stub name.
    pub name: String,
    /// Start of the byte range.
    pub pc_start: u32,
    /// End of the byte range (exclusive).
    pub pc_end: u32,
    /// SIGPROF samples that resolved into this range.
    pub samples: u64,
}

/// One function's native hotness profile.
#[derive(Debug, Clone)]
pub struct HotProfile {
    /// Source function name.
    pub function: String,
    /// Acquisition mode.
    pub mode: HotMode,
    /// Emitted code size in bytes (the PC map partitions `[0, this)`).
    pub code_bytes: u64,
    /// Per-block execution counters (instrumented mode; empty otherwise).
    pub block_counts: Vec<u64>,
    /// Per-instruction rows, in PC order.
    pub insts: Vec<InstHot>,
    /// Stub rows, in PC order.
    pub stubs: Vec<StubHot>,
    /// Native execution counts per opcode class (indexed in
    /// [`OpClass::ALL`] order). Instrumented mode only; the exact
    /// reconciliation target against the interpreter's `DynProfile`.
    pub class_ops: [u64; OpClass::ALL.len()],
    /// Total samples that resolved inside the code range.
    pub samples_total: u64,
    /// Configured sampling period in nanoseconds (0 when instrumented).
    pub sample_period_ns: u64,
    /// Measured wall time of the sampled run in nanoseconds (0 when
    /// instrumented — instrumented profiles stay byte-deterministic).
    pub native_wall_ns: u64,
}

impl HotProfile {
    /// Builds an exact instrumented profile from the per-block counters
    /// of one (or several merged) status-OK activations.
    pub fn from_counts(function: &str, pc_map: &PcMap, block_counts: &[u64]) -> HotProfile {
        let mut insts = Vec::new();
        let mut stubs = Vec::new();
        let mut class_ops = [0u64; OpClass::ALL.len()];
        let mut code_bytes = 0u64;
        for r in &pc_map.ranges {
            code_bytes = code_bytes.max(u64::from(r.end));
            match r.kind {
                PcKind::Inst { inst, class, block } => {
                    let count = block_counts.get(block as usize).copied().unwrap_or(0);
                    class_ops[class.index()] += count;
                    insts.push(InstHot {
                        inst,
                        block,
                        class,
                        pc_start: r.start,
                        pc_end: r.end,
                        count,
                        samples: 0,
                        ns: 0,
                        decision: r.decision.clone(),
                    });
                }
                PcKind::Stub { name, .. } => stubs.push(StubHot {
                    name: name.to_string(),
                    pc_start: r.start,
                    pc_end: r.end,
                    samples: 0,
                }),
            }
        }
        HotProfile {
            function: function.to_string(),
            mode: HotMode::Instrumented,
            code_bytes,
            block_counts: block_counts.to_vec(),
            insts,
            stubs,
            class_ops,
            samples_total: 0,
            sample_period_ns: 0,
            native_wall_ns: 0,
        }
    }

    /// Builds a sampled profile from code-relative sample offsets.
    ///
    /// `offsets` are RIPs already filtered to the code range and
    /// rebased to byte offsets; `wall_ns` is the measured wall time of
    /// the sampled run and is distributed over instructions
    /// proportionally to their sample counts.
    pub fn from_samples(
        function: &str,
        pc_map: &PcMap,
        offsets: &[u32],
        wall_ns: u64,
        period_ns: u64,
    ) -> HotProfile {
        let mut prof = HotProfile::from_counts(function, pc_map, &[]);
        prof.mode = HotMode::Sampled;
        prof.block_counts = Vec::new();
        prof.sample_period_ns = period_ns;
        prof.native_wall_ns = wall_ns;
        prof.class_ops = [0; OpClass::ALL.len()];
        for &off in offsets {
            let Some(r) = pc_map.resolve(off) else {
                continue;
            };
            match r.kind {
                PcKind::Inst { .. } => {
                    if let Some(row) = prof
                        .insts
                        .iter_mut()
                        .find(|i| i.pc_start == r.start && i.pc_end == r.end)
                    {
                        row.samples += 1;
                        prof.samples_total += 1;
                    }
                }
                PcKind::Stub { .. } => {
                    if let Some(row) = prof
                        .stubs
                        .iter_mut()
                        .find(|s| s.pc_start == r.start && s.pc_end == r.end)
                    {
                        row.samples += 1;
                        prof.samples_total += 1;
                    }
                }
            }
        }
        for row in &mut prof.insts {
            row.ns = (wall_ns * row.samples)
                .checked_div(prof.samples_total)
                .unwrap_or(0);
        }
        prof
    }

    /// Total native instruction executions across all classes.
    pub fn total_ops(&self) -> u64 {
        self.class_ops.iter().sum()
    }

    /// Checks the exact reconciliation invariant of instrumented mode:
    /// per-opcode-class native execution counts equal the interpreter's
    /// [`DynProfile`] per-class op counts for the same function on the
    /// same inputs.
    ///
    /// # Errors
    ///
    /// Names the first class whose counts disagree.
    pub fn reconcile(&self, interp: &DynProfile) -> Result<(), String> {
        for class in OpClass::ALL {
            let (native, dynp) = (self.class_ops[class.index()], interp.ops[class.index()]);
            if native != dynp {
                return Err(format!(
                    "class {}: native executed {native} ops, interpreter counted {dynp}",
                    class.name()
                ));
            }
        }
        Ok(())
    }

    /// Folded flamegraph stacks in the `snslp-prof` exporter's format
    /// (`track;parent;child self_value` per line, sorted): one frame per
    /// vectorization decision (or per opcode class for scalar code),
    /// weighted by nanoseconds in sampled mode and by execution count in
    /// instrumented mode.
    pub fn to_folded(&self) -> String {
        use std::collections::BTreeMap;
        let mut agg: BTreeMap<String, u64> = BTreeMap::new();
        for row in &self.insts {
            let frame = match &row.decision {
                Some(d) => d.render(),
                None => format!("class:{}", row.class.name()),
            };
            let weight = match self.mode {
                HotMode::Instrumented => row.count,
                HotMode::Sampled => row.ns,
            };
            *agg.entry(format!("native;@{};{frame}", self.function))
                .or_default() += weight;
        }
        let mut out = String::new();
        for (stack, weight) in agg {
            if weight > 0 {
                out.push_str(&format!("{stack} {weight}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pcmap::PcMap;

    fn map() -> PcMap {
        let mut m = PcMap::default();
        m.push(
            0,
            4,
            PcKind::Stub {
                name: "prologue",
                block: None,
            },
            None,
        );
        m.push(
            4,
            10,
            PcKind::Inst {
                inst: 0,
                class: OpClass::Memory,
                block: 0,
            },
            Some(DecisionId::new("f", "entry", 0, 0)),
        );
        m.push(
            10,
            14,
            PcKind::Inst {
                inst: 1,
                class: OpClass::Control,
                block: 0,
            },
            None,
        );
        m.push(
            14,
            20,
            PcKind::Stub {
                name: "exits",
                block: None,
            },
            None,
        );
        m
    }

    #[test]
    fn instrumented_counts_expand_per_block() {
        let prof = HotProfile::from_counts("f", &map(), &[7]);
        assert_eq!(prof.mode, HotMode::Instrumented);
        assert_eq!(prof.code_bytes, 20);
        assert_eq!(prof.insts.len(), 2);
        assert_eq!(prof.insts[0].count, 7);
        assert_eq!(prof.class_ops[OpClass::Memory.index()], 7);
        assert_eq!(prof.class_ops[OpClass::Control.index()], 7);
        assert_eq!(prof.total_ops(), 14);

        let mut interp = DynProfile::new();
        interp.ops[OpClass::Memory.index()] = 7;
        interp.ops[OpClass::Control.index()] = 7;
        prof.reconcile(&interp).unwrap();
        interp.ops[OpClass::Memory.index()] = 8;
        assert!(prof.reconcile(&interp).unwrap_err().contains("memory"));
    }

    #[test]
    fn samples_resolve_and_scale_to_ns() {
        // 3 samples inside %0, 1 in the prologue, 1 off-map.
        let prof = HotProfile::from_samples("f", &map(), &[5, 6, 9, 0, 99], 4000, 1000);
        assert_eq!(prof.mode, HotMode::Sampled);
        assert_eq!(prof.samples_total, 4);
        assert_eq!(prof.insts[0].samples, 3);
        assert_eq!(prof.insts[0].ns, 3000);
        assert_eq!(prof.stubs[0].samples, 1);
        assert_eq!(prof.native_wall_ns, 4000);
    }

    #[test]
    fn folded_stacks_label_decisions() {
        let prof = HotProfile::from_counts("f", &map(), &[2]);
        let folded = prof.to_folded();
        assert!(folded.contains("native;@f;@f/entry/s0#i0 2\n"));
        assert!(folded.contains("native;@f;class:control 2\n"));
    }
}
